//! The strongness analysis is *sound*: whenever
//! [`Pred::is_strong_on_rel`] claims a predicate rejects all-null
//! tuples of a relation, brute-force evaluation over a small domain
//! must never find a `True`. (Completeness is not required — the
//! analysis may be conservative — but we also measure that it is exact
//! on the comparison/IS NULL fragment the paper works in.)

use fro::algebra::{CmpOp, Pred, Scalar, Schema, Truth, Tuple, Value};
use fro_algebra::Attr;
use proptest::prelude::*;

/// The fixed scheme for generated predicates: R.a, R.b, S.c.
fn schema() -> Schema {
    Schema::new(vec![
        Attr::parse("R.a"),
        Attr::parse("R.b"),
        Attr::parse("S.c"),
    ])
    .unwrap()
}

fn scalar_strategy() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        Just(Scalar::attr("R.a")),
        Just(Scalar::attr("R.b")),
        Just(Scalar::attr("S.c")),
        (0i64..3).prop_map(Scalar::int),
        Just(Scalar::Lit(Value::Null)),
    ]
}

fn cmp_op_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn pred_strategy() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        (cmp_op_strategy(), scalar_strategy(), scalar_strategy())
            .prop_map(|(op, lhs, rhs)| Pred::cmp(op, lhs, rhs)),
        scalar_strategy().prop_map(Pred::IsNull),
        Just(Pred::always()),
        Just(Pred::Const(Truth::False)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Pred::not),
        ]
    })
}

/// The paper's predicate fragment: comparisons between *distinct*
/// attributes, `IS NULL` on attributes, and positive (`AND`/`OR`)
/// combinations. Negation and literals are excluded because they can
/// encode unsatisfiable sub-predicates (`¬IsNull(x) ∧ IsNull(x)`,
/// `x < 0 ∧ x > 1`) whose strongness is a satisfiability question no
/// syntactic analysis answers exactly — soundness over the full
/// language is covered by the other test.
fn paper_pred_strategy() -> impl Strategy<Value = Pred> {
    let attrs = ["R.a", "R.b", "S.c"];
    let attr_pair = prop_oneof![
        Just(("R.a", "R.b")),
        Just(("R.a", "S.c")),
        Just(("R.b", "S.c")),
    ];
    let leaf = prop_oneof![
        (cmp_op_strategy(), attr_pair).prop_map(|(op, (a, b))| Pred::cmp(
            op,
            Scalar::attr(a),
            Scalar::attr(b)
        )),
        (0..attrs.len()).prop_map(move |i| Pred::is_null(attrs[i])),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
        ]
    })
}

/// All tuples over the scheme with the R-attributes pinned to null and
/// S.c ranging over a small domain (including null).
fn tuples_with_r_null() -> Vec<Tuple> {
    [Value::Null, Value::Int(0), Value::Int(1), Value::Int(2)]
        .into_iter()
        .map(|c| Tuple::new(vec![Value::Null, Value::Null, c]))
        .collect()
}

/// All tuples over the full small domain (for the exactness probe).
fn all_tuples() -> Vec<Tuple> {
    let dom = [Value::Null, Value::Int(0), Value::Int(1)];
    let mut out = Vec::new();
    for a in &dom {
        for b in &dom {
            for c in &dom {
                out.push(Tuple::new(vec![a.clone(), b.clone(), c.clone()]));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Soundness: a strong verdict is never wrong.
    #[test]
    fn strongness_analysis_is_sound(pred in pred_strategy()) {
        let s = schema();
        if pred.is_strong_on_rel("R") {
            for t in tuples_with_r_null() {
                let v = pred.eval(&t, &s).expect("fixed scheme");
                prop_assert!(
                    v != Truth::True,
                    "predicate {pred} claimed strong on R but evaluated True on {t}"
                );
            }
        }
    }

    /// Exactness on the *paper's* fragment — attribute comparisons on
    /// distinct attributes, `IS NULL`, and boolean combinations (no
    /// literals, so no unsatisfiable sub-predicates, which are beyond
    /// any syntactic analysis): when the analysis says "not strong",
    /// the predicate genuinely can be True with all R-attributes null.
    #[test]
    fn strongness_analysis_is_exact_on_paper_fragment(pred in paper_pred_strategy()) {
        let s = schema();
        let refs_r = pred.rels().contains("R");
        if refs_r && !pred.is_strong_on_rel("R") {
            let can_be_true = tuples_with_r_null()
                .iter()
                .any(|t| pred.eval(t, &s).expect("fixed scheme") == Truth::True);
            prop_assert!(
                can_be_true,
                "predicate {pred} declared not-strong but never evaluates True with R null"
            );
        }
    }

    /// 3VL evaluation is total and deterministic over the domain.
    #[test]
    fn eval_total_and_deterministic(pred in pred_strategy()) {
        let s = schema();
        for t in all_tuples() {
            let v1 = pred.eval(&t, &s).expect("total");
            let v2 = pred.eval(&t, &s).expect("total");
            prop_assert_eq!(v1, v2);
        }
    }

    /// De Morgan at the predicate level, under full 3VL evaluation.
    #[test]
    fn predicate_de_morgan(a in pred_strategy(), b in pred_strategy()) {
        let s = schema();
        let lhs = a.clone().and(b.clone()).not();
        let rhs = a.not().or(b.not());
        for t in all_tuples() {
            prop_assert_eq!(
                lhs.eval(&t, &s).expect("total"),
                rhs.eval(&t, &s).expect("total")
            );
        }
    }

    /// Conjunct splitting/rebuilding preserves semantics.
    #[test]
    fn conjunct_roundtrip_preserves_semantics(pred in pred_strategy()) {
        let s = schema();
        let rebuilt = Pred::from_conjuncts(pred.conjuncts());
        for t in all_tuples() {
            prop_assert_eq!(
                pred.eval(&t, &s).expect("total"),
                rebuilt.eval(&t, &s).expect("total"),
                "conjunct roundtrip changed {} at {}", pred, t
            );
        }
    }
}
