//! The engine's name-based attribute fallback: predicates over
//! *derived* attributes — ones the storage interner has never seen,
//! like the `agg.count` column a `GroupCount` invents — must bind and
//! evaluate through `BoundPred::bind`, since the `AttrId`-indexed fast
//! path cannot represent them. The fallback must agree exactly with
//! both a hand-computed oracle and the interned path's semantics.

use fro_algebra::{ops, Attr, CmpOp, Pred, Relation, Value};
use fro_exec::{execute, PhysPlan, Storage};
use std::collections::HashMap;

/// `R(k, v)` with repeated keys and nulls in both columns, so group
/// counts differ per group and the counted column exercises its
/// non-null rule.
fn storage() -> Storage {
    let rows: Vec<Vec<Value>> = vec![
        vec![Value::Int(1), Value::Int(10)],
        vec![Value::Int(1), Value::Null],
        vec![Value::Int(1), Value::Int(30)],
        vec![Value::Int(2), Value::Int(40)],
        vec![Value::Int(2), Value::Null],
        vec![Value::Int(3), Value::Null],
        vec![Value::Null, Value::Int(70)],
    ];
    let mut storage = Storage::new();
    storage.insert("R", Relation::from_values("R", &["k", "v"], rows));
    storage
}

fn group_count_plan(counted: Option<Attr>) -> PhysPlan {
    PhysPlan::GroupCount {
        input: Box::new(PhysPlan::scan("R")),
        group_attrs: vec![Attr::parse("R.k")],
        counted,
    }
}

/// Extract `(k, count)` pairs from an executed group-count result.
fn pairs(rel: &Relation) -> Vec<(Value, i64)> {
    let k = rel.schema().index_of(&Attr::parse("R.k")).expect("R.k");
    let c = rel
        .schema()
        .index_of(&Attr::new("agg", "count"))
        .expect("agg.count");
    rel.rows()
        .iter()
        .map(|t| {
            let Value::Int(n) = t.get(c).clone() else {
                panic!("count must be an int")
            };
            (t.get(k).clone(), n)
        })
        .collect()
}

/// Filtering on `agg.count` — an attribute absent from the storage
/// interner — takes the name-based fallback and agrees with a
/// hand-computed oracle.
#[test]
fn filter_on_derived_attr_matches_oracle() {
    let storage = storage();
    assert!(
        storage
            .interner()
            .attr_id(&Attr::new("agg", "count"))
            .is_none(),
        "precondition: agg.count must be unknown to the interner"
    );

    let plan = PhysPlan::Filter {
        input: Box::new(group_count_plan(Some(Attr::parse("R.v")))),
        pred: Pred::cmp_lit("agg.count", CmpOp::Ge, 2),
    };
    let mut stats = fro_exec::ExecStats::default();
    let out = execute(&plan, &storage, &mut stats).expect("fallback binding executes");

    // Oracle: count non-null v per k, keep counts >= 2. Only k=1
    // qualifies (two non-null v's); k=2 has one, k=3 zero.
    let mut want = HashMap::new();
    want.insert(Value::Int(1), 2i64);
    let got: HashMap<Value, i64> = pairs(&out).into_iter().collect();
    assert_eq!(got, want);
}

/// A predicate mixing an interned attribute with a derived one also
/// falls back as a whole, and still resolves the interned column to
/// the same offset the fast path would.
#[test]
fn mixed_interned_and_derived_pred_binds() {
    let storage = storage();
    let plan = PhysPlan::Filter {
        input: Box::new(group_count_plan(None)),
        pred: Pred::and(
            Pred::cmp_lit("R.k", CmpOp::Ge, 2),
            Pred::cmp_lit("agg.count", CmpOp::Ge, 1),
        ),
    };
    let mut stats = fro_exec::ExecStats::default();
    let out = execute(&plan, &storage, &mut stats).expect("executes");

    // Groups with k >= 2 (3VL drops the null-k group): k=2 (2 rows),
    // k=3 (1 row).
    let mut want = HashMap::new();
    want.insert(Value::Int(2), 2i64);
    want.insert(Value::Int(3), 1i64);
    let got: HashMap<Value, i64> = pairs(&out).into_iter().collect();
    assert_eq!(got, want);
}

/// `agg.count` is never null, so a tautological threshold keeps every
/// group: the filtered plan is bit-identical to the bare aggregate —
/// the fallback path neither drops, reorders, nor rewrites rows.
#[test]
fn tautological_filter_is_identity_on_groups() {
    let storage = storage();
    let bare = group_count_plan(Some(Attr::parse("R.v")));
    let filtered = PhysPlan::Filter {
        input: Box::new(bare.clone()),
        pred: Pred::cmp_lit("agg.count", CmpOp::Ge, 0),
    };
    let mut s1 = fro_exec::ExecStats::default();
    let mut s2 = fro_exec::ExecStats::default();
    let plain = execute(&bare, &storage, &mut s1).expect("executes");
    let kept = execute(&filtered, &storage, &mut s2).expect("executes");
    assert_eq!(kept, plain, "count >= 0 must keep every group, in order");

    // And the same aggregate computed by the algebra operator agrees.
    let id = storage.rel_id("R").expect("interned");
    let oracle = ops::group_count(
        storage.get_by_id(id).expect("table").relation(),
        &[Attr::parse("R.k")],
        Some(&Attr::parse("R.v")),
    )
    .expect("ops::group_count");
    assert_eq!(plain, oracle);
}

/// `IsNull` over the derived column: another predicate shape through
/// the fallback binder; the count column is never null.
#[test]
fn is_null_on_derived_attr() {
    let storage = storage();
    let plan = PhysPlan::Filter {
        input: Box::new(group_count_plan(None)),
        pred: Pred::is_null("agg.count"),
    };
    let mut stats = fro_exec::ExecStats::default();
    let out = execute(&plan, &storage, &mut stats).expect("executes");
    assert!(out.rows().is_empty(), "agg.count is never null");
}
