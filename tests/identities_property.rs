//! Property tests for the §2 / §6.2 identities over random databases.
//!
//! Inputs follow the paper's `⊙` convention — `P_xy` references `X`
//! and `Y`, `P_yz` references `Y` and `Z` — with strong (plain
//! equality) predicates where an identity requires them, and weakened
//! predicates to verify the preconditions are real.

use fro_algebra::identities as id;
use fro_algebra::{Attr, Database, Pred, Relation, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random X(a), Y(b, b2), Z(c) relations with nulls.
fn xyz(rows: usize, domain: i64, null_pct: u32, seed: u64) -> (Relation, Relation, Relation) {
    let mut rng = StdRng::seed_from_u64(seed);
    let val = |rng: &mut StdRng| {
        if rng.gen_ratio(null_pct, 100) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(0..domain))
        }
    };
    let x = Relation::from_values(
        "X",
        &["a"],
        (0..rows).map(|_| vec![val(&mut rng)]).collect(),
    );
    let y = Relation::from_values(
        "Y",
        &["b", "b2"],
        (0..rows)
            .map(|_| vec![val(&mut rng), val(&mut rng)])
            .collect(),
    );
    let z = Relation::from_values(
        "Z",
        &["c"],
        (0..rows).map(|_| vec![val(&mut rng)]).collect(),
    );
    (x, y, z)
}

fn pxy() -> Pred {
    Pred::eq_attr("X.a", "Y.b")
}
fn pyz() -> Pred {
    Pred::eq_attr("Y.b2", "Z.c")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn identities_1_to_13_hold(
        rows in 1usize..8,
        domain in 1i64..5,
        null_pct in 0u32..41,
        seed in 0u64..100_000,
    ) {
        let (x, y, z) = xyz(rows, domain, null_pct, seed);
        let checks: Vec<(&str, id::Sides)> = vec![
            ("1", id::identity_1(&x, &y, &z, &pxy(), None, &pyz()).unwrap()),
            ("1c", id::identity_1(
                &x, &y, &z, &pxy(),
                Some(&Pred::cmp_attr("X.a", fro_algebra::CmpOp::Le, "Z.c")),
                &pyz(),
            ).unwrap()),
            ("2", id::identity_2(&x, &y, &z, &pxy(), &pyz()).unwrap()),
            ("3", id::identity_3(&x, &y, &z, &pxy(), &pyz()).unwrap()),
            ("7", id::identity_7(&x, &y, &z, &pxy(), &pyz()).unwrap()),
            ("8", id::identity_8(&x, &y, &z, &pxy(), &pyz()).unwrap()),
            ("9", id::identity_9(&x, &y, &z, &pxy(), &pyz()).unwrap()),
            ("10", id::identity_10(&x, &y, &pxy()).unwrap()),
            ("11", id::identity_11(&x, &y, &z, &pxy(), &pyz()).unwrap()),
            ("12", id::identity_12(&x, &y, &z, &pxy(), &pyz()).unwrap()),
            ("13", id::identity_13(&x, &y, &z, &Pred::eq_attr("Y.b", "X.a"), &pyz()).unwrap()),
        ];
        for (name, (lhs, rhs)) in checks {
            prop_assert!(lhs.set_eq(&rhs), "identity {name} failed (seed {seed})");
        }
    }

    #[test]
    fn distributivity_identities_4_to_6_hold(
        rows in 1usize..7,
        domain in 1i64..5,
        null_pct in 0u32..41,
        seed in 0u64..100_000,
    ) {
        let (x, y1, _) = xyz(rows, domain, null_pct, seed);
        let (_, y2, _) = xyz(rows, domain, null_pct, seed.wrapping_add(17));
        let p = pxy();
        let (l, r) = id::identity_4(&x, &y1, &y2, &p).unwrap();
        prop_assert!(l.set_eq(&r), "identity 4 (seed {seed})");
        let (l, r) = id::identity_5(&x, &y1, &y2, &p).unwrap();
        prop_assert!(l.set_eq(&r), "identity 5 (seed {seed})");
        let (l, r) = id::identity_6(&x, &y1, &y2, &p).unwrap();
        prop_assert!(l.set_eq(&r), "identity 6 (seed {seed})");
    }

    #[test]
    fn goj_identities_15_16_hold(
        rows in 1usize..7,
        domain in 1i64..5,
        null_pct in 0u32..31,
        seed in 0u64..100_000,
    ) {
        let (x, y, z) = xyz(rows, domain, null_pct, seed);
        let (l, r) = id::identity_15(&x, &y, &z, &pxy(), &pyz()).unwrap();
        prop_assert!(l.set_eq(&r), "identity 15 (seed {seed})");
        let s = vec![Attr::parse("Y.b"), Attr::parse("Y.b2")];
        let (l, r) = id::identity_16(&x, &y, &z, &pxy(), &pyz(), &s).unwrap();
        prop_assert!(l.set_eq(&r), "identity 16 (seed {seed})");
    }

    #[test]
    fn fig3_derivation_chain_holds(
        rows in 1usize..6,
        domain in 1i64..4,
        null_pct in 0u32..31,
        seed in 0u64..100_000,
    ) {
        let (x, y, z) = xyz(rows, domain, null_pct, seed);
        let steps = id::fig3_derivation(&x, &y, &z, &pxy(), &pyz()).unwrap();
        for (i, w) in steps.windows(2).enumerate() {
            prop_assert!(
                w[0].set_eq(&w[1]),
                "Fig 3 step {} → {} differs (seed {seed})",
                i + 1,
                i + 2
            );
        }
    }

    /// Identity 10 through the Query layer as well (eval path).
    #[test]
    fn outerjoin_expansion_through_query_eval(
        rows in 1usize..7,
        domain in 1i64..5,
        seed in 0u64..100_000,
    ) {
        let (x, y, _) = xyz(rows, domain, 20, seed);
        let mut db = Database::new();
        db.insert(x);
        db.insert(y);
        use fro_algebra::Query;
        let oj = Query::rel("X").outerjoin(Query::rel("Y"), pxy());
        let expanded = Query::rel("X")
            .join(Query::rel("Y"), pxy())
            .union(Query::rel("X").antijoin(Query::rel("Y"), pxy()));
        prop_assert!(oj.eval(&db).unwrap().set_eq(&expanded.eval(&db).unwrap()));
    }
}

/// The strongness precondition of identity 12 is real: with Example
/// 3's weak predicate it must fail for *some* random input.
#[test]
fn identity_12_fails_without_strongness_somewhere() {
    let weak_pyz = Pred::eq_attr("Y.b2", "Z.c").or(Pred::is_null("Y.b2"));
    let mut found = false;
    for seed in 0..500u64 {
        let (x, y, z) = xyz(3, 3, 40, seed);
        let (l, r) = id::identity_12(&x, &y, &z, &pxy(), &weak_pyz).unwrap();
        if !l.set_eq(&r) {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "weak identity 12 never failed — precondition looks vacuous"
    );
}

/// Identities 8/9's strongness precondition is real too.
#[test]
fn identities_8_9_fail_without_strongness_somewhere() {
    let weak_pyz = Pred::eq_attr("Y.b2", "Z.c").or(Pred::is_null("Y.b2"));
    let mut found8 = false;
    let mut found9 = false;
    for seed in 0..500u64 {
        let (x, y, z) = xyz(3, 3, 40, seed);
        let (l, empty) = id::identity_8(&x, &y, &z, &pxy(), &weak_pyz).unwrap();
        if !l.set_eq(&empty) {
            found8 = true;
        }
        let (l, r) = id::identity_9(&x, &y, &z, &pxy(), &weak_pyz).unwrap();
        if !l.set_eq(&r) {
            found9 = true;
        }
        if found8 && found9 {
            break;
        }
    }
    assert!(found8, "identity 8 never failed with a weak predicate");
    assert!(found9, "identity 9 never failed with a weak predicate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Two-sided outerjoin decomposes into the union of both one-sided
    /// outerjoins (under the §2.1 padding convention), and restricts
    /// back to each side per the §4 argument.
    #[test]
    fn full_outerjoin_decomposition(
        rows in 1usize..8,
        domain in 1i64..5,
        null_pct in 0u32..41,
        seed in 0u64..100_000,
    ) {
        let (x, y, _) = xyz(rows, domain, null_pct, seed);
        let full = fro_algebra::ops::full_outerjoin(&x, &y, &pxy()).unwrap();
        let l = fro_algebra::ops::outerjoin(&x, &y, &pxy()).unwrap();
        let r = fro_algebra::ops::outerjoin(&y, &x, &pxy()).unwrap();
        let u = fro_algebra::ops::union(&l, &r).unwrap();
        prop_assert!(full.set_eq(&u), "A ↔ B ≠ (A→B) ∪ (B→A) at seed {seed}");

        // Strong restriction on X recovers the X-preserving half.
        let strong_x = Pred::cmp_lit("X.a", fro_algebra::CmpOp::Ge, 0);
        let restricted = fro_algebra::ops::restrict(&full, &strong_x).unwrap();
        let left_restricted = fro_algebra::ops::restrict(&l, &strong_x).unwrap();
        prop_assert!(restricted.set_eq(&left_restricted));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// §6.3 fragment: the semijoin analogues of identities 2 and 3
    /// hold unconditionally.
    #[test]
    fn semijoin_identities_hold(
        rows in 1usize..8,
        domain in 1i64..5,
        null_pct in 0u32..41,
        seed in 0u64..100_000,
    ) {
        let (x, y, z) = xyz(rows, domain, null_pct, seed);
        let (l, r) = id::identity_sj2(&x, &y, &z, &pxy(), &pyz()).unwrap();
        prop_assert!(l.set_eq(&r), "sj-identity 2 (seed {seed})");
        let (l, r) = id::identity_sj3(&x, &y, &z, &Pred::eq_attr("Y.b", "X.a"), &pyz()).unwrap();
        prop_assert!(l.set_eq(&r), "sj-identity 3 (seed {seed})");
    }
}

/// Semijoins in series genuinely constrain evaluation: dropping the
/// inner filter changes the result for some input (anti-vacuity for
/// the §6.3 forbidden pattern).
#[test]
fn semijoin_series_filter_bites_somewhere() {
    let mut found = false;
    for seed in 0..300u64 {
        let (x, y, z) = xyz(4, 3, 20, seed);
        let (l, r) = id::semijoin_series_shape(&x, &y, &z, &pxy(), &pyz()).unwrap();
        if !l.set_eq(&r) {
            found = true;
            break;
        }
    }
    assert!(found, "the inner semijoin filter never mattered");
}
