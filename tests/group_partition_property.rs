//! Partitioned parallel `GroupCount` is *bit-identical* to the
//! sequential operator: for random null-bearing inputs, every
//! `(partitions, threads)` configuration must reproduce
//! `ops::group_count` exactly — same groups, same counts, same
//! first-seen emission order — with and without a counted column.

use fro_algebra::{ops, Attr, Relation};
use fro_exec::{execute_with, ExecConfig, ExecStats, PhysPlan, Storage};
use fro_testkit::{random_database, DbSpec};
use proptest::prelude::*;

/// Public id-keyed table read (`Storage::get` is a test-only oracle).
fn rel_of<'a>(storage: &'a Storage, name: &str) -> &'a Relation {
    let id = storage.rel_id(name).expect("interned");
    storage.get_by_id(id).expect("stored").relation()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitioned_group_count_is_bit_identical(
        rows in 0usize..300,
        domain in 1i64..24,
        nulls in 0u32..4,
        counted in any::<bool>(),
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["R"], rows, domain, f64::from(nulls) * 0.15);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let counted_attr = counted.then(|| Attr::parse("R.v"));

        let plan = PhysPlan::GroupCount {
            input: Box::new(PhysPlan::scan("R")),
            group_attrs: vec![Attr::parse("R.k")],
            counted: counted_attr.clone(),
        };

        // The sequential algebra operator is the specification.
        let want = ops::group_count(
            rel_of(&storage, "R"),
            &[Attr::parse("R.k")],
            counted_attr.as_ref(),
        ).expect("oracle");

        // Tiny morsels force real work distribution even at 300 rows.
        for partitions in [1usize, 2, 8, 64] {
            for threads in [1usize, 2, 8] {
                let cfg = ExecConfig::with_threads(threads)
                    .morsel_rows(16)
                    .partitions(partitions);
                let mut stats = ExecStats::default();
                let got = execute_with(&plan, &storage, &mut stats, &cfg)
                    .expect("executes");
                prop_assert_eq!(
                    &got, &want,
                    "p={} t={} diverged from ops::group_count", partitions, threads
                );
            }
        }
    }

    /// Grouping on both columns with a counted column, under the most
    /// adversarial split (64 partitions, morsel of 1): wider keys mean
    /// more distinct groups than partitions can separate, so partition
    /// merge order does real work.
    #[test]
    fn wide_keys_under_max_partitioning(
        rows in 1usize..120,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["R"], rows, 4, 0.3);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let group = [Attr::parse("R.k"), Attr::parse("R.v")];

        let plan = PhysPlan::GroupCount {
            input: Box::new(PhysPlan::scan("R")),
            group_attrs: group.to_vec(),
            counted: Some(Attr::parse("R.k")),
        };
        let want = ops::group_count(
            rel_of(&storage, "R"),
            &group,
            Some(&Attr::parse("R.k")),
        ).expect("oracle");

        let cfg = ExecConfig::with_threads(8).morsel_rows(1).partitions(64);
        let mut stats = ExecStats::default();
        let got = execute_with(&plan, &storage, &mut stats, &cfg).expect("executes");
        prop_assert_eq!(got, want);
    }
}
