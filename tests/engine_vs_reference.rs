//! Cross-implementation checks: the hash/index physical engine must
//! agree with the reference nested-loop evaluator on every random
//! query, whether lowered syntactically or reordered by the DP.

use fro_algebra::Attr;
use fro_core::{optimize, optimizer::lower, Catalog, Policy};
use fro_exec::{execute, ExecStats, Storage};
use fro_testkit::{
    db_for_graph, random_connected_graph, random_implementing_tree, random_nice_graph, GraphSpec,
};
use proptest::prelude::*;

fn indexed_storage(db: &fro_algebra::Database) -> Storage {
    let mut storage = Storage::from_database(db);
    let names: Vec<String> = db.names().map(str::to_owned).collect();
    for name in names {
        storage.create_index(&name, &[Attr::new(&name, "k")]);
    }
    storage
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Syntactic lowering of arbitrary implementing trees.
    #[test]
    fn lowered_plans_match_reference(
        n in 2usize..6,
        ojp in 0u32..100,
        gseed in 0u64..10_000,
        tseed in 0u64..10_000,
        dseed in 0u64..10_000,
        rows in 1usize..10,
        nulls in 0u32..30,
    ) {
        let g = random_connected_graph(n, f64::from(ojp) / 100.0, gseed);
        let q = random_implementing_tree(&g, tseed).expect("connected");
        let db = db_for_graph(&g, rows, 4, f64::from(nulls) / 100.0, dseed);
        let storage = indexed_storage(&db);
        let catalog = Catalog::from_storage(&storage);

        let plan = lower(&q, &catalog).expect("lowerable");
        let mut stats = ExecStats::new();
        let got = execute(&plan, &storage, &mut stats).expect("executes");
        let want = q.eval(&db).expect("reference eval");
        prop_assert!(
            got.set_eq(&want),
            "engine disagrees with reference\nquery {}\nplan:\n{}",
            q.shape(),
            plan.explain()
        );
    }

    /// Optimized (possibly reordered) plans for nice graphs.
    #[test]
    fn optimized_plans_match_reference(
        core in 0usize..3,
        oj in 0usize..3,
        gseed in 0u64..10_000,
        tseed in 0u64..10_000,
        dseed in 0u64..10_000,
        rows in 1usize..10,
    ) {
        let spec = GraphSpec {
            core: 1 + core,
            oj_nodes: oj,
            extra_core_edges: 0,
            strong: true,
        };
        let g = random_nice_graph(&spec, gseed);
        let q = random_implementing_tree(&g, tseed).expect("connected");
        let db = db_for_graph(&g, rows, 4, 0.15, dseed);
        let storage = indexed_storage(&db);
        let catalog = Catalog::from_storage(&storage);

        let optimized = optimize(&q, &catalog, Policy::Paper).expect("optimizes");
        prop_assert!(optimized.reordered, "nice graphs must take the DP path");
        let mut stats = ExecStats::new();
        let got = execute(&optimized.plan, &storage, &mut stats).expect("executes");
        let want = q.eval(&db).expect("reference eval");
        prop_assert!(
            got.set_eq(&want),
            "optimizer changed the result\nquery {}\nplan:\n{}",
            q.shape(),
            optimized.plan.explain()
        );
    }

    /// Physical GOJ against the reference GOJ.
    #[test]
    fn goj_plan_matches_reference(
        rows in 1usize..10,
        dseed in 0u64..10_000,
    ) {
        use fro_algebra::{Pred, Query};
        let g = random_connected_graph(2, 0.0, 1);
        let db = db_for_graph(&g, rows, 4, 0.2, dseed);
        let storage = indexed_storage(&db);
        let catalog = Catalog::from_storage(&storage);
        let q = Query::rel("R0").goj(
            Query::rel("R1"),
            Pred::eq_attr("R0.k", "R1.k"),
            vec![Attr::parse("R0.k")],
        );
        let plan = lower(&q, &catalog).unwrap();
        let mut stats = ExecStats::new();
        let got = execute(&plan, &storage, &mut stats).unwrap();
        prop_assert!(got.set_eq(&q.eval(&db).unwrap()));
    }
}

/// The reordered plan must never *cost more* than the syntactic plan
/// under the engine's own counters, on Example 1 style workloads.
#[test]
fn dp_never_loses_to_syntactic_on_example1_family() {
    for n in [10usize, 100, 1000] {
        let ex = fro_testkit::workloads::example1(n);
        let syn = lower(&ex.bad_query, &ex.catalog).unwrap();
        let mut syn_stats = ExecStats::new();
        let a = execute(&syn, &ex.storage, &mut syn_stats).unwrap();
        let opt = optimize(&ex.bad_query, &ex.catalog, Policy::Paper).unwrap();
        let mut opt_stats = ExecStats::new();
        let b = execute(&opt.plan, &ex.storage, &mut opt_stats).unwrap();
        assert!(a.set_eq(&b));
        assert!(
            opt_stats.tuples_retrieved <= syn_stats.tuples_retrieved,
            "n={n}: reordered {} > syntactic {}",
            opt_stats.tuples_retrieved,
            syn_stats.tuples_retrieved
        );
        assert_eq!(opt_stats.tuples_retrieved, 3);
        assert_eq!(syn_stats.tuples_retrieved as usize, 2 * n + 1);
    }
}
