//! Properties of the morsel-driven parallel executor.
//!
//! For random inputs — including empty relations, all-null key columns,
//! duplicate keys, and morsels both smaller and larger than the probe
//! side — every join kind must be:
//!
//! 1. **set-equal to the reference evaluator** in `fro-algebra`
//!    (semantic correctness), and
//! 2. **row-for-row identical to the sequential engine** at any thread
//!    count and morsel size (deterministic parallelism: same rows, same
//!    order, same counters).

use fro_algebra::{ops, Attr, CmpOp, Pred, Relation};
use fro_exec::{execute, execute_with, ExecConfig, ExecStats, JoinKind, PhysPlan, Storage};
use fro_testkit::dbgen::{random_database, DbSpec};
use proptest::prelude::*;

const ALL_KINDS: [JoinKind; 5] = [
    JoinKind::Inner,
    JoinKind::LeftOuter,
    JoinKind::FullOuter,
    JoinKind::Semi,
    JoinKind::Anti,
];

fn reference(kind: JoinKind, l: &Relation, r: &Relation, pred: &Pred) -> Relation {
    match kind {
        JoinKind::Inner => ops::join(l, r, pred),
        JoinKind::LeftOuter => ops::outerjoin(l, r, pred),
        JoinKind::FullOuter => ops::full_outerjoin(l, r, pred),
        JoinKind::Semi => ops::semijoin(l, r, pred),
        JoinKind::Anti => ops::antijoin(l, r, pred),
    }
    .expect("reference evaluator")
}

/// Thread counts the issue pins down, plus morsel sizes on both sides
/// of the probe cardinality (rows ≤ 16, so 1 and 5 split the probe into
/// many morsels while 1024 leaves a single one).
const THREADS: [usize; 3] = [1, 2, 8];
const MORSELS: [usize; 3] = [1, 5, 1024];

fn assert_parallel_matches(
    plan: &PhysPlan,
    storage: &Storage,
    l: &Relation,
    r: &Relation,
    pred: &Pred,
    label: &str,
) {
    let kind = match plan {
        PhysPlan::HashJoin { kind, .. } | PhysPlan::NlJoin { kind, .. } => *kind,
        _ => unreachable!("join plans only"),
    };
    let mut seq_stats = ExecStats::new();
    let seq = execute(plan, storage, &mut seq_stats).expect("sequential run");
    let want = reference(kind, l, r, pred);
    assert!(
        seq.set_eq(&want),
        "{label}: engine disagrees with reference ({} vs {} rows)",
        seq.len(),
        want.len()
    );
    for threads in THREADS {
        for morsel in MORSELS {
            let cfg = ExecConfig::with_threads(threads).morsel_rows(morsel);
            let mut st = ExecStats::new();
            let par = execute_with(plan, storage, &mut st, &cfg).expect("parallel run");
            assert_eq!(
                par.rows(),
                seq.rows(),
                "{label}: rows differ at threads={threads} morsel={morsel}"
            );
            assert_eq!(
                par.schema().to_string(),
                seq.schema().to_string(),
                "{label}: schema differs at threads={threads} morsel={morsel}"
            );
            assert_eq!(
                st, seq_stats,
                "{label}: stats differ at threads={threads} morsel={morsel}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hash joins over random key/value relations. `nulls` sweeps from
    /// no nulls to **all keys null** (nulls = 100); `rows = 0` covers
    /// empty build and probe sides.
    #[test]
    fn parallel_hash_join_all_kinds(
        rows in 0usize..16,
        domain in 1i64..6,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
        with_residual in any::<bool>(),
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let l = db.get("L").expect("L").clone();
        let r = db.get("R").expect("R").clone();
        let residual = if with_residual {
            Pred::cmp_attr("L.v", CmpOp::Le, "R.v")
        } else {
            Pred::always()
        };
        let pred = Pred::eq_attr("L.k", "R.k").and(residual.clone());
        for kind in ALL_KINDS {
            let plan = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::scan("L")),
                build: Box::new(PhysPlan::scan("R")),
                probe_keys: vec![Attr::parse("L.k")],
                build_keys: vec![Attr::parse("R.k")],
                residual: residual.clone(),
            };
            assert_parallel_matches(&plan, &storage, &l, &r, &pred, &format!("hash {kind}"));
        }
    }

    /// Nested-loop joins with a non-equi predicate — the degenerate
    /// kernel where every pair is a candidate.
    #[test]
    fn parallel_nl_join_all_kinds(
        rows in 0usize..10,
        domain in 1i64..5,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let l = db.get("L").expect("L").clone();
        let r = db.get("R").expect("R").clone();
        let pred = Pred::cmp_attr("L.k", CmpOp::Ge, "R.k");
        for kind in ALL_KINDS {
            let plan = PhysPlan::NlJoin {
                kind,
                left: Box::new(PhysPlan::scan("L")),
                right: Box::new(PhysPlan::scan("R")),
                pred: pred.clone(),
            };
            assert_parallel_matches(&plan, &storage, &l, &r, &pred, &format!("nl {kind}"));
        }
    }

    /// Index joins (the remaining unified-kernel path): parallel probes
    /// over an indexed inner table match the sequential engine exactly.
    #[test]
    fn parallel_index_join_matches_sequential(
        rows in 1usize..12,
        domain in 1i64..5,
        nulls in 0u32..60,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let mut storage = Storage::from_database(&db);
        storage.create_index("R", &[Attr::parse("R.k")]);
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::Semi, JoinKind::Anti] {
            let plan = PhysPlan::IndexJoin {
                kind,
                outer: Box::new(PhysPlan::scan("L")),
                inner: "R".into(),
                outer_keys: vec![Attr::parse("L.k")],
                inner_keys: vec![Attr::parse("R.k")],
                residual: Pred::always(),
            };
            let mut seq_stats = ExecStats::new();
            let seq = execute(&plan, &storage, &mut seq_stats).expect("sequential");
            for threads in THREADS {
                for morsel in MORSELS {
                    let cfg = ExecConfig::with_threads(threads).morsel_rows(morsel);
                    let mut st = ExecStats::new();
                    let par = execute_with(&plan, &storage, &mut st, &cfg).expect("parallel");
                    prop_assert_eq!(par.rows(), seq.rows(), "index {} t={}", kind, threads);
                    prop_assert_eq!(st, seq_stats, "index {} t={}", kind, threads);
                }
            }
        }
    }

    /// Workload-shaped sanity: both Example 1 associations, lowered to
    /// physical plans, run identically under the parallel engine — the
    /// paper's retrieval-count asymmetry is preserved at any thread
    /// count.
    #[test]
    fn example1_workload_is_thread_invariant(n in 1usize..40) {
        let w = fro_testkit::workloads::example1(n);
        for query in [&w.bad_query, &w.good_query] {
            let plan = fro_core::optimizer::lower(query, &w.catalog).expect("lowerable");
            let mut seq_stats = ExecStats::new();
            let seq = execute(&plan, &w.storage, &mut seq_stats).expect("sequential");
            let cfg = ExecConfig::with_threads(8).morsel_rows(3);
            let mut st = ExecStats::new();
            let par = execute_with(&plan, &w.storage, &mut st, &cfg).expect("parallel");
            prop_assert_eq!(par.rows(), seq.rows());
            prop_assert_eq!(st, seq_stats);
        }
    }
}
