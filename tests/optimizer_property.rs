//! Optimizer-wide properties: every planning path (syntactic lowering,
//! exhaustive DP, greedy) must produce the same *result*, and the DP
//! must never be beaten on its own estimated cost.

use fro_algebra::Attr;
use fro_core::optimizer::{dp_optimize, greedy_optimize, lower};
use fro_core::{optimize, Catalog, Policy};
use fro_exec::{execute, ExecStats, Storage};
use fro_testkit::{db_for_graph, random_implementing_tree, random_nice_graph, GraphSpec};
use proptest::prelude::*;

fn indexed_storage(db: &fro_algebra::Database) -> Storage {
    let mut storage = Storage::from_database(db);
    let names: Vec<String> = db.names().map(str::to_owned).collect();
    for name in names {
        storage.create_index(&name, &[Attr::new(&name, "k")]);
    }
    storage
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_planning_paths_agree(
        core in 1usize..4,
        oj in 0usize..3,
        gseed in 0u64..10_000,
        tseed in 0u64..10_000,
        dseed in 0u64..10_000,
        rows in 1usize..10,
    ) {
        let spec = GraphSpec { core, oj_nodes: oj, extra_core_edges: 0, strong: true };
        let g = random_nice_graph(&spec, gseed);
        let q = random_implementing_tree(&g, tseed).expect("connected");
        let db = db_for_graph(&g, rows, 4, 0.15, dseed);
        let storage = indexed_storage(&db);
        let catalog = Catalog::from_storage(&storage);
        let reference = q.eval(&db).expect("reference");

        // Syntactic.
        let syn = lower(&q, &catalog).expect("lowers");
        let mut st = ExecStats::new();
        let a = execute(&syn, &storage, &mut st).expect("runs");
        prop_assert!(a.set_eq(&reference), "syntactic diverged");

        // Exhaustive DP.
        let dp = dp_optimize(&g, &catalog).expect("dp");
        let mut st = ExecStats::new();
        let b = execute(&dp.plan, &storage, &mut st).expect("runs");
        prop_assert!(b.set_eq(&reference), "dp diverged:\n{}", dp.plan);

        // Greedy.
        let gr = greedy_optimize(&g, &catalog).expect("greedy");
        let mut st = ExecStats::new();
        let c = execute(&gr.plan, &storage, &mut st).expect("runs");
        prop_assert!(c.set_eq(&reference), "greedy diverged:\n{}", gr.plan);

        // The exhaustive DP is optimal within its own cost model:
        // greedy can never have *lower* estimated cost.
        prop_assert!(
            dp.cost <= gr.cost + 1e-6,
            "greedy ({}) beat the exhaustive DP ({})",
            gr.cost,
            dp.cost
        );
    }

    /// `optimize` is deterministic and stable: same inputs, same plan.
    #[test]
    fn optimize_deterministic(
        core in 1usize..4,
        oj in 0usize..3,
        gseed in 0u64..10_000,
        tseed in 0u64..10_000,
    ) {
        let spec = GraphSpec { core, oj_nodes: oj, extra_core_edges: 0, strong: true };
        let g = random_nice_graph(&spec, gseed);
        let q = random_implementing_tree(&g, tseed).expect("connected");
        let mut catalog = Catalog::new();
        for name in g.node_names() {
            catalog.add_table(
                name,
                std::sync::Arc::new(fro_algebra::Schema::of_relation(name, &["k", "v"])),
                100,
            );
        }
        let p1 = optimize(&q, &catalog, Policy::Paper).expect("optimizes");
        let p2 = optimize(&q, &catalog, Policy::Paper).expect("optimizes");
        prop_assert_eq!(p1.plan, p2.plan);
        prop_assert_eq!(p1.est_cost, p2.est_cost);
    }
}

/// The DP's estimated cost is monotone in the right direction on
/// Example 1: driving from the tiny relation must be the chosen plan
/// at every scale.
#[test]
fn dp_choice_stable_across_scales() {
    for n in [10usize, 1_000, 100_000] {
        let ex = fro_testkit::workloads::example1(n);
        let g = fro_graph::graph_of(&ex.bad_query).unwrap();
        let dp = dp_optimize(&g, &ex.catalog).unwrap();
        let text = dp.plan.explain();
        assert!(text.contains("Scan R1"), "n={n}:\n{text}");
        assert!(!text.contains("Scan R2"), "n={n}:\n{text}");
    }
}

/// Greedy and DP coincide exactly on two-relation graphs (only one
/// merge to make).
#[test]
fn greedy_equals_dp_on_pairs() {
    for seed in 0..20u64 {
        let spec = GraphSpec {
            core: 2,
            oj_nodes: 0,
            extra_core_edges: 0,
            strong: true,
        };
        let g = random_nice_graph(&spec, seed);
        let db = db_for_graph(&g, 6, 4, 0.1, seed);
        let storage = indexed_storage(&db);
        let catalog = Catalog::from_storage(&storage);
        let dp = dp_optimize(&g, &catalog).unwrap();
        let gr = greedy_optimize(&g, &catalog).unwrap();
        assert!((dp.cost - gr.cost).abs() < 1e-9, "seed {seed}");
    }
}
