//! The interned pipeline (dense `RelId`/`AttrId`, `RelSet` bitsets)
//! must be observationally identical to the name-keyed compatibility
//! shims it replaced: same split decisions, same plans (to the
//! `explain()` string), same results, same `ExecStats`, and
//! insertion-order-independent — plus diagnosable storage misses.
//!
//! The name-keyed side of every oracle pair is `#[doc(hidden)]` behind
//! the `testing-oracles` feature, so this whole file compiles only
//! under `--features testing-oracles` (scripts/ci.sh runs it).
#![cfg(feature = "testing-oracles")]

use fro_algebra::{Pred, RelSet};
use fro_core::optimizer::{
    dp_optimize, lower, lower_by_name, split_equi, split_equi_by_name, RelMap,
};
use fro_core::{Catalog, Policy};
use fro_exec::{execute, ExecError, ExecStats, PhysPlan, Storage};
use fro_testkit::{db_for_graph, random_implementing_tree, random_nice_graph, GraphSpec};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn spec(core: usize, oj: usize) -> GraphSpec {
    GraphSpec {
        core,
        oj_nodes: oj,
        extra_core_edges: 1,
        strong: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bitset predicate splitting answers exactly like the
    /// `BTreeSet<String>` shim on every 2-partition of a random graph.
    #[test]
    fn split_equi_matches_name_keyed_shim(
        core in 1usize..5,
        oj in 0usize..3,
        gseed in 0u64..10_000,
        cut in 1u64..u64::MAX,
    ) {
        let g = random_nice_graph(&spec(core, oj), gseed);
        let n = g.n_nodes();
        let catalog = Catalog::new();
        let relmap = RelMap::from_graph(&g, &catalog);
        let full = RelSet::full(n);
        let left = RelSet::from_bits(cut & full.bits());
        prop_assume!(!left.is_empty() && left != full);
        let right = full.minus(left);

        // The conjunction of every crossing edge predicate.
        let crossing = Pred::from_conjuncts(g.edges().iter().filter_map(|e| {
            let cross = (left.contains(e.a()) && right.contains(e.b()))
                || (left.contains(e.b()) && right.contains(e.a()));
            cross.then(|| e.pred().clone())
        }));

        let (pairs, residual) = split_equi(&crossing, left, right, &relmap);
        let lnames: BTreeSet<String> =
            left.iter().map(|i| g.node_name(i).to_owned()).collect();
        let rnames: BTreeSet<String> =
            right.iter().map(|i| g.node_name(i).to_owned()).collect();
        let (pairs_n, residual_n) = split_equi_by_name(&crossing, &lnames, &rnames);
        prop_assert_eq!(pairs, pairs_n);
        prop_assert_eq!(residual, residual_n);
    }

    /// The interned lowering path builds the same plan as the
    /// name-keyed walk on every random implementing tree, and both run
    /// to identical relations with identical `ExecStats`.
    #[test]
    fn interned_lowering_matches_name_keyed(
        core in 1usize..4,
        oj in 0usize..3,
        gseed in 0u64..10_000,
        tseed in 0u64..10_000,
        dseed in 0u64..10_000,
        rows in 1usize..8,
    ) {
        let g = random_nice_graph(&spec(core, oj), gseed);
        let q = random_implementing_tree(&g, tseed).expect("connected");
        let db = db_for_graph(&g, rows, 4, 0.1, dseed);
        let mut storage = Storage::from_database(&db);
        for name in g.node_names() {
            storage.create_index(name, &[fro_algebra::Attr::new(name, "k")]);
        }
        let catalog = Catalog::from_storage(&storage);

        let interned = lower(&q, &catalog).expect("interned lowering");
        let named = lower_by_name(&q, &catalog).expect("name-keyed lowering");
        prop_assert_eq!(interned.explain(), named.explain(), "plans diverged");

        let mut st_a = ExecStats::new();
        let a = execute(&interned, &storage, &mut st_a).expect("interned runs");
        let mut st_b = ExecStats::new();
        let b = execute(&named, &storage, &mut st_b).expect("named runs");
        prop_assert_eq!(a.rows(), b.rows(), "results diverged");
        prop_assert_eq!(st_a, st_b, "stats diverged");
        prop_assert!(a.set_eq(&q.eval(&db).expect("reference")));
    }

    /// Interning is insertion-order independent: loading the same
    /// tables in reverse order changes every dense id, but plans,
    /// results, and stats are unchanged.
    #[test]
    fn plans_independent_of_interning_order(
        core in 2usize..5,
        gseed in 0u64..10_000,
        dseed in 0u64..10_000,
        rows in 1usize..8,
    ) {
        let g = random_nice_graph(&spec(core, 1), gseed);
        let db = db_for_graph(&g, rows, 4, 0.1, dseed);
        let mut fwd = Storage::new();
        let mut rev = Storage::new();
        let names: Vec<&str> = g.node_names().iter().map(String::as_str).collect();
        for &name in &names {
            fwd.insert(name, db.get(name).unwrap().clone());
        }
        for &name in names.iter().rev() {
            rev.insert(name, db.get(name).unwrap().clone());
        }
        prop_assume!(fwd.rel_id(names[0]) != rev.rel_id(names[0]) || names.len() == 1);

        let plan_f = dp_optimize(&g, &Catalog::from_storage(&fwd)).expect("dp fwd");
        let plan_r = dp_optimize(&g, &Catalog::from_storage(&rev)).expect("dp rev");
        prop_assert_eq!(plan_f.plan.explain(), plan_r.plan.explain());
        prop_assert_eq!(plan_f.pairs_examined, plan_r.pairs_examined);

        let mut st_f = ExecStats::new();
        let a = execute(&plan_f.plan, &fwd, &mut st_f).expect("runs fwd");
        let mut st_r = ExecStats::new();
        let b = execute(&plan_r.plan, &rev, &mut st_r).expect("runs rev");
        prop_assert_eq!(a.rows(), b.rows());
        prop_assert_eq!(st_f, st_r);
    }
}

/// The full `optimize()` entry point agrees with the reference
/// evaluator through a storage → database → storage round trip.
#[test]
fn optimize_survives_storage_roundtrip() {
    let g = random_nice_graph(&spec(3, 2), 17);
    let q = random_implementing_tree(&g, 5).expect("connected");
    let db = db_for_graph(&g, 6, 4, 0.1, 17);
    let storage = Storage::from_database(&db);
    let round = Storage::from_database(&storage.to_database());
    let reference = q.eval(&db).expect("reference");
    for s in [&storage, &round] {
        let cat = Catalog::from_storage(s);
        let out = fro_core::optimize(&q, &cat, Policy::Paper).expect("optimizes");
        let mut st = ExecStats::new();
        let got = out.run(s, &mut st).expect("runs");
        assert!(got.set_eq(&reference));
    }
}

/// A plan referencing an unknown table fails with the unknown name and
/// a nearest-name suggestion, not a bare miss.
#[test]
fn unknown_table_reports_suggestion() {
    let g = random_nice_graph(&spec(2, 0), 3);
    let db = db_for_graph(&g, 3, 4, 0.0, 3);
    let storage = Storage::from_database(&db);
    let mut st = ExecStats::new();
    let err = execute(&PhysPlan::scan("R00"), &storage, &mut st).unwrap_err();
    match err {
        ExecError::UnknownTable { name, suggestion } => {
            assert_eq!(name, "R00");
            assert_eq!(suggestion.as_deref(), Some("R0"));
        }
        other => panic!("expected UnknownTable, got {other:?}"),
    }
    // A hopelessly distant name gets no suggestion.
    let err = execute(&PhysPlan::scan("zzzzzzzzzz"), &storage, &mut st).unwrap_err();
    match err {
        ExecError::UnknownTable { suggestion, .. } => assert_eq!(suggestion, None),
        other => panic!("expected UnknownTable, got {other:?}"),
    }
}
