//! Lemma 2 + Lemma 3, end to end, on random graphs:
//!
//! * every *applicable* BT on an implementing tree of a nice graph
//!   with strong predicates is classified result-preserving, and
//!   actually preserves `eval` on random databases (Lemma 2);
//! * the closure under all BTs reaches the full enumerated tree set
//!   (Lemma 3), and the preserving-only closure does too on
//!   nice+strong graphs (the mechanism behind Theorem 1);
//! * a BT classified *non*-preserving really changes the result for
//!   some database (the classification is not conservative noise).

use fro_testkit::{
    db_for_graph, random_connected_graph, random_implementing_tree, random_nice_graph, GraphSpec,
};
use fro_trees::{
    applicable_bts, apply_bt, bt_closure, canonical_tree, enumerate_trees, find_bt_sequence,
    is_result_preserving, ClosureOptions, EnumLimit,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 2: on nice graphs with strong predicates, every
    /// applicable BT is classified preserving and preserves eval.
    #[test]
    fn applicable_bts_preserve_on_nice_strong(
        core in 1usize..4,
        oj in 0usize..3,
        gseed in 0u64..10_000,
        tseed in 0u64..10_000,
        dseed in 0u64..10_000,
    ) {
        let spec = GraphSpec { core, oj_nodes: oj, extra_core_edges: 0, strong: true };
        let g = random_nice_graph(&spec, gseed);
        let q = random_implementing_tree(&g, tseed).expect("connected");
        let db = db_for_graph(&g, 5, 3, 0.2, dseed);
        let base = q.eval(&db).expect("eval");
        for bt in applicable_bts(&q) {
            let verdict = is_result_preserving(&q, &bt);
            prop_assert_eq!(
                verdict,
                Some(true),
                "BT {} on {} classified {:?} on a nice+strong graph",
                bt,
                q.shape(),
                verdict
            );
            let next = apply_bt(&q, &bt).expect("applicable");
            prop_assert!(
                next.eval(&db).expect("eval").set_eq(&base),
                "BT {} changed the result of {}",
                bt,
                q.shape()
            );
        }
    }

    /// Lemma 3: closure under all BTs = full enumerated set, even on
    /// non-nice graphs.
    #[test]
    fn closure_reaches_all_trees(
        n in 2usize..5,
        ojp in 0u32..100,
        gseed in 0u64..10_000,
        tseed in 0u64..10_000,
    ) {
        let g = random_connected_graph(n, f64::from(ojp) / 100.0, gseed);
        let all: BTreeSet<_> = enumerate_trees(&g, EnumLimit::default())
            .expect("connected")
            .iter()
            .map(canonical_tree)
            .collect();
        let start = random_implementing_tree(&g, tseed).expect("connected");
        let reached: BTreeSet<_> = bt_closure(&start, ClosureOptions::default())
            .into_iter()
            .collect();
        prop_assert_eq!(reached, all, "closure mismatch on\n{}", g);
    }

    /// Preserving-only closure is complete on nice+strong graphs.
    #[test]
    fn preserving_closure_complete_on_nice_strong(
        core in 1usize..4,
        oj in 0usize..3,
        gseed in 0u64..10_000,
        tseed in 0u64..10_000,
    ) {
        let spec = GraphSpec { core, oj_nodes: oj, extra_core_edges: 0, strong: true };
        let g = random_nice_graph(&spec, gseed);
        let all: BTreeSet<_> = enumerate_trees(&g, EnumLimit::default())
            .expect("connected")
            .iter()
            .map(canonical_tree)
            .collect();
        let start = random_implementing_tree(&g, tseed).expect("connected");
        let reached: BTreeSet<_> = bt_closure(
            &start,
            ClosureOptions { only_preserving: true, max_states: 200_000 },
        )
        .into_iter()
        .collect();
        prop_assert_eq!(reached, all, "preserving closure incomplete on nice graph\n{}", g);
    }

    /// BT sequences found between random tree pairs replay correctly.
    #[test]
    fn bt_sequences_replay(
        core in 2usize..5,
        gseed in 0u64..10_000,
        t1 in 0u64..10_000,
        t2 in 0u64..10_000,
    ) {
        let spec = GraphSpec { core, oj_nodes: 1, extra_core_edges: 0, strong: true };
        let g = random_nice_graph(&spec, gseed);
        let a = random_implementing_tree(&g, t1).expect("connected");
        let b = random_implementing_tree(&g, t2).expect("connected");
        let seq = find_bt_sequence(&a, &b, ClosureOptions::default())
            .expect("Lemma 3: reachable");
        let end = fro_trees::search::replay(&a, &seq).expect("replays");
        prop_assert_eq!(canonical_tree(&end), canonical_tree(&b));
    }
}

/// Non-preserving classifications are justified: each such BT changes
/// the result for some database.
#[test]
fn non_preserving_bts_really_change_results() {
    let mut checked = 0;
    for gseed in 0..40u64 {
        let g = random_connected_graph(3, 0.7, gseed);
        let Some(q) = random_implementing_tree(&g, gseed) else {
            continue;
        };
        for bt in applicable_bts(&q) {
            if is_result_preserving(&q, &bt) != Some(false) {
                continue;
            }
            let next = apply_bt(&q, &bt).unwrap();
            let mut witnessed = false;
            for dseed in 0..60u64 {
                let db = db_for_graph(&g, 3, 3, 0.25, dseed);
                if !q.eval(&db).unwrap().set_eq(&next.eval(&db).unwrap()) {
                    witnessed = true;
                    break;
                }
            }
            assert!(
                witnessed,
                "BT {bt} on {} was classified non-preserving but never differed",
                q.shape()
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no non-preserving BTs encountered at all");
}
