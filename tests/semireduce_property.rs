//! Properties of semijoin reduction (`PhysPlan::SemiReduce`).
//!
//! A reduction wrap may only remove rows that could never contribute
//! to its generating join's output, so a reduced plan must be
//! **bit-identical** to the plain plan it was derived from: same rows,
//! same row order, same schema, same `rows_output`. On top of that the
//! reduced plan itself must satisfy the engine-parity contract — the
//! materializing and pipelined engines agree on every work counter
//! (including the new `rows_reduced` / `reducer_passes`), at every
//! thread count, columnar on or off.
//!
//! Random inputs sweep empty relations, all-null key columns
//! (`nulls = 100`), and single-hot-key domains (`domain = 1`); plans
//! sweep all five join kinds. Deterministic tests pin the soundness
//! matrix: a left-outerjoin's probe side is never up-reduced, a full
//! outerjoin is never reduced at all, and subtrees beneath a full
//! outerjoin still receive their local reductions.

use fro_algebra::{Attr, Pred};
use fro_core::{reduce_plan, Catalog, ReducePolicy};
use fro_exec::{execute_with, ExecConfig, ExecStats, JoinKind, PhysPlan, ReducePass, Storage};
use fro_testkit::dbgen::{random_database, DbSpec};
use proptest::prelude::*;

const ALL_KINDS: [JoinKind; 5] = [
    JoinKind::Inner,
    JoinKind::LeftOuter,
    JoinKind::FullOuter,
    JoinKind::Semi,
    JoinKind::Anti,
];

const THREADS: [usize; 3] = [1, 2, 8];

/// The counters the two engines must agree on exactly when running the
/// *same* (reduced) plan. The flow-bookkeeping counters
/// (`rows_materialized`, `rows_pipelined`, `pipelines`) are excluded by
/// design; the reducer counters are not — both engines must report the
/// same rows removed and the same number of reduction passes.
fn work_counters(st: &ExecStats) -> [(&'static str, u64); 7] {
    [
        ("tuples_retrieved", st.tuples_retrieved),
        ("index_probes", st.index_probes),
        ("comparisons", st.comparisons),
        ("hash_build_rows", st.hash_build_rows),
        ("rows_output", st.rows_output),
        ("rows_reduced", st.rows_reduced),
        ("reducer_passes", st.reducer_passes),
    ]
}

/// Force-reduce `plan`, then assert (1) the reduced plan's output is
/// bit-identical to the plain plan's — rows, order, schema — and (2)
/// the reduced plan satisfies engine parity across modes, thread
/// counts, and columnar on/off.
fn assert_reduction_sound(plan: &PhysPlan, storage: &Storage, catalog: &Catalog, label: &str) {
    let (reduced, report) = reduce_plan(plan, catalog, ReducePolicy::Always, None);

    let mut plain_st = ExecStats::new();
    let plain = execute_with(
        plan,
        storage,
        &mut plain_st,
        &ExecConfig::new().materializing(),
    )
    .expect("plain run");
    let mut red_st = ExecStats::new();
    let red = execute_with(
        &reduced,
        storage,
        &mut red_st,
        &ExecConfig::new().materializing(),
    )
    .expect("reduced run");

    assert_eq!(
        red.rows(),
        plain.rows(),
        "{label}: reduction changed rows or order ({report})"
    );
    assert_eq!(
        red.schema().to_string(),
        plain.schema().to_string(),
        "{label}: reduction changed the schema"
    );
    assert_eq!(
        red_st.rows_output, plain_st.rows_output,
        "{label}: rows_output differs after reduction"
    );
    assert_eq!(
        red_st.reducer_passes,
        report.applied.len() as u64,
        "{label}: applied wraps and executed passes disagree"
    );

    // Engine parity for the reduced plan itself.
    let mut pipe_st = ExecStats::new();
    let pipe = execute_with(
        &reduced,
        storage,
        &mut pipe_st,
        &ExecConfig::new().pipelined(),
    )
    .expect("pipelined reduced run");
    assert_eq!(pipe.rows(), red.rows(), "{label}: modes disagree on rows");
    for ((name, m), (_, p)) in work_counters(&red_st)
        .into_iter()
        .zip(work_counters(&pipe_st))
    {
        assert_eq!(m, p, "{label}: work counter {name} differs between modes");
    }
    for threads in THREADS {
        for columnar in [false, true] {
            let cfg = ExecConfig::with_threads(threads)
                .columnar(columnar)
                .pipelined();
            let mut st = ExecStats::new();
            let par = execute_with(&reduced, storage, &mut st, &cfg).expect("parallel reduced run");
            assert_eq!(
                par.rows(),
                pipe.rows(),
                "{label}: rows differ at threads={threads} columnar={columnar}"
            );
            assert_eq!(
                st, pipe_st,
                "{label}: stats differ at threads={threads} columnar={columnar}"
            );
        }
    }
}

fn join2(kind: JoinKind) -> PhysPlan {
    PhysPlan::HashJoin {
        kind,
        probe: Box::new(PhysPlan::scan("L")),
        build: Box::new(PhysPlan::scan("R")),
        probe_keys: vec![Attr::parse("L.k")],
        build_keys: vec![Attr::parse("R.k")],
        residual: Pred::always(),
    }
}

/// A two-dimension star on a single fact column: `(F ⋈ D1) kind D2`,
/// both joins keyed on `F.k`, so up-wraps must descend through the
/// inner join's probe side to land on `Scan F`.
fn star2(kind: JoinKind) -> PhysPlan {
    PhysPlan::HashJoin {
        kind,
        probe: Box::new(PhysPlan::HashJoin {
            kind: JoinKind::Inner,
            probe: Box::new(PhysPlan::scan("F")),
            build: Box::new(PhysPlan::scan("D1")),
            probe_keys: vec![Attr::parse("F.k")],
            build_keys: vec![Attr::parse("D1.k")],
            residual: Pred::always(),
        }),
        build: Box::new(PhysPlan::scan("D2")),
        probe_keys: vec![Attr::parse("F.k")],
        build_keys: vec![Attr::parse("D2.k")],
        residual: Pred::always(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Single joins of every kind: forced reduction never changes the
    /// result, from empty inputs through all-null keys to single-key
    /// domains.
    #[test]
    fn reduction_is_identity_on_single_joins(
        rows in 0usize..16,
        domain in 1i64..6,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let catalog = Catalog::from_storage(&storage);
        for kind in ALL_KINDS {
            assert_reduction_sound(&join2(kind), &storage, &catalog, &format!("join {kind}"));
        }
    }

    /// Two-join stars: wraps must descend through the inner join and
    /// still preserve the output exactly, for every outer join kind.
    #[test]
    fn reduction_is_identity_on_stars(
        rows in 0usize..12,
        domain in 1i64..5,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["F", "D1", "D2"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let catalog = Catalog::from_storage(&storage);
        for kind in ALL_KINDS {
            assert_reduction_sound(&star2(kind), &storage, &catalog, &format!("star {kind}"));
        }
    }

    /// Index joins: the reducer synthesizes a scan of the inner
    /// relation as the reduction source.
    #[test]
    fn reduction_is_identity_on_index_joins(
        rows in 1usize..12,
        domain in 1i64..5,
        nulls in 0u32..60,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let mut storage = Storage::from_database(&db);
        storage.create_index("R", &[Attr::parse("R.k")]);
        let catalog = Catalog::from_storage(&storage);
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::Semi, JoinKind::Anti] {
            let plan = PhysPlan::IndexJoin {
                kind,
                outer: Box::new(PhysPlan::scan("L")),
                inner: "R".into(),
                outer_keys: vec![Attr::parse("L.k")],
                inner_keys: vec![Attr::parse("R.k")],
                residual: Pred::always(),
            };
            assert_reduction_sound(&plan, &storage, &catalog, &format!("index {kind}"));
        }
    }
}

fn tiny_world(rels: &[&str]) -> (Storage, Catalog) {
    let spec = DbSpec::kv(rels, 8, 3, 0.2);
    let db = random_database(&spec, 42);
    let storage = Storage::from_database(&db);
    let catalog = Catalog::from_storage(&storage);
    (storage, catalog)
}

/// A left outerjoin preserves unmatched probe rows, so reducing its
/// probe side by the build key would delete preserved rows — only
/// down-pass (build-side) wraps are sound.
#[test]
fn left_outer_probe_side_is_never_up_reduced() {
    let (storage, catalog) = tiny_world(&["L", "R"]);
    let (_, report) = reduce_plan(
        &join2(JoinKind::LeftOuter),
        &catalog,
        ReducePolicy::Always,
        None,
    );
    assert!(!report.applied.is_empty(), "down-pass wrap expected");
    for w in &report.applied {
        assert!(
            matches!(w.pass, ReducePass::Down),
            "unsound up-pass wrap on a left outerjoin: {w}"
        );
    }
    assert_reduction_sound(
        &join2(JoinKind::LeftOuter),
        &storage,
        &catalog,
        "left outer",
    );
}

/// Full outerjoins preserve both sides — no wrap is sound, and the
/// plan must come back untouched even under `Always`.
#[test]
fn full_outer_join_is_refused_entirely() {
    let (_, catalog) = tiny_world(&["L", "R"]);
    let plan = join2(JoinKind::FullOuter);
    let (reduced, report) = reduce_plan(&plan, &catalog, ReducePolicy::Always, None);
    assert!(report.applied.is_empty(), "{}", report);
    assert_eq!(reduced, plan, "full outerjoin plan must be untouched");
}

/// A full outerjoin blocks wraps from crossing it, but joins *beneath*
/// it still get their local reductions — a wrap preserves its
/// generating join's output exactly, so the outerjoin above sees
/// identical input.
#[test]
fn subtrees_below_full_outer_still_reduce_locally() {
    let (storage, catalog) = tiny_world(&["F", "D1", "D2"]);
    let plan = star2(JoinKind::FullOuter);
    let (reduced, report) = reduce_plan(&plan, &catalog, ReducePolicy::Always, None);
    assert!(
        !report.applied.is_empty(),
        "inner join below the full outerjoin should still reduce"
    );
    for w in &report.applied {
        let shown = w.to_string();
        assert!(
            !shown.contains("D2"),
            "wrap crossed the full outerjoin: {shown}"
        );
    }
    assert_ne!(reduced, plan);
    assert_reduction_sound(&plan, &storage, &catalog, "below full outer");
}

/// `Never` is the identity on every plan.
#[test]
fn never_policy_is_identity() {
    let (_, catalog) = tiny_world(&["L", "R"]);
    for kind in ALL_KINDS {
        let plan = join2(kind);
        let (reduced, report) = reduce_plan(&plan, &catalog, ReducePolicy::Never, None);
        assert_eq!(reduced, plan);
        assert!(report.applied.is_empty());
    }
}
