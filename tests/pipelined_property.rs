//! Properties of the push-based pipelined executor.
//!
//! The pipelined engine (the default) must be **bit-identical** to the
//! materializing engine on every plan: same rows, same row order, same
//! schema, and the same *work* counters — `tuples_retrieved`,
//! `index_probes`, `comparisons`, `hash_build_rows`, `rows_output`.
//! Only the bookkeeping split may differ: the materializing engine
//! reports `rows_materialized` for every operator output, the pipelined
//! engine reports `rows_pipelined`/`pipelines` for fused flow and
//! `rows_materialized` only at pipeline breakers.
//!
//! Random inputs sweep empty relations, all-null key columns (nulls =
//! 100), duplicate keys, and morsels smaller and larger than the probe
//! side; plans sweep all five join kinds for every join operator,
//! fused filter/projection spines, filters over derived (non-interned)
//! attributes, and deep left-outerjoin chains. The pipelined engine
//! must also be internally deterministic: identical full stats at
//! every thread count and morsel size.

use fro_algebra::{Attr, CmpOp, Pred};
use fro_exec::{execute_with, ExecConfig, ExecStats, JoinKind, PhysPlan, Storage};
use fro_testkit::dbgen::{random_database, DbSpec};
use proptest::prelude::*;

const ALL_KINDS: [JoinKind; 5] = [
    JoinKind::Inner,
    JoinKind::LeftOuter,
    JoinKind::FullOuter,
    JoinKind::Semi,
    JoinKind::Anti,
];

const THREADS: [usize; 3] = [1, 2, 8];
const MORSELS: [usize; 3] = [1, 5, 1024];

/// The work counters both engines must agree on exactly. The
/// bookkeeping counters (`rows_materialized`, `rows_pipelined`,
/// `pipelines`) are deliberately excluded — they describe *how* rows
/// flowed, which is the one thing the modes do differently.
fn work_counters(st: &ExecStats) -> [(&'static str, u64); 5] {
    [
        ("tuples_retrieved", st.tuples_retrieved),
        ("index_probes", st.index_probes),
        ("comparisons", st.comparisons),
        ("hash_build_rows", st.hash_build_rows),
        ("rows_output", st.rows_output),
    ]
}

/// Run `plan` through both engines and assert bit-identical output and
/// work counters, plus pipelined-mode determinism across every thread
/// count and morsel size.
fn assert_modes_agree(plan: &PhysPlan, storage: &Storage, label: &str) {
    let mut mat_stats = ExecStats::new();
    let mat = execute_with(
        plan,
        storage,
        &mut mat_stats,
        &ExecConfig::new().materializing(),
    )
    .expect("materializing run");
    let mut pipe_stats = ExecStats::new();
    let pipe = execute_with(
        plan,
        storage,
        &mut pipe_stats,
        &ExecConfig::new().pipelined(),
    )
    .expect("pipelined run");

    assert_eq!(
        pipe.rows(),
        mat.rows(),
        "{label}: pipelined rows differ from materializing"
    );
    assert_eq!(
        pipe.schema().to_string(),
        mat.schema().to_string(),
        "{label}: schema differs between modes"
    );
    for ((name, m), (_, p)) in work_counters(&mat_stats)
        .into_iter()
        .zip(work_counters(&pipe_stats))
    {
        assert_eq!(m, p, "{label}: work counter {name} differs between modes");
    }
    assert!(
        pipe.is_empty() || pipe_stats.rows_pipelined + pipe_stats.rows_materialized > 0,
        "{label}: pipelined bookkeeping accounted for no flow"
    );

    for threads in THREADS {
        for morsel in MORSELS {
            let cfg = ExecConfig::with_threads(threads)
                .morsel_rows(morsel)
                .pipelined();
            let mut st = ExecStats::new();
            let par = execute_with(plan, storage, &mut st, &cfg).expect("parallel pipelined run");
            assert_eq!(
                par.rows(),
                pipe.rows(),
                "{label}: pipelined rows differ at threads={threads} morsel={morsel}"
            );
            assert_eq!(
                st, pipe_stats,
                "{label}: pipelined stats differ at threads={threads} morsel={morsel}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hash joins over random key/value relations: all five kinds, with
    /// and without residuals, from empty inputs to all-null keys.
    #[test]
    fn pipelined_hash_join_all_kinds(
        rows in 0usize..16,
        domain in 1i64..6,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
        with_residual in any::<bool>(),
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let residual = if with_residual {
            Pred::cmp_attr("L.v", CmpOp::Le, "R.v")
        } else {
            Pred::always()
        };
        for kind in ALL_KINDS {
            let plan = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::scan("L")),
                build: Box::new(PhysPlan::scan("R")),
                probe_keys: vec![Attr::parse("L.k")],
                build_keys: vec![Attr::parse("R.k")],
                residual: residual.clone(),
            };
            assert_modes_agree(&plan, &storage, &format!("hash {kind}"));
        }
    }

    /// A fused spine above the joins: filter below, projection at the
    /// root (the projection dedups, so duplicate-heavy domains stress
    /// the fused-sink dedup order).
    #[test]
    fn pipelined_filter_join_project_spine(
        rows in 0usize..16,
        domain in 1i64..4,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::Semi] {
            let join = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::Filter {
                    input: Box::new(PhysPlan::scan("L")),
                    pred: Pred::cmp_lit("L.v", CmpOp::Ge, 0),
                }),
                build: Box::new(PhysPlan::scan("R")),
                probe_keys: vec![Attr::parse("L.k")],
                build_keys: vec![Attr::parse("R.k")],
                residual: Pred::always(),
            };
            let plan = PhysPlan::Project {
                input: Box::new(join),
                attrs: vec![Attr::parse("L.v")],
            };
            assert_modes_agree(&plan, &storage, &format!("spine {kind}"));
        }
    }

    /// Nested-loop joins with a non-equi predicate, all five kinds.
    #[test]
    fn pipelined_nl_join_all_kinds(
        rows in 0usize..10,
        domain in 1i64..5,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let pred = Pred::cmp_attr("L.k", CmpOp::Ge, "R.k");
        for kind in ALL_KINDS {
            let plan = PhysPlan::NlJoin {
                kind,
                left: Box::new(PhysPlan::scan("L")),
                right: Box::new(PhysPlan::scan("R")),
                pred: pred.clone(),
            };
            assert_modes_agree(&plan, &storage, &format!("nl {kind}"));
        }
    }

    /// Index joins (full-outer is rejected identically by both modes).
    #[test]
    fn pipelined_index_join_matches_materializing(
        rows in 1usize..12,
        domain in 1i64..5,
        nulls in 0u32..60,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let mut storage = Storage::from_database(&db);
        storage.create_index("R", &[Attr::parse("R.k")]);
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::Semi, JoinKind::Anti] {
            let plan = PhysPlan::IndexJoin {
                kind,
                outer: Box::new(PhysPlan::scan("L")),
                inner: "R".into(),
                outer_keys: vec![Attr::parse("L.k")],
                inner_keys: vec![Attr::parse("R.k")],
                residual: Pred::always(),
            };
            assert_modes_agree(&plan, &storage, &format!("index {kind}"));
        }
    }

    /// Merge joins are pipeline breakers — the pipelined engine must
    /// delegate to the identical sort-merge operator, all five kinds.
    #[test]
    fn pipelined_merge_join_all_kinds(
        rows in 0usize..12,
        domain in 1i64..5,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        for kind in ALL_KINDS {
            let plan = PhysPlan::MergeJoin {
                kind,
                left: Box::new(PhysPlan::scan("L")),
                right: Box::new(PhysPlan::scan("R")),
                left_keys: vec![Attr::parse("L.k")],
                right_keys: vec![Attr::parse("R.k")],
                residual: Pred::always(),
            };
            assert_modes_agree(&plan, &storage, &format!("merge {kind}"));
        }
    }

    /// A filter over a *derived* attribute: `agg.count` exists only in
    /// the GroupCount output scheme, never in the storage interner, so
    /// this exercises the name-bound predicate path on a breaker-fed
    /// pipeline (GroupCount materializes, the filter fuses above it).
    #[test]
    fn pipelined_filter_over_derived_attr(
        rows in 0usize..16,
        domain in 1i64..4,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
        threshold in 1i64..4,
    ) {
        let spec = DbSpec::kv(&["L"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let plan = PhysPlan::Filter {
            input: Box::new(PhysPlan::GroupCount {
                input: Box::new(PhysPlan::scan("L")),
                group_attrs: vec![Attr::parse("L.k")],
                counted: None,
            }),
            pred: Pred::cmp_lit("agg.count", CmpOp::Ge, threshold),
        };
        assert_modes_agree(&plan, &storage, "filter over agg.count");
    }

    /// Deep left-outerjoin chains through the optimizer: the workload
    /// the pipelined engine exists for, lowered to a physical plan and
    /// run through both modes.
    #[test]
    fn pipelined_deep_left_chain(
        rows in 1usize..7,
        seed in 0u64..10_000,
    ) {
        let (storage, catalog, query) = fro_testkit::workloads::left_chain(8, rows, seed);
        let plan = fro_core::optimizer::lower(&query, &catalog).expect("lowerable");
        assert_modes_agree(&plan, &storage, "left_chain8");
    }
}
