//! Persistent plan cache, end to end: a snapshot saved from one
//! `Session` and loaded into a fresh process-equivalent `Session`
//! serves cache hits whose executed results are bit-identical to cold
//! planning — and a mismatched snapshot (stale epoch, foreign catalog,
//! corrupted bytes) can degrade the cache to cold but can never
//! surface a wrong plan.

use fro::prelude::*;
use fro_algebra::Attr;
use fro_testkit::corpus_suite;
use std::path::PathBuf;

/// A unique scratch path per test; the OS temp dir survives read-only
/// source checkouts.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fro_snapshot_{}_{name}.bin", std::process::id()))
}

/// Saved-then-loaded caches serve full-set hits with bit-identical
/// executed results, for every corpus workload.
#[test]
fn loaded_snapshot_serves_bit_identical_hits() {
    // corpus_suite() is deterministic: calling it twice yields two
    // independent but identical storages — our two "processes".
    for (cold_case, warm_case) in corpus_suite().into_iter().zip(corpus_suite()) {
        let path = scratch(cold_case.name);

        let cold_session = Session::from_storage(cold_case.storage);
        let cold = cold_session.prepare(&cold_case.query).expect("optimizes");
        let cold_out = cold.run().expect("executes");
        let saved = cold_session.save_plan_cache(&path).expect("saves");
        assert!(saved >= 1, "{}: nothing saved", cold_case.name);

        let warm_session = Session::from_storage(warm_case.storage);
        let loaded = warm_session.load_plan_cache(&path).expect("loads");
        assert!(
            matches!(loaded, CacheLoad::Loaded(n) if n == saved),
            "{}: expected Loaded({saved}), got {loaded:?}",
            cold_case.name
        );

        let warm = warm_session.prepare(&warm_case.query).expect("optimizes");
        assert_eq!(
            warm.optimized().pairs_examined,
            0,
            "{}: loaded cache must serve the full-set plan without enumeration",
            cold_case.name
        );
        assert_eq!(
            warm.plan().explain(),
            cold.plan().explain(),
            "{}: loaded plan differs from the saved one",
            cold_case.name
        );
        let warm_out = warm.run().expect("executes");
        assert_eq!(warm_out, cold_out, "{}: results differ", cold_case.name);

        let _ = std::fs::remove_file(&path);
    }
}

/// A statistics change after the save bumps the catalog epoch, so the
/// snapshot loads as `StaleEpoch`: cold cache, correct plan, no stale
/// cost estimates served.
#[test]
fn stale_epoch_snapshot_degrades_to_cold() {
    let suite = corpus_suite();
    let case = suite
        .into_iter()
        .find(|c| c.name == "example1_good")
        .unwrap();
    let path = scratch("stale");

    let session = Session::from_storage(case.storage);
    let cold = session.prepare(&case.query).expect("optimizes");
    let want = cold.run().expect("executes");
    session.save_plan_cache(&path).expect("saves");

    let later = {
        let again = corpus_suite()
            .into_iter()
            .find(|c| c.name == "example1_good")
            .unwrap();
        Session::from_storage(again.storage)
    };
    later.set_distinct(&Attr::parse("R1.k1"), 7);
    let loaded = later.load_plan_cache(&path).expect("load is not an error");
    assert!(
        matches!(loaded, CacheLoad::StaleEpoch),
        "expected StaleEpoch, got {loaded:?}"
    );

    // Cold cache: the prepare enumerates, and still answers correctly.
    let replanned = later.prepare(&case.query).expect("optimizes");
    assert!(
        replanned.optimized().pairs_examined > 0,
        "cache must be cold"
    );
    assert!(replanned.run().expect("executes").set_eq(&want));

    let _ = std::fs::remove_file(&path);
}

/// A snapshot saved under a different catalog (different relations)
/// loads as `Foreign` without consulting a single entry: interned ids
/// from another catalog must never be resolved against this one.
#[test]
fn foreign_snapshot_is_rejected_whole() {
    let suite = corpus_suite();
    let chain = suite.iter().find(|c| c.name == "chain3").unwrap();
    let path = scratch("foreign");

    let donor = Session::from_storage(chain.storage.clone());
    donor.prepare(&chain.query).expect("optimizes");
    donor.save_plan_cache(&path).expect("saves");

    let other = corpus_suite()
        .into_iter()
        .find(|c| c.name == "example1_good")
        .unwrap();
    let recipient = Session::from_storage(other.storage);
    let loaded = recipient
        .load_plan_cache(&path)
        .expect("load is not an error");
    assert!(
        matches!(loaded, CacheLoad::Foreign),
        "expected Foreign, got {loaded:?}"
    );
    let cold = recipient.prepare(&other.query).expect("optimizes");
    assert!(cold.optimized().pairs_examined > 0, "cache must stay cold");

    let _ = std::fs::remove_file(&path);
}

/// Corruption of a *matching* snapshot is a hard error (truncation,
/// bad magic) — never a partial load.
#[test]
fn corrupted_snapshot_is_an_error() {
    let suite = corpus_suite();
    let case = suite
        .into_iter()
        .find(|c| c.name == "example1_good")
        .unwrap();
    let path = scratch("corrupt");

    let session = Session::from_storage(case.storage);
    session.prepare(&case.query).expect("optimizes");
    session.save_plan_cache(&path).expect("saves");

    let fresh = || {
        let c = corpus_suite()
            .into_iter()
            .find(|c| c.name == "example1_good")
            .unwrap();
        Session::from_storage(c.storage)
    };

    // Truncated mid-entry: typed wire error.
    let bytes = std::fs::read(&path).expect("snapshot exists");
    std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
    assert!(
        fresh().load_plan_cache(&path).is_err(),
        "truncation must error"
    );

    // Wrong magic: rejected before anything is parsed.
    let mut mangled = bytes.clone();
    mangled[0] ^= 0xff;
    std::fs::write(&path, &mangled).unwrap();
    assert!(
        fresh().load_plan_cache(&path).is_err(),
        "bad magic must error"
    );

    // Missing file: surfaced as an I/O error, not a silent cold cache.
    let _ = std::fs::remove_file(&path);
    assert!(
        fresh().load_plan_cache(&path).is_err(),
        "missing file must error"
    );
}
