//! Property tests for the §5 language: *every* well-formed query block
//! the grammar can produce over the paper's entity world translates to
//! a freely-reorderable graph whose implementing trees all agree —
//! §5.3 with the quantifier made real.

use fro_lang::model::paper_world;
use fro_lang::{parse, translate, LangError};
use fro_testkit::workloads::synthetic_entity_world;
use proptest::prelude::*;

/// Generate a random query block source string over the paper world's
/// schema. Path steps are chosen from the fields valid at each point,
/// so most (not all) generated blocks are well-formed.
fn block_source(
    emp_steps: &[usize],
    dept_steps: &[usize],
    join_on_dno: bool,
    rank_filter: Option<i64>,
    location: Option<bool>,
) -> String {
    let emp_ops = ["*ChildName"];
    let dept_ops = ["-->Manager", "-->Secretary", "-->Audit"];
    let mut from = String::from("EMPLOYEE");
    for &s in emp_steps {
        from.push_str(emp_ops[s % emp_ops.len()]);
    }
    from.push_str(", DEPARTMENT");
    for &s in dept_steps {
        from.push_str(dept_ops[s % dept_ops.len()]);
    }
    let mut conds: Vec<String> = Vec::new();
    if join_on_dno {
        conds.push("EMPLOYEE.D# = DEPARTMENT.D#".to_owned());
    }
    if let Some(r) = rank_filter {
        conds.push(format!("EMPLOYEE.Rank > {r}"));
    }
    if let Some(q) = location {
        conds.push(format!(
            "DEPARTMENT.Location = '{}'",
            if q { "Queretaro" } else { "Zurich" }
        ));
    }
    let mut src = format!("Select All From {from}");
    if !conds.is_empty() {
        src.push_str(" Where ");
        src.push_str(&conds.join(" and "));
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_wellformed_block_is_freely_reorderable(
        emp_steps in proptest::collection::vec(0usize..4, 0..2),
        dept_steps in proptest::collection::vec(0usize..4, 0..3),
        rank in proptest::option::of(0i64..20),
        loc in proptest::option::of(any::<bool>()),
        world_seed in 0u64..50,
    ) {
        let src = block_source(&emp_steps, &dept_steps, true, rank, loc);
        let world = if world_seed % 2 == 0 {
            paper_world()
        } else {
            synthetic_entity_world(4, 3, world_seed)
        };
        let block = parse(&src).expect("generated source parses");
        match translate(&block, &world) {
            Ok(t) => {
                // §5.3: always freely reorderable.
                prop_assert!(t.analysis.is_freely_reorderable(), "{src}");
                // All implementing trees agree (restrictions applied on
                // top of each).
                let trees = fro_trees::enumerate_trees(
                    &t.graph,
                    fro_trees::EnumLimit { max_trees: 5_000 },
                )
                .expect("connected");
                let results: Vec<_> = trees
                    .iter()
                    .map(|q| {
                        let q = t
                            .restrictions
                            .iter()
                            .fold(q.clone(), |acc, r| acc.restrict(r.clone()));
                        q.eval(&t.database).expect("eval")
                    })
                    .collect();
                prop_assert!(fro_testkit::all_set_eq(&results), "{src}");
            }
            // Repeated steps may collide on aliases (e.g. *ChildName
            // twice) or pick an entity-less path — fine, but it must be
            // a *clean* error, never a panic or a wrong result.
            Err(
                LangError::DuplicateAlias(_)
                | LangError::UnknownField { .. }
                | LangError::AmbiguousField(_)
                | LangError::WrongFieldKind { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error {other} for {src}"),
        }
    }

    /// Evaluating the planned block equals evaluating *any*
    /// implementing tree with the restrictions applied — the reference
    /// path never depends on tree choice.
    #[test]
    fn run_is_tree_choice_independent(
        dept_steps in proptest::collection::vec(0usize..3, 1..3),
        world_seed in 0u64..20,
    ) {
        let src = block_source(&[], &dept_steps, true, None, None);
        let world = synthetic_entity_world(3, 2, world_seed);
        let block = parse(&src).expect("parses");
        let Ok(t) = translate(&block, &world) else { return; };
        let via_run = fro_lang::plan_query(&t)
            .expect("plans")
            .eval(&t.database)
            .expect("runs");
        let trees =
            fro_trees::enumerate_trees(&t.graph, fro_trees::EnumLimit::default()).unwrap();
        for tree in trees.iter().take(5) {
            let q = t
                .restrictions
                .iter()
                .fold(tree.clone(), |acc, r| acc.restrict(r.clone()));
            prop_assert!(q.eval(&t.database).unwrap().set_eq(&via_run), "{src}");
        }
    }
}
