//! §4 simplification and §5 language, cross-crate:
//!
//! * the simplification rule preserves query results on random
//!   databases and only ever *removes* outerjoins;
//! * the §4 conjecture probe: simplification of a freely-reorderable
//!   query under top-level restrictions stays freely reorderable;
//! * every parsed §5 block is freely reorderable and all its
//!   implementing trees agree (Theorem 1 through the language).

use fro_algebra::{CmpOp, Pred, Query};
use fro_core::simplify::simplify;
use fro_lang::model::paper_world;
use fro_lang::{parse, translate};
use fro_testkit::{db_for_graph, random_implementing_tree, random_nice_graph, GraphSpec};
use proptest::prelude::*;

fn count_outerjoins(q: &Query) -> usize {
    let here = usize::from(matches!(q, Query::OuterJoin { .. }));
    here + q
        .children()
        .iter()
        .map(|c| count_outerjoins(c))
        .sum::<usize>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Simplification preserves semantics and never adds outerjoins.
    #[test]
    fn simplification_preserves_results(
        core in 1usize..4,
        oj in 1usize..4,
        gseed in 0u64..10_000,
        tseed in 0u64..10_000,
        dseed in 0u64..10_000,
        which in 0usize..8,
    ) {
        let spec = GraphSpec { core, oj_nodes: oj, extra_core_edges: 0, strong: true };
        let g = random_nice_graph(&spec, gseed);
        let tree = random_implementing_tree(&g, tseed).expect("connected");
        // Restrict on a random relation's key: strong predicate.
        let rels: Vec<String> = tree.rels().into_iter().collect();
        let target = &rels[which % rels.len()];
        let q = tree.restrict(Pred::cmp_lit(&format!("{target}.k"), CmpOp::Ge, 0));

        let (s, events) = simplify(&q);
        let db = db_for_graph(&g, 5, 3, 0.25, dseed);
        prop_assert!(
            q.eval(&db).unwrap().set_eq(&s.eval(&db).unwrap()),
            "simplification changed the result\nfrom {}\nto   {}\nevents {:?}",
            q.shape(),
            s.shape(),
            events
        );
        prop_assert!(count_outerjoins(&s) <= count_outerjoins(&q));
        prop_assert_eq!(count_outerjoins(&q) - count_outerjoins(&s), events.len());
    }

    /// §4 conjecture probe: post-outerjoin restrictions + simplification
    /// keep the OJ/J part freely reorderable.
    #[test]
    fn simplified_queries_stay_reorderable(
        core in 1usize..4,
        oj in 1usize..4,
        gseed in 0u64..10_000,
        tseed in 0u64..10_000,
        which in 0usize..8,
    ) {
        let spec = GraphSpec { core, oj_nodes: oj, extra_core_edges: 0, strong: true };
        let g = random_nice_graph(&spec, gseed);
        let tree = random_implementing_tree(&g, tseed).expect("connected");
        prop_assert!(fro_core::is_freely_reorderable(&tree));
        let rels: Vec<String> = tree.rels().into_iter().collect();
        let target = &rels[which % rels.len()];
        let q = tree.restrict(Pred::cmp_lit(&format!("{target}.k"), CmpOp::Ge, 0));
        let (s, _) = simplify(&q);
        let inner = match s {
            Query::Restrict { input, .. } => *input,
            other => other,
        };
        prop_assert!(
            fro_core::is_freely_reorderable(&inner),
            "simplification broke reorderability: {}",
            inner.shape()
        );
    }
}

#[test]
fn every_paper_query_block_is_freely_reorderable_with_agreeing_trees() {
    let world = paper_world();
    let sources = [
        "Select All From EMPLOYEE*ChildName, DEPARTMENT \
         Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'",
        "Select All From DEPARTMENT-->Manager-->Audit Where DEPARTMENT.Location = 'Zurich'",
        "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit \
         Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' \
         and EMPLOYEE.Rank > 10",
        "Select All From DEPARTMENT-->Manager, EMPLOYEE \
         Where EMPLOYEE.D# = DEPARTMENT.D#",
        "Select All From EMPLOYEE*ChildName",
    ];
    for src in sources {
        let t = translate(&parse(src).unwrap(), &world).unwrap();
        assert!(t.analysis.is_freely_reorderable(), "{src}");
        let trees = fro_trees::enumerate_trees(&t.graph, fro_trees::EnumLimit::default()).unwrap();
        let results: Vec<_> = trees.iter().map(|q| q.eval(&t.database).unwrap()).collect();
        assert!(
            fro_testkit::all_set_eq(&results),
            "trees disagree for block: {src}"
        );
    }
}

#[test]
fn language_blocks_optimize_and_execute() {
    use fro_core::{optimize, Catalog, Policy};
    use fro_exec::{execute, ExecStats, Storage};

    let world = paper_world();
    let src = "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager \
               Where EMPLOYEE.D# = DEPARTMENT.D#";
    let t = translate(&parse(src).unwrap(), &world).unwrap();
    let storage = Storage::from_database(&t.database);
    let catalog = Catalog::from_storage(&storage);
    let q = fro_trees::some_implementing_tree(&t.graph).unwrap();
    let optimized = optimize(&q, &catalog, Policy::Paper).unwrap();
    assert!(
        optimized.reordered,
        "language blocks are always reorderable"
    );
    let mut stats = ExecStats::new();
    let got = execute(&optimized.plan, &storage, &mut stats).unwrap();
    let want = q.eval(&t.database).unwrap();
    assert!(got.set_eq(&want));
}

#[test]
fn ri_rewrite_example_from_section_4() {
    use fro_core::simplify::apply_ri_constraint;
    use fro_core::Policy;
    let p = |a: &str, b: &str| Pred::eq_attr(a, b);
    let q = Query::rel("R1").outerjoin(
        Query::rel("R2").outerjoin(Query::rel("R3"), p("R2.k", "R3.k")),
        p("R1.k", "R2.k"),
    );
    assert!(fro_core::is_freely_reorderable(&q));
    let (rw, analysis) = apply_ri_constraint(&q, "R2", "R3", Policy::Paper);
    assert!(!analysis.is_freely_reorderable());
    // And the rewrite is semantically justified exactly when the RI
    // constraint holds — verify on conforming data (every R2 matches).
    let mut db = fro_algebra::Database::new();
    db.insert(fro_algebra::Relation::from_ints("R1", &["k"], &[&[1]]));
    db.insert(fro_algebra::Relation::from_ints(
        "R2",
        &["k"],
        &[&[1], &[2]],
    ));
    db.insert(fro_algebra::Relation::from_ints(
        "R3",
        &["k"],
        &[&[1], &[2]],
    ));
    assert!(q.eval(&db).unwrap().set_eq(&rw.eval(&db).unwrap()));
    // On non-conforming data the rewrite (correctly) differs.
    let mut db2 = fro_algebra::Database::new();
    db2.insert(fro_algebra::Relation::from_ints("R1", &["k"], &[&[1]]));
    db2.insert(fro_algebra::Relation::from_ints("R2", &["k"], &[&[1]]));
    db2.insert(fro_algebra::Relation::from_ints("R3", &["k"], &[&[9]]));
    assert!(!q.eval(&db2).unwrap().set_eq(&rw.eval(&db2).unwrap()));
}
