//! Property suite for standing queries with incremental delta
//! maintenance:
//!
//! * random append/delete interleavings over every join kind (inner,
//!   left outer, full outer, semi, anti) keep the maintained view
//!   bit-identical — rows, order AND schema — to a cold re-execution
//!   of the same query, under both execution modes;
//! * outerjoin bookkeeping retracts the null-padded row the instant
//!   the last matching partner dies, and re-emits it when a match
//!   returns;
//! * empty and all-null inputs are safe: null keys never join, so an
//!   all-null append flows through the delta pipeline without
//!   fabricating matches;
//! * alpha-equivalent registrations (different associations of one
//!   query graph) share a single materialized view;
//! * maintenance counters attribute exactly: with all mutations driven
//!   through session handles, the per-handle sums equal the shared
//!   totals, and the work per append is O(delta), not O(base).

use fro::prelude::*;
use fro_algebra::{Pred, Query, Relation, Tuple, Value};
use std::collections::BTreeSet;
use std::sync::{Arc, Barrier};
use std::thread;

/// Deterministic xorshift-multiply generator so the interleavings are
/// reproducible without any external crate.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Sort a result into the canonical order standing views serve:
/// distinct rows in ascending tuple order under the same schema.
fn canonical(rel: &Relation) -> Relation {
    let rows: BTreeSet<Tuple> = rel.rows().iter().cloned().collect();
    Relation::from_distinct_rows(rel.schema().clone(), rows.into_iter().collect())
}

fn int_row(vals: &[i64]) -> Tuple {
    Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect())
}

fn null_key_row(payload: i64) -> Tuple {
    Tuple::new(vec![Value::Null, Value::Int(payload)])
}

/// Two-column tables (join key, payload) so null padding is visible.
/// Returns a shadow copy of each table's rows — the test's own model
/// of storage, kept in sync through every append/delete.
fn seed_tables(session: &Session, rng: &mut Lcg, rows_each: usize) -> [Vec<Tuple>; 2] {
    let mut shadows: [Vec<Tuple>; 2] = [Vec::new(), Vec::new()];
    for (slot, name) in ["L", "R"].into_iter().enumerate() {
        let rows: Vec<Vec<i64>> = (0..rows_each)
            .map(|i| vec![rng.below(8) as i64, (i as i64) << 1])
            .collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        let key = format!("k{name}");
        let pay = format!("p{name}");
        session.insert_table(name, Relation::from_ints(name, &[&key, &pay], &refs));
        shadows[slot] = rows.iter().map(|r| int_row(r)).collect();
    }
    shadows
}

fn joined(kind: usize) -> Query {
    let p = Pred::eq_attr("L.kL", "R.kR");
    let (l, r) = (Query::rel("L"), Query::rel("R"));
    match kind {
        0 => l.join(r, p),
        1 => l.outerjoin(r, p),
        2 => l.full_outerjoin(r, p),
        3 => l.semijoin(r, p),
        _ => l.antijoin(r, p),
    }
}

const KINDS: [&str; 5] = ["inner", "leftouter", "fullouter", "semi", "anti"];

#[test]
fn random_interleavings_stay_bit_identical_to_reexecution() {
    for (kind, kind_name) in KINDS.iter().enumerate() {
        for (mode, cfg) in [
            ("materializing", ExecConfig::default().materializing()),
            ("pipelined", ExecConfig::default().pipelined()),
        ] {
            let db = SharedDb::new();
            let session = db.session().with_exec_config(cfg);
            let mut rng = Lcg::new(0xF0 + kind as u64);
            let mut shadows = seed_tables(&session, &mut rng, 12);

            let q = joined(kind);
            let reg = session.register_standing(&q).unwrap();
            assert!(!reg.shared, "{kind_name}/{mode}: first registration");

            let mut next_pay = 1_000;
            for step in 0..40 {
                let slot = (rng.below(2)) as usize;
                let table = ["L", "R"][slot];
                if rng.below(3) < 2 {
                    // Append a small batch, sometimes duplicating an
                    // existing row (a no-op under set semantics).
                    let mut batch = Vec::new();
                    for _ in 0..=rng.below(3) {
                        batch.push(int_row(&[rng.below(10) as i64, next_pay]));
                        next_pay += 1;
                    }
                    if rng.below(4) == 0 {
                        if let Some(t) = shadows[slot].first() {
                            batch.push(t.clone());
                        }
                    }
                    for t in &batch {
                        if !shadows[slot].contains(t) {
                            shadows[slot].push(t.clone());
                        }
                    }
                    assert!(session.append_rows(table, batch));
                } else if !shadows[slot].is_empty() {
                    // Delete a random existing row (maybe the last
                    // match of some partner — exercises retraction).
                    let at = rng.below(shadows[slot].len() as u64) as usize;
                    let victim = shadows[slot].remove(at);
                    assert!(session.delete_rows(table, &[victim]));
                }

                let (view, _) = session.poll_standing(reg.id).unwrap();
                let cold = session.prepare(&q).unwrap().run().unwrap();
                assert_eq!(
                    view,
                    canonical(&cold),
                    "{kind_name}/{mode}: view diverged at step {step}"
                );
            }
        }
    }
}

#[test]
fn outerjoin_null_rows_retract_when_the_last_match_dies() {
    for kind in [1, 2] {
        // left outer, full outer
        let db = SharedDb::new();
        let session = db.session();
        session.insert_table(
            "L",
            Relation::from_ints("L", &["kL", "pL"], &[&[1, 10], &[2, 20]]),
        );
        session.insert_table("R", Relation::from_ints("R", &["kR", "pR"], &[&[1, 91]]));
        let q = joined(kind);
        let reg = session.register_standing(&q).unwrap();

        let padded = |view: &Relation| {
            view.rows()
                .iter()
                .filter(|t| t.values()[2..].iter().all(|v| *v == Value::Null))
                .count()
        };

        let (view, _) = session.poll_standing(reg.id).unwrap();
        // L.k=2 has no partner: exactly one null-padded row.
        assert_eq!(padded(&view), 1, "kind {kind}: baseline padding");

        // Kill L.k=1's only partner: its padded row must APPEAR…
        assert!(session.delete_rows("R", &[int_row(&[1, 91])]));
        let (view, _) = session.poll_standing(reg.id).unwrap();
        assert_eq!(
            padded(&view),
            2,
            "kind {kind}: padding after last match died"
        );

        // …and a returning match must retract it again.
        assert!(session.append_rows("R", vec![int_row(&[1, 91])]));
        let (view, _) = session.poll_standing(reg.id).unwrap();
        assert_eq!(
            padded(&view),
            1,
            "kind {kind}: padding after match returned"
        );

        // Each poll was served incrementally, never by re-running the
        // plan: only the registration itself counted as a refresh.
        assert_eq!(
            session.maintenance_stats().views_refreshed,
            1,
            "kind {kind}"
        );
    }
}

#[test]
fn empty_and_all_null_inputs_never_fabricate_matches() {
    for (kind, kind_name) in KINDS.iter().enumerate() {
        let db = SharedDb::new();
        let session = db.session();
        // Empty left, all-null-key right.
        session.insert_table("L", Relation::from_ints("L", &["kL", "pL"], &[]));
        session.insert_table(
            "R",
            Relation::from_values("R", &["kR", "pR"], vec![null_key_row(7).values().to_vec()]),
        );
        let q = joined(kind);
        let reg = session.register_standing(&q).unwrap();

        // Null keys never join; appends of null-key rows on either
        // side flow through the delta path without inventing matches.
        assert!(session.append_rows("L", vec![null_key_row(1), null_key_row(2)]));
        assert!(session.append_rows("R", vec![null_key_row(8)]));
        let (view, _) = session.poll_standing(reg.id).unwrap();
        let cold = session.prepare(&q).unwrap().run().unwrap();
        assert_eq!(view, canonical(&cold), "kind {kind_name}");

        // Deleting back to empty also matches re-execution.
        assert!(session.delete_rows("L", &[null_key_row(1), null_key_row(2)]));
        let (view, _) = session.poll_standing(reg.id).unwrap();
        let cold = session.prepare(&q).unwrap().run().unwrap();
        assert_eq!(view, canonical(&cold), "kind {kind_name} after delete");
    }
}

#[test]
fn alpha_equivalent_registrations_share_one_view_across_sessions() {
    let db = SharedDb::new();
    let a = db.session();
    a.insert_table("R1", Relation::from_ints("R1", &["k1"], &[&[0], &[1]]));
    a.insert_table("R2", Relation::from_ints("R2", &["k2"], &[&[0], &[2]]));
    a.insert_table("R3", Relation::from_ints("R3", &["k3"], &[&[0], &[3]]));
    let p12 = Pred::eq_attr("R1.k1", "R2.k2");
    let p23 = Pred::eq_attr("R2.k2", "R3.k3");
    let left_assoc = Query::rel("R1")
        .join(Query::rel("R2"), p12.clone())
        .join(Query::rel("R3"), p23.clone());
    let right_assoc = Query::rel("R1").join(Query::rel("R2").join(Query::rel("R3"), p23), p12);

    let first = a.register_standing(&left_assoc).unwrap();
    let b = db.session();
    let second = b.register_standing(&right_assoc).unwrap();

    // Theorem 1: one query graph, one signature, ONE materialization.
    assert_eq!(first.id, second.id);
    assert!(!first.shared);
    assert!(second.shared);
    let info = db.standing_info(first.id).unwrap();
    assert_eq!(info.subscribers, 2);
    assert_eq!(db.standing_counters().registered, 1);
    assert_eq!(db.standing_counters().shared_hits, 1);

    // Both subscribers observe maintenance driven from either handle.
    assert!(b.append_rows("R3", vec![int_row(&[2])]));
    let (va, _) = a.poll_standing(first.id).unwrap();
    let (vb, _) = b.poll_standing(second.id).unwrap();
    assert_eq!(va, vb);
    let cold = a.prepare(&left_assoc).unwrap().run().unwrap();
    assert_eq!(va, canonical(&cold));
}

#[test]
fn concurrent_appends_from_many_handles_converge_and_counters_sum() {
    for threads in [1usize, 2, 8] {
        let db = SharedDb::new();
        let setup = db.session();
        let mut rng = Lcg::new(threads as u64);
        seed_tables(&setup, &mut rng, 8);
        let q = joined(1); // left outer: padding makes divergence loud
        let reg = setup.register_standing(&q).unwrap();

        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = Arc::clone(&db);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    let session = db.session();
                    let mut rng = Lcg::new((t as u64) << 7 | 3);
                    barrier.wait();
                    for i in 0..12 {
                        let table = if rng.below(2) == 0 { "L" } else { "R" };
                        // Unique payload per (thread, step): every row
                        // is novel, so each lands in exactly one delta.
                        let pay = 10_000 + (t * 1_000 + i) as i64;
                        assert!(
                            session.append_rows(table, vec![int_row(&[rng.below(9) as i64, pay])])
                        );
                        if i % 4 == 3 {
                            let (view, _) = session.poll_standing(reg.id).unwrap();
                            assert!(view.schema().attrs().len() == 4);
                        }
                    }
                    session.local_maintenance_stats()
                })
            })
            .collect();
        let locals: Vec<ExecStats> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Quiesced: the view equals a cold re-execution of the final
        // state, whatever the interleaving was.
        let (view, _) = setup.poll_standing(reg.id).unwrap();
        let cold = setup.prepare(&q).unwrap().run().unwrap();
        assert_eq!(view, canonical(&cold), "{threads} threads");

        // Per-handle maintenance counters sum to the shared totals.
        let mut sum = setup.local_maintenance_stats();
        for l in &locals {
            sum.merge(l);
        }
        let total = setup.maintenance_stats();
        assert_eq!(sum.delta_rows_in, total.delta_rows_in, "{threads} threads");
        assert_eq!(
            sum.delta_rows_out, total.delta_rows_out,
            "{threads} threads"
        );
        assert_eq!(
            sum.views_refreshed, total.views_refreshed,
            "{threads} threads"
        );
    }
}

#[test]
fn maintenance_work_is_proportional_to_the_delta_not_the_base() {
    let db = SharedDb::new();
    let session = db.session();
    const BASE: i64 = 4_000;
    let l_rows: Vec<Vec<i64>> = (0..BASE).map(|i| vec![i % 97, i]).collect();
    let r_rows: Vec<Vec<i64>> = (0..BASE).map(|i| vec![i % 97, i + BASE]).collect();
    let l_refs: Vec<&[i64]> = l_rows.iter().map(Vec::as_slice).collect();
    let r_refs: Vec<&[i64]> = r_rows.iter().map(Vec::as_slice).collect();
    session.insert_table("L", Relation::from_ints("L", &["kL", "pL"], &l_refs));
    session.insert_table("R", Relation::from_ints("R", &["kR", "pR"], &r_refs));

    let q = joined(0);
    let reg = session.register_standing(&q).unwrap();
    let before = session.maintenance_stats();

    // One appended row: the delta the pipeline ingests must be O(1)
    // per node — nowhere near the 4000-row base.
    assert!(session.append_rows("L", vec![int_row(&[5, 900_000])]));
    let (_, _) = session.poll_standing(reg.id).unwrap();
    let after = session.maintenance_stats();
    let ingested = after.delta_rows_in - before.delta_rows_in;
    assert!(ingested >= 1, "the delta actually flowed");
    assert!(
        ingested < BASE as u64 / 10,
        "delta_rows_in {ingested} looks O(base), not O(delta)"
    );
    assert_eq!(
        after.views_refreshed, before.views_refreshed,
        "the append was absorbed incrementally, not by re-running"
    );
}
