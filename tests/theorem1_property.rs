//! Property tests for Theorem 1: on nice graphs with strong outerjoin
//! predicates, *every* implementing tree evaluates to the same result,
//! on every database. Plus anti-vacuity: dropping either hypothesis is
//! observably unsound.

use fro_testkit::{db_for_graph, random_connected_graph, random_nice_graph, GraphSpec};
use fro_trees::{enumerate_trees, EnumLimit};
use proptest::prelude::*;

fn spec_from(core: usize, oj: usize, chords: usize, strong: bool) -> GraphSpec {
    GraphSpec {
        core: 1 + core % 4,
        oj_nodes: oj % 4,
        extra_core_edges: chords % 2,
        strong,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The theorem itself, end to end.
    #[test]
    fn all_implementing_trees_agree_on_nice_strong_graphs(
        core in 0usize..4,
        oj in 0usize..4,
        chords in 0usize..2,
        gseed in 0u64..1_000,
        dseed in 0u64..1_000,
        rows in 1usize..7,
        domain in 1i64..5,
        nulls in 0u32..40,
    ) {
        let spec = spec_from(core, oj, chords, true);
        let g = random_nice_graph(&spec, gseed);
        let db = db_for_graph(&g, rows, domain, f64::from(nulls) / 100.0, dseed);
        let trees = enumerate_trees(&g, EnumLimit { max_trees: 3000 })
            .expect("connected nice graph");
        let results: Vec<_> = trees
            .iter()
            .map(|t| t.eval(&db).expect("eval"))
            .collect();
        for (i, r) in results.iter().enumerate().skip(1) {
            prop_assert!(
                r.set_eq(&results[0]),
                "trees disagree on nice+strong graph\n{}\ntree0 {}\ntree{} {}",
                g,
                trees[0].shape(),
                i,
                trees[i].shape()
            );
        }
    }

    /// The optimizer's reorderability verdict agrees with brute force
    /// *in the sound direction* on arbitrary graphs: whenever the
    /// checker says "freely reorderable", all trees agree.
    #[test]
    fn checker_is_sound_on_arbitrary_graphs(
        n in 2usize..6,
        ojp in 0u32..100,
        gseed in 0u64..1_000,
        dseed in 0u64..1_000,
    ) {
        let g = random_connected_graph(n, f64::from(ojp) / 100.0, gseed);
        let verdict = fro_core::reorder::analyze_graph(&g, fro_core::Policy::Paper)
            .is_freely_reorderable();
        if verdict {
            let db = db_for_graph(&g, 5, 3, 0.15, dseed);
            let trees = enumerate_trees(&g, EnumLimit { max_trees: 3000 }).unwrap();
            let results: Vec<_> = trees.iter().map(|t| t.eval(&db).unwrap()).collect();
            prop_assert!(fro_testkit::all_set_eq(&results), "checker accepted\n{g}");
        }
    }
}

/// Anti-vacuity for strongness: weak outerjoin predicates on an
/// outerjoin *chain* must produce an observable disagreement for some
/// seed (Example 3 generalized).
#[test]
fn weak_predicates_break_reorderability_somewhere() {
    let mut found = false;
    'outer: for gseed in 0..60u64 {
        let spec = GraphSpec {
            core: 1,
            oj_nodes: 3,
            extra_core_edges: 0,
            strong: false,
        };
        let g = random_nice_graph(&spec, gseed);
        // Need an actual chain for identity 12 to matter.
        let has_chain = (0..g.n_nodes()).any(|i| {
            g.oj_in_degree(i) > 0
                && g.edges()
                    .iter()
                    .any(|e| e.kind() == fro_graph::EdgeKind::OuterJoin && e.a() == i)
        });
        if !has_chain {
            continue;
        }
        for dseed in 0..40u64 {
            let db = db_for_graph(&g, 4, 3, 0.35, dseed);
            let trees = enumerate_trees(&g, EnumLimit::default()).unwrap();
            let results: Vec<_> = trees.iter().map(|t| t.eval(&db).unwrap()).collect();
            if !fro_testkit::all_set_eq(&results) {
                found = true;
                break 'outer;
            }
        }
    }
    assert!(
        found,
        "weak predicates never produced a counterexample — the strongness hypothesis looks vacuous"
    );
}

/// Anti-vacuity for niceness: the Example 2 pattern must produce an
/// observable disagreement for some database.
#[test]
fn example2_pattern_breaks_reorderability_somewhere() {
    use fro_algebra::Pred;
    let mut g = fro_graph::QueryGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
    g.add_outerjoin_edge(0, 1, Pred::eq_attr("R0.k", "R1.k"))
        .unwrap();
    g.add_join_edge(1, 2, Pred::eq_attr("R1.k", "R2.k"))
        .unwrap();
    let trees = enumerate_trees(&g, EnumLimit::default()).unwrap();
    assert_eq!(trees.len(), 2);
    let mut found = false;
    for dseed in 0..40u64 {
        let db = db_for_graph(&g, 3, 3, 0.1, dseed);
        let results: Vec<_> = trees.iter().map(|t| t.eval(&db).unwrap()).collect();
        if !fro_testkit::all_set_eq(&results) {
            found = true;
            break;
        }
    }
    assert!(found, "Example 2's graph never disagreed");
}

/// All three strongness policies are sound (they differ only in how
/// many queries they admit, never in admitting a bad one).
#[test]
fn all_policies_sound_on_random_graphs() {
    use fro_core::Policy;
    for gseed in 0..30u64 {
        let g = random_connected_graph(5, 0.5, gseed);
        for policy in [Policy::Paper, Policy::Strict, Policy::MinimalChain] {
            if !fro_core::reorder::analyze_graph(&g, policy).is_freely_reorderable() {
                continue;
            }
            for dseed in 0..10u64 {
                let db = db_for_graph(&g, 4, 3, 0.2, dseed);
                let trees = enumerate_trees(&g, EnumLimit::default()).unwrap();
                let results: Vec<_> = trees.iter().map(|t| t.eval(&db).unwrap()).collect();
                assert!(
                    fro_testkit::all_set_eq(&results),
                    "policy {policy:?} admitted a non-reorderable graph:\n{g}"
                );
            }
        }
    }
}
