//! Properties of the columnar storage mirror and vectorized kernels.
//!
//! The columnar path (`ExecConfig::columnar(true)`, the default) must
//! be **bit-identical** to the row-at-a-time reference path
//! (`columnar(false)`): same rows, same row order, same schema, and
//! the same full [`ExecStats`] — every logical counter, including the
//! bookkeeping split (`rows_materialized` / `rows_pipelined` /
//! `pipelines`), because the vectorized kernels replicate the per-row
//! counter discipline from bitmap popcounts. Only the diagnostic
//! `morsels_skipped` (excluded from `ExecStats` equality) may differ.
//!
//! The sweep crosses all five join kinds × both executors × threads
//! {1, 2, 8} × morsel sizes, over random inputs that include empty
//! relations, all-null key columns, single-hot-key columns, and
//! dictionary-encoded string columns with SQL-null three-valued-logic
//! predicates.

use fro_algebra::{Attr, CmpOp, Pred, Relation, Value};
use fro_exec::{execute_with, ExecConfig, ExecStats, JoinKind, PhysPlan, Storage};
use fro_testkit::dbgen::{random_database, DbSpec};
use proptest::prelude::*;

const ALL_KINDS: [JoinKind; 5] = [
    JoinKind::Inner,
    JoinKind::LeftOuter,
    JoinKind::FullOuter,
    JoinKind::Semi,
    JoinKind::Anti,
];

const THREADS: [usize; 3] = [1, 2, 8];
const MORSELS: [usize; 3] = [1, 5, 1024];

/// Run `plan` with the columnar kernels off (the reference), then with
/// them on across every thread count and morsel size, in both executor
/// modes — asserting identical rows, order, schema, and full stats
/// each time. Returns the pipelined columnar stats (threads = 1) so
/// callers can additionally inspect the zone-skipping diagnostic.
fn assert_columnar_agrees(plan: &PhysPlan, storage: &Storage, label: &str) -> ExecStats {
    let mut witness = None;
    for materializing in [false, true] {
        let mode = |cfg: ExecConfig| {
            if materializing {
                cfg.materializing()
            } else {
                cfg.pipelined()
            }
        };
        let mode_name = if materializing {
            "materializing"
        } else {
            "pipelined"
        };
        let mut row_stats = ExecStats::new();
        let rowwise = execute_with(
            plan,
            storage,
            &mut row_stats,
            &mode(ExecConfig::new()).columnar(false),
        )
        .expect("row-major run");
        assert_eq!(
            row_stats.morsels_skipped, 0,
            "{label} [{mode_name}]: row-major path must never skip zones"
        );
        for threads in THREADS {
            for morsel in MORSELS {
                let cfg = mode(ExecConfig::with_threads(threads).morsel_rows(morsel));
                let mut st = ExecStats::new();
                let col = execute_with(plan, storage, &mut st, &cfg).expect("columnar run");
                assert!(cfg.columnar, "columnar kernels are the default");
                assert_eq!(
                    col.rows(),
                    rowwise.rows(),
                    "{label} [{mode_name}]: columnar rows differ at threads={threads} morsel={morsel}"
                );
                assert_eq!(
                    col.schema().to_string(),
                    rowwise.schema().to_string(),
                    "{label} [{mode_name}]: schema differs at threads={threads} morsel={morsel}"
                );
                assert_eq!(
                    st, row_stats,
                    "{label} [{mode_name}]: stats differ at threads={threads} morsel={morsel}"
                );
                if !materializing && threads == 1 && morsel == MORSELS[2] {
                    witness = Some(st);
                }
            }
        }
    }
    witness.expect("sweep ran at least once")
}

/// A deterministic little generator for the hand-rolled relations the
/// spec-based generator can't produce (string columns, hot keys).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A relation with a string key column, a string payload, and an int
/// payload — all three nullable — to exercise the per-table dictionary
/// (code-based equality/hashing) under SQL null semantics.
fn string_relation(name: &str, rows: usize, domain: u64, null_pct: u64, seed: u64) -> Relation {
    let mut rng = Lcg(seed ^ 0x5eed);
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut cell = |mk: &dyn Fn(u64) -> Value| {
            if rng.below(100) < null_pct {
                Value::Null
            } else {
                mk(rng.below(domain))
            }
        };
        out.push(vec![
            cell(&|x| Value::Str(format!("k{x}"))),
            cell(&|x| Value::Str(format!("city-{x}"))),
            cell(&|x| Value::Int(i64::try_from(x).expect("small domain"))),
        ]);
    }
    Relation::from_values(name, &["k", "s", "v"], out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hash joins over random int key/value relations: all five kinds,
    /// with and without residuals, empty inputs to all-null keys. The
    /// build side is a bare scan, so the pipelined engine hashes the
    /// key column straight off the columnar mirror.
    #[test]
    fn columnar_hash_join_all_kinds(
        rows in 0usize..16,
        domain in 1i64..6,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
        with_residual in any::<bool>(),
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let residual = if with_residual {
            Pred::cmp_attr("L.v", CmpOp::Le, "R.v")
        } else {
            Pred::always()
        };
        for kind in ALL_KINDS {
            let plan = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::scan("L")),
                build: Box::new(PhysPlan::scan("R")),
                probe_keys: vec![Attr::parse("L.k")],
                build_keys: vec![Attr::parse("R.k")],
                residual: residual.clone(),
            };
            assert_columnar_agrees(&plan, &storage, &format!("hash {kind}"));
        }
    }

    /// A stacked filter prefix over a scan feeding a join and a root
    /// projection: both leading filters hoist into vectorized masks in
    /// the pipelined engine, and the chained-filter `comparisons`
    /// accounting (filter N evaluates once per row surviving filter
    /// N−1) must come out of the popcounts exactly.
    #[test]
    fn columnar_filter_prefix_join_project(
        rows in 0usize..16,
        domain in 1i64..5,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
        lo in 0i64..3,
        hi in 1i64..5,
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::Semi] {
            let join = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::Filter {
                    input: Box::new(PhysPlan::Filter {
                        input: Box::new(PhysPlan::scan("L")),
                        pred: Pred::cmp_lit("L.v", CmpOp::Ge, lo),
                    }),
                    pred: Pred::cmp_lit("L.v", CmpOp::Lt, hi),
                }),
                build: Box::new(PhysPlan::scan("R")),
                probe_keys: vec![Attr::parse("L.k")],
                build_keys: vec![Attr::parse("R.k")],
                residual: Pred::always(),
            };
            let plan = PhysPlan::Project {
                input: Box::new(join),
                attrs: vec![Attr::parse("L.v")],
            };
            assert_columnar_agrees(&plan, &storage, &format!("filter prefix {kind}"));
        }
    }

    /// Zone skipping: a literal predicate outside the column's domain
    /// is resolved entirely from zone min/max metadata — same rows
    /// (none) and same counters, plus a nonzero `morsels_skipped`
    /// diagnostic whenever the table has rows to skip.
    #[test]
    fn columnar_zone_skipping_is_counted(
        rows in 0usize..64,
        domain in 1i64..6,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["L"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let plan = PhysPlan::Filter {
            input: Box::new(PhysPlan::scan("L")),
            pred: Pred::cmp_lit("L.v", CmpOp::Eq, domain + 10),
        };
        let st = assert_columnar_agrees(&plan, &storage, "zone skip");
        let n = db.get("L").expect("table L").len();
        if n > 0 {
            assert!(
                st.morsels_skipped > 0,
                "an out-of-domain equality over {n} rows should skip its zone(s)"
            );
        }
        assert_eq!(st.rows_output, 0, "out-of-domain equality selects nothing");
    }

    /// Dictionary-encoded string columns: joins keyed on strings (all
    /// five kinds) and string-literal comparisons of every operator,
    /// including against a literal absent from the dictionary, under
    /// random null densities.
    #[test]
    fn columnar_string_dictionary_semantics(
        rows in 0usize..24,
        domain in 1u64..6,
        null_pct in 0u64..=100,
        seed in 0u64..10_000,
    ) {
        let mut storage = Storage::new();
        storage.insert("L", string_relation("L", rows, domain, null_pct, seed));
        storage.insert("R", string_relation("R", rows, domain, null_pct, seed ^ 0xabcd));
        for kind in ALL_KINDS {
            let plan = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::scan("L")),
                build: Box::new(PhysPlan::scan("R")),
                probe_keys: vec![Attr::parse("L.k")],
                build_keys: vec![Attr::parse("R.k")],
                residual: Pred::always(),
            };
            assert_columnar_agrees(&plan, &storage, &format!("string hash {kind}"));
        }
        for (op, lit) in [
            (CmpOp::Eq, "k1"),
            (CmpOp::Ne, "k1"),
            (CmpOp::Lt, "k2"),
            (CmpOp::Ge, "city-0"), // absent from L.k's dictionary
        ] {
            let plan = PhysPlan::Filter {
                input: Box::new(PhysPlan::scan("L")),
                pred: Pred::cmp_lit("L.k", op, lit),
            };
            assert_columnar_agrees(&plan, &storage, &format!("string filter {op:?} {lit}"));
        }
        // IS NULL / IS NOT NULL straight off the validity bitmap.
        let plan = PhysPlan::Filter {
            input: Box::new(PhysPlan::scan("L")),
            pred: Pred::is_null("L.s"),
        };
        assert_columnar_agrees(&plan, &storage, "string is-null");
        let plan = PhysPlan::Filter {
            input: Box::new(PhysPlan::scan("L")),
            pred: Pred::is_null("L.s").not(),
        };
        assert_columnar_agrees(&plan, &storage, "string is-not-null");
    }
}

/// Degenerate layouts the random sweep may miss: an empty table, an
/// all-null key column, and a single hot key shared by every row —
/// each swept through all five join kinds in both directions.
#[test]
fn columnar_degenerate_layouts() {
    let empty = Relation::from_values("E", &["k", "v"], Vec::<Vec<Value>>::new());
    let all_null = Relation::from_values(
        "N",
        &["k", "v"],
        (0..8)
            .map(|i| vec![Value::Null, Value::Int(i)])
            .collect::<Vec<_>>(),
    );
    let hot = Relation::from_values(
        "H",
        &["k", "v"],
        (0..12)
            .map(|i| vec![Value::Int(7), Value::Int(i)])
            .collect::<Vec<_>>(),
    );
    let plain = Relation::from_values(
        "P",
        &["k", "v"],
        (0..10)
            .map(|i| vec![Value::Int(i % 4), Value::Int(i)])
            .collect::<Vec<_>>(),
    );
    let mut storage = Storage::new();
    for (name, rel) in [("E", empty), ("N", all_null), ("H", hot), ("P", plain)] {
        // A renamed copy lets every pair join — including a table with
        // its own data — without the schemas overlapping.
        storage.insert(format!("{name}2"), rel.renamed(&format!("{name}2")));
        storage.insert(name, rel);
    }
    for probe in ["E", "N", "H", "P"] {
        for build in ["E2", "N2", "H2", "P2"] {
            for kind in ALL_KINDS {
                let plan = PhysPlan::HashJoin {
                    kind,
                    probe: Box::new(PhysPlan::scan(probe)),
                    build: Box::new(PhysPlan::scan(build)),
                    probe_keys: vec![Attr::parse(&format!("{probe}.k"))],
                    build_keys: vec![Attr::parse(&format!("{build}.k"))],
                    residual: Pred::always(),
                };
                assert_columnar_agrees(
                    &plan,
                    &storage,
                    &format!("degenerate {probe}⋈{build} {kind}"),
                );
            }
        }
    }
    // Filters over the degenerate layouts, including one the zone
    // metadata can prove always-false.
    for table in ["E", "N", "H", "P"] {
        for pred in [
            Pred::cmp_lit(&format!("{table}.k"), CmpOp::Eq, 7),
            Pred::cmp_lit(&format!("{table}.k"), CmpOp::Eq, 99),
            Pred::is_null(&format!("{table}.k")),
        ] {
            let plan = PhysPlan::Filter {
                input: Box::new(PhysPlan::scan(table)),
                pred,
            };
            assert_columnar_agrees(&plan, &storage, &format!("degenerate filter {table}"));
        }
    }
}
