//! Partition-invariance properties of the radix-partitioned hash join.
//!
//! The engine's core contract: the configured partition count moves
//! work between per-partition tables but never changes what the join
//! computes. For random inputs — including empty relations, **all-null
//! key columns**, and a **single hot key** (every build row in one
//! bucket of one partition) — every join kind must produce rows,
//! row order, schema, and scalar [`ExecStats`] counters bit-identical
//! to the sequential unpartitioned engine across
//! `partitions ∈ {1, 2, 8, 64} × threads ∈ {1, 2, 8}` × morsel sizes
//! on both sides of the probe cardinality.
//!
//! The per-partition diagnostic breakdown is additionally pinned down:
//! its build/probe totals are partition-count invariant and sum back
//! into the scalar counters (build total = non-null-keyed build rows).

use fro_algebra::{Attr, CmpOp, Pred, Relation, Value};
use fro_exec::{execute, execute_with, ExecConfig, ExecStats, JoinKind, PhysPlan, Storage};
use fro_testkit::dbgen::{random_database, DbSpec};
use proptest::prelude::*;

const ALL_KINDS: [JoinKind; 5] = [
    JoinKind::Inner,
    JoinKind::LeftOuter,
    JoinKind::FullOuter,
    JoinKind::Semi,
    JoinKind::Anti,
];

const PARTITIONS: [usize; 4] = [1, 2, 8, 64];
const THREADS: [usize; 3] = [1, 2, 8];
const MORSELS: [usize; 3] = [1, 5, 1024];

/// Rows of `rel` whose `attr` key is non-null — what the partitioned
/// build scatters, and therefore what the breakdown must sum to.
fn non_null_keys(rel: &Relation, attr: &str) -> u64 {
    let col = rel
        .schema()
        .index_of(&Attr::parse(attr))
        .expect("key attribute");
    rel.rows().iter().filter(|t| !t.get(col).is_null()).count() as u64
}

/// Assert the full sweep for one hash-join plan: identical rows, order,
/// schema, and scalar counters at every (partitions, threads, morsel),
/// plus a coherent per-partition breakdown.
fn assert_partition_invariant(
    plan: &PhysPlan,
    storage: &Storage,
    build_non_null: u64,
    probe_non_null: u64,
    label: &str,
) {
    let mut seq_stats = ExecStats::new();
    let seq = execute(plan, storage, &mut seq_stats).expect("sequential run");
    for partitions in PARTITIONS {
        for threads in THREADS {
            for morsel in MORSELS {
                let cfg = ExecConfig::with_threads(threads)
                    .morsel_rows(morsel)
                    .partitions(partitions);
                let mut st = ExecStats::new();
                let out = execute_with(plan, storage, &mut st, &cfg).expect("partitioned run");
                assert_eq!(
                    out.rows(),
                    seq.rows(),
                    "{label}: rows differ at P={partitions} threads={threads} morsel={morsel}"
                );
                assert_eq!(
                    out.schema().to_string(),
                    seq.schema().to_string(),
                    "{label}: schema differs at P={partitions}"
                );
                assert_eq!(
                    st, seq_stats,
                    "{label}: scalar counters differ at P={partitions} threads={threads} \
                     morsel={morsel}"
                );
                // Breakdown coherence: the hash join noted its partition
                // count, and the per-partition totals are exactly the
                // non-null-keyed build/probe rows — invariant in P.
                assert_eq!(
                    st.partition.used(),
                    partitions,
                    "{label}: partition count not recorded at P={partitions}"
                );
                assert_eq!(
                    st.partition.build_rows().iter().sum::<u64>(),
                    build_non_null,
                    "{label}: build breakdown total drifted at P={partitions}"
                );
                assert_eq!(
                    st.partition.probe_rows().iter().sum::<u64>(),
                    probe_non_null,
                    "{label}: probe breakdown total drifted at P={partitions}"
                );
                assert!(
                    st.partition.build_rows().iter().sum::<u64>() <= st.hash_build_rows,
                    "{label}: scattered more rows than the build read"
                );
            }
        }
    }
}

fn hash_plan(kind: JoinKind, residual: &Pred) -> PhysPlan {
    PhysPlan::HashJoin {
        kind,
        probe: Box::new(PhysPlan::scan("L")),
        build: Box::new(PhysPlan::scan("R")),
        probe_keys: vec![Attr::parse("L.k")],
        build_keys: vec![Attr::parse("R.k")],
        residual: residual.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random key/value relations: `nulls` sweeps from no nulls to
    /// **all keys null** (nulls = 100, empty bucket maps at every P);
    /// `rows = 0` covers empty build and probe sides.
    #[test]
    fn hash_join_is_partition_invariant(
        rows in 0usize..16,
        domain in 1i64..6,
        nulls in 0u32..=100,
        seed in 0u64..10_000,
        with_residual in any::<bool>(),
    ) {
        let spec = DbSpec::kv(&["L", "R"], rows, domain, f64::from(nulls) / 100.0);
        let db = random_database(&spec, seed);
        let storage = Storage::from_database(&db);
        let build_nn = non_null_keys(db.get("R").expect("R"), "R.k");
        let probe_nn = non_null_keys(db.get("L").expect("L"), "L.k");
        let residual = if with_residual {
            Pred::cmp_attr("L.v", CmpOp::Le, "R.v")
        } else {
            Pred::always()
        };
        for kind in ALL_KINDS {
            assert_partition_invariant(
                &hash_plan(kind, &residual),
                &storage,
                build_nn,
                probe_nn,
                &format!("random {kind}"),
            );
        }
    }

    /// Skew torture: every build row carries the **same hot key**, so
    /// all the build work lands in one bucket of one partition while
    /// the other P−1 partitions stay empty — the worst case for any
    /// scheme whose determinism leaned on uniform spread.
    #[test]
    fn single_hot_key_build_is_partition_invariant(
        build_rows in 1usize..24,
        probe_rows in 0usize..16,
        hot in 0i64..5,
        seed in 0u64..10_000,
    ) {
        let spec = DbSpec::kv(&["L"], probe_rows, 5, 0.2);
        let db = random_database(&spec, seed);
        let mut storage = Storage::from_database(&db);
        let r = Relation::from_values(
            "R",
            &["k", "v"],
            (0..build_rows)
                .map(|i| vec![Value::Int(hot), Value::Int(i as i64)])
                .collect::<Vec<_>>(),
        );
        let build_nn = build_rows as u64;
        let probe_nn = non_null_keys(db.get("L").expect("L"), "L.k");
        storage.insert("R", r);
        for kind in ALL_KINDS {
            assert_partition_invariant(
                &hash_plan(kind, &Pred::always()),
                &storage,
                build_nn,
                probe_nn,
                &format!("hot-key {kind}"),
            );
        }
    }
}

/// The "auto" setting (`partitions = 0`) resolves per join from the
/// build cardinality; whatever it picks, results stay identical to the
/// explicit-P runs — auto can never change answers, only layout.
#[test]
fn auto_partitioning_matches_explicit() {
    let spec = DbSpec::kv(&["L", "R"], 12, 4, 0.1);
    let db = random_database(&spec, 7);
    let storage = Storage::from_database(&db);
    for kind in ALL_KINDS {
        let plan = hash_plan(kind, &Pred::always());
        let mut seq_stats = ExecStats::new();
        let seq = execute(&plan, &storage, &mut seq_stats).expect("sequential");
        let cfg = ExecConfig::with_threads(2).morsel_rows(3).partitions(0);
        let mut st = ExecStats::new();
        let auto = execute_with(&plan, &storage, &mut st, &cfg).expect("auto");
        assert_eq!(auto.rows(), seq.rows(), "auto diverged for {kind}");
        assert_eq!(st, seq_stats, "auto counters diverged for {kind}");
    }
}
