//! Plan-cache correctness: the cache must be *invisible* except in
//! speed. For random nice graphs and random implementing trees:
//!
//! * a warm-cache prepare returns a bit-identical plan (to the
//!   `explain()` string) and bit-identical results and `ExecStats`
//!   as the cold prepare that populated it, with zero enumeration;
//! * an alpha-equivalent query — a *different association* of the same
//!   graph — collides on the graph signature and is answered from the
//!   cache with the same result;
//! * a statistics change bumps the catalog epoch, so the next prepare
//!   re-plans (stale entries counted and evicted) — the cache never
//!   serves a plan costed under dead statistics;
//! * every result, cold or warm, matches the reference evaluator.

use fro::prelude::*;
use fro_algebra::Attr;
use fro_testkit::{db_for_graph, random_implementing_tree, random_nice_graph, GraphSpec};
use proptest::prelude::*;

fn spec(core: usize, oj: usize, extra: usize) -> GraphSpec {
    GraphSpec {
        core,
        oj_nodes: oj,
        extra_core_edges: extra,
        strong: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn warm_cache_is_bit_identical_and_skips_enumeration(
        core in 2usize..5,
        oj in 0usize..3,
        extra in 0usize..2,
        rows in 4usize..16,
        seed in 0u64..40,
    ) {
        let g = random_nice_graph(&spec(core, oj, extra), seed);
        let db = db_for_graph(&g, rows, 8, 0.1, seed);
        let Some(tree) = random_implementing_tree(&g, seed) else {
            return;
        };
        let want = tree.eval(&db).expect("reference evaluates");
        let session = Session::from_storage(Storage::from_database(&db));

        // Cold: populates the cache.
        let cold = session.prepare(&tree).expect("optimizes");
        let (cold_out, cold_stats) = cold.run_with_stats().expect("executes");
        prop_assert!(cold_out.set_eq(&want), "cold result matches reference");

        // Warm: same query — full-set hit, zero enumeration, and the
        // plan, result and engine counters are bit-identical.
        let warm = session.prepare(&tree).expect("optimizes");
        prop_assert_eq!(warm.optimized().pairs_examined, 0, "warm must not enumerate");
        prop_assert!(warm.optimized().cache.hits >= 1);
        prop_assert_eq!(warm.plan().explain(), cold.plan().explain());
        let (warm_out, warm_stats) = warm.run_with_stats().expect("executes");
        prop_assert_eq!(&warm_out, &cold_out, "warm result bit-identical");
        prop_assert_eq!(warm_stats, cold_stats, "warm engine work identical");

        // Alpha-equivalence: a *different association* of the same
        // graph shares the signature, so it too is answered from the
        // cache — with the same (reference-checked) result.
        if let Some(alt) = random_implementing_tree(&g, seed.wrapping_add(1)) {
            let p = session.prepare(&alt).expect("optimizes");
            prop_assert_eq!(
                p.optimized().pairs_examined, 0,
                "alpha-equivalent association shares the cached plan"
            );
            prop_assert!(p.run().expect("executes").set_eq(&want));
        }
    }

    #[test]
    fn epoch_bump_replans_and_never_serves_stale(
        core in 2usize..5,
        rows in 4usize..16,
        seed in 0u64..40,
    ) {
        let g = random_nice_graph(&spec(core, 1, 1), seed);
        let db = db_for_graph(&g, rows, 8, 0.0, seed);
        let Some(tree) = random_implementing_tree(&g, seed) else {
            return;
        };
        let want = tree.eval(&db).expect("reference evaluates");
        let session = Session::from_storage(Storage::from_database(&db));

        let _ = session.prepare(&tree).expect("optimizes");
        let epoch_before = session.catalog().epoch();

        // Any statistics mutation bumps the epoch …
        session.set_distinct(&Attr::parse("R0.k"), 1_000_000);
        prop_assert!(session.catalog().epoch() > epoch_before);

        // … so the next prepare must re-plan (stale entries evicted,
        // never served) and still produce a correct result.
        let replanned = session.prepare(&tree).expect("optimizes");
        prop_assert!(replanned.optimized().pairs_examined > 0, "stale plans not served");
        prop_assert!(replanned.optimized().cache.stale >= 1, "stale entries counted");
        prop_assert!(replanned.run().expect("executes").set_eq(&want));

        // The re-plan re-primed the cache under the new epoch.
        let warm = session.prepare(&tree).expect("optimizes");
        prop_assert_eq!(warm.optimized().pairs_examined, 0);
        prop_assert!(warm.run().expect("executes").set_eq(&want));
    }
}

/// Deterministic end-to-end check on the paper's Example 1: cold and
/// warm sessions agree with the reference evaluator, and the cache
/// counters surface through `Prepared::explain`.
#[test]
fn example1_cold_warm_and_explain_counters() {
    let q = Query::rel("R1").join(
        Query::rel("R2").outerjoin(Query::rel("R3"), Pred::eq_attr("R2.k2", "R3.k3")),
        Pred::eq_attr("R1.k1", "R2.k2"),
    );
    let mut db = Database::new();
    db.insert(Relation::from_ints("R1", &["k1"], &[&[0]]));
    db.insert(Relation::from_ints("R2", &["k2"], &[&[0], &[1], &[2]]));
    db.insert(Relation::from_ints("R3", &["k3"], &[&[1], &[2], &[9]]));
    let want = q.eval(&db).unwrap();

    let session = Session::from_storage(Storage::from_database(&db));
    let cold = session.prepare(&q).unwrap();
    assert!(cold.run().unwrap().set_eq(&want));
    assert!(cold.explain().contains("plan_cache: hits=0"));

    let warm = session.prepare(&q).unwrap();
    assert_eq!(warm.optimized().pairs_examined, 0);
    assert!(warm.explain().contains("plan_cache: hits=1"));
    assert!(warm.run().unwrap().set_eq(&want));
}
