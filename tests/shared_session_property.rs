//! Concurrency invariants of the shared-catalog session architecture:
//! T threads interleaving queries and mutations against one
//! [`SharedDb`] must behave exactly like some single-threaded
//! execution —
//!
//! * concurrent warm queries return results bit-identical to a
//!   single-session run (and alpha-equivalent associations share the
//!   cached plan across threads);
//! * barriered mutate→query rounds reproduce a single-threaded replay
//!   bit for bit;
//! * an unsynchronized mutator flipping two joined tables *atomically*
//!   can never produce a torn read: every concurrent result equals one
//!   of the per-generation expected results, never a mix;
//! * epoch bumps invalidate across threads — after a statistics
//!   change, no thread's next prepare is served the stale plan;
//! * per-session cache counters merge sanely: with a quiescent
//!   catalog, the sum over handles equals the shared cumulative stats.

use fro::prelude::*;
use fro_algebra::{Pred, Query, Relation};
use std::sync::{Arc, Barrier};
use std::thread;

const THREADS: usize = 8;

/// Three joined tables; `variant` 0/1/2 picks an association of the
/// same query graph, so all variants are alpha-equivalent (Theorem 1:
/// one signature, one cache entry).
fn chain_query(variant: usize) -> Query {
    let p12 = Pred::eq_attr("R1.k1", "R2.k2");
    let p23 = Pred::eq_attr("R2.k2", "R3.k3");
    match variant % 3 {
        0 => Query::rel("R1")
            .join(Query::rel("R2"), p12)
            .join(Query::rel("R3"), p23),
        1 => Query::rel("R1").join(Query::rel("R2").join(Query::rel("R3"), p23), p12),
        _ => Query::rel("R2")
            .join(Query::rel("R1"), p12)
            .join(Query::rel("R3"), p23),
    }
}

fn chain_tables(db: &Arc<SharedDb>, scale: i64) {
    let table = |name: &str, col: &str, lo: i64, hi: i64| {
        let rows: Vec<Vec<i64>> = (lo..hi).map(|v| vec![v]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
        Relation::from_ints(name, &[col], &refs)
    };
    db.insert_table("R1", table("R1", "k1", 0, 4 + scale));
    db.insert_table("R2", table("R2", "k2", 2, 8 + scale));
    db.insert_table("R3", table("R3", "k3", 5, 11 + scale));
}

#[test]
fn concurrent_warm_queries_are_bit_identical_to_single_session() {
    let db = SharedDb::new();
    chain_tables(&db, 0);

    // Single-session expectations, one per association.
    let reference = db.session();
    let expected: Vec<Relation> = (0..3)
        .map(|v| reference.prepare(&chain_query(v)).unwrap().run().unwrap())
        .collect();

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let expected = expected.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let session = db.session();
                barrier.wait();
                for i in 0..24 {
                    let v = (t + i) % 3;
                    let out = session.prepare(&chain_query(v)).unwrap().run().unwrap();
                    assert_eq!(out, expected[v], "thread {t} iteration {i}");
                }
                session.local_cache_stats()
            })
        })
        .collect();
    let locals: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every association shares ONE signature, so across 8×24 warm
    // lookups virtually everything hits; only the races on the very
    // first optimization of each subset can miss.
    let hits: u64 = locals.iter().map(|l| l.hits).sum();
    let misses: u64 = locals.iter().map(|l| l.misses).sum();
    assert!(
        hits as f64 / (hits + misses) as f64 > 0.9,
        "warm hit rate too low: {hits} hits / {misses} misses"
    );
}

#[test]
fn counters_merge_sanely_across_handles() {
    let db = SharedDb::new();
    chain_tables(&db, 0);
    let sessions: Vec<_> = (0..4).map(|_| db.session()).collect();
    for (i, s) in sessions.iter().enumerate() {
        for v in 0..3 {
            let _ = s.prepare(&chain_query((v + i) % 3)).unwrap();
        }
    }
    // With a quiescent catalog (no mutations since the handles
    // connected), the shared cumulative counters are exactly the sum
    // of the per-handle counters.
    let total = sessions[0].cache_stats();
    let sum = sessions.iter().fold(CacheStats::default(), |mut acc, s| {
        acc.merge(&s.local_cache_stats());
        acc
    });
    assert_eq!(total.hits, sum.hits);
    assert_eq!(total.misses, sum.misses);
    assert_eq!(total.stale, sum.stale);
}

#[test]
fn barriered_mutation_rounds_match_single_threaded_replay() {
    const ROUNDS: usize = 6;

    // Replay the same script single-threaded to get the expectations.
    let replay_db = SharedDb::new();
    chain_tables(&replay_db, 0);
    let replay = replay_db.session();
    let expected: Vec<Relation> = (0..ROUNDS)
        .map(|r| {
            chain_tables(&replay_db, r as i64 + 1);
            replay.prepare(&chain_query(0)).unwrap().run().unwrap()
        })
        .collect();

    let db = SharedDb::new();
    chain_tables(&db, 0);
    // Two barrier points per round: after the mutation (thread 0) and
    // after every thread's read, so round r reads see exactly the
    // r-th mutation.
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let expected = expected.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let session = db.session();
                for (r, want) in expected.iter().enumerate() {
                    if t == 0 {
                        chain_tables(&db, r as i64 + 1);
                    }
                    barrier.wait();
                    let out = session.prepare(&chain_query(0)).unwrap().run().unwrap();
                    assert_eq!(&out, want, "thread {t} round {r}");
                    barrier.wait();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn atomic_two_table_flips_are_never_observed_torn() {
    const GENERATIONS: i64 = 8;

    // Expected result per generation, each computed on its own fresh
    // database (same stats ⇒ same plan ⇒ bit-identical rows).
    let expected: Vec<Relation> = (0..=GENERATIONS)
        .map(|g| {
            let db = SharedDb::new();
            chain_tables(&db, g);
            db.session()
                .prepare(&chain_query(0))
                .unwrap()
                .run()
                .unwrap()
        })
        .collect();

    let db = SharedDb::new();
    chain_tables(&db, 0);
    let start = Arc::new(Barrier::new(THREADS + 1));
    let readers: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let expected = expected.clone();
            let start = Arc::clone(&start);
            thread::spawn(move || {
                let session = db.session();
                start.wait();
                for i in 0..40 {
                    let out = session.prepare(&chain_query(0)).unwrap().run().unwrap();
                    // No torn reads: the result is some generation's,
                    // with all three tables from the SAME generation.
                    assert!(
                        expected.contains(&out),
                        "thread {t} iteration {i}: result matches no generation \
                         ({} rows)",
                        out.len()
                    );
                }
            })
        })
        .collect();
    // The mutator replaces all three joined tables in ONE atomic
    // generation bump, racing the readers without any barrier.
    start.wait();
    for g in 1..=GENERATIONS {
        chain_tables(&db, g);
        std::thread::yield_now();
    }
    for h in readers {
        h.join().unwrap();
    }
}

#[test]
fn epoch_bumps_invalidate_across_threads() {
    let db = SharedDb::new();
    chain_tables(&db, 0);
    let warmup = db.session();
    let _ = warmup.prepare(&chain_query(0)).unwrap();
    let warm = warmup.prepare(&chain_query(0)).unwrap();
    assert_eq!(warm.optimized().pairs_examined, 0, "cache warm before");

    // A statistics mutation from one handle…
    db.set_distinct(&fro_algebra::Attr::parse("R2.k2"), 1_000_000);

    // …must force EVERY thread's next prepare to re-plan: nobody is
    // served the plan costed under the dead statistics.
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let session = db.session();
                let p = session.prepare(&chain_query(0)).unwrap();
                let local = session.local_cache_stats();
                (p.optimized().cache.hits, local.stale + local.misses)
            })
        })
        .collect();
    let mut replans = 0;
    for h in handles {
        let (hits, missed) = h.join().unwrap();
        // Either this thread re-planned itself (miss/stale) or it hit
        // a plan some sibling already re-planned at the NEW epoch —
        // both fine; a hit on the old epoch is impossible because the
        // lookup is epoch-checked.
        if missed > 0 {
            replans += 1;
        } else {
            assert!(hits >= 1);
        }
    }
    assert!(replans >= 1, "at least the first thread re-plans");
}
