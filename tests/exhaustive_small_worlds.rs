//! Exhaustive small-world validation of Theorem 1.
//!
//! Enumerate *every* join/outerjoin graph on 3 nodes (each unordered
//! pair: absent, join, or an outerjoin in either direction), with
//! strong and weak predicate variants, and *every* tiny database over
//! a two-value domain with nulls. Then check:
//!
//! * **soundness** — whenever the checker (any policy) says "freely
//!   reorderable", all implementing trees agree on all databases;
//! * **anti-vacuity** — for the graphs the `MinimalChain` policy
//!   rejects that still have ≥ 2 implementing trees, a concrete
//!   counterexample database exists (so the theorem's hypotheses are
//!   not just sufficient but sharply targeted on this universe).

use fro_algebra::{Database, Pred, Relation, Value};
use fro_core::reorder::{analyze_graph, Policy};
use fro_graph::QueryGraph;
use fro_trees::{enumerate_trees, EnumLimit};

fn key_eq(a: usize, b: usize) -> Pred {
    Pred::eq_attr(&format!("R{a}.k"), &format!("R{b}.k"))
}

fn weak(a: usize, b: usize) -> Pred {
    // Weak w.r.t. the preserved side `a` (Example 3's recipe).
    key_eq(a, b).or(Pred::is_null(&format!("R{a}.k")))
}

/// All graphs on 3 nodes; `weak_oj` selects the outerjoin label.
fn all_graphs(weak_oj: bool) -> Vec<QueryGraph> {
    let pairs = [(0usize, 1usize), (0, 2), (1, 2)];
    let mut out = Vec::new();
    for mask in 0..(4u32.pow(3)) {
        let mut g = QueryGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        let mut m = mask;
        for &(a, b) in &pairs {
            let choice = m % 4;
            m /= 4;
            match choice {
                1 => g.add_join_edge(a, b, key_eq(a, b)).unwrap(),
                2 => {
                    let p = if weak_oj { weak(a, b) } else { key_eq(a, b) };
                    g.add_outerjoin_edge(a, b, p).unwrap();
                }
                3 => {
                    let p = if weak_oj { weak(b, a) } else { key_eq(b, a) };
                    g.add_outerjoin_edge(b, a, p).unwrap();
                }
                _ => {}
            }
        }
        if g.is_connected() {
            out.push(g);
        }
    }
    out
}

/// Every database where each of the three single-column relations has
/// a subset of {0, 1, null} as rows: 8^3 = 512 databases.
fn all_tiny_databases() -> Vec<Database> {
    let values = [Value::Int(0), Value::Int(1), Value::Null];
    let mut dbs = Vec::new();
    for mask in 0..(8u32.pow(3)) {
        let mut db = Database::new();
        let mut m = mask;
        for r in 0..3 {
            let sub = m % 8;
            m /= 8;
            let rows: Vec<Vec<Value>> = (0..3)
                .filter(|i| sub & (1 << i) != 0)
                .map(|i| vec![values[i as usize].clone()])
                .collect();
            let name = format!("R{r}");
            db.insert_named(name.clone(), Relation::from_values(&name, &["k"], rows));
        }
        dbs.push(db);
    }
    dbs
}

#[test]
fn exhaustive_three_node_soundness_and_anti_vacuity() {
    let dbs = all_tiny_databases();
    let mut accepted = 0usize;
    let mut rejected_with_witness = 0usize;
    let mut rejected_multi_tree = 0usize;

    for weak_oj in [false, true] {
        for g in all_graphs(weak_oj) {
            let trees = enumerate_trees(&g, EnumLimit::default()).expect("connected");
            // Disagreement witness, if any.
            let mut witness = false;
            'dbs: for db in &dbs {
                let mut first: Option<Relation> = None;
                for t in &trees {
                    let r = t.eval(db).expect("eval");
                    match &first {
                        None => first = Some(r),
                        Some(f) => {
                            if !r.set_eq(f) {
                                witness = true;
                                break 'dbs;
                            }
                        }
                    }
                }
            }

            for policy in [Policy::Paper, Policy::Strict, Policy::MinimalChain] {
                let verdict = analyze_graph(&g, policy).is_freely_reorderable();
                if verdict {
                    accepted += 1;
                    assert!(
                        !witness,
                        "UNSOUND: policy {policy:?} accepted but trees disagree:\n{g}"
                    );
                }
            }

            // Anti-vacuity bookkeeping for the most permissive policy.
            if !analyze_graph(&g, Policy::MinimalChain).is_freely_reorderable() && trees.len() > 1 {
                rejected_multi_tree += 1;
                if witness {
                    rejected_with_witness += 1;
                }
            }
        }
    }

    assert!(accepted > 0, "no graph was ever accepted");
    assert!(
        rejected_multi_tree > 0,
        "no rejected multi-tree graphs found"
    );
    // Sharpness on this universe: every rejected multi-tree graph has a
    // real counterexample database.
    assert_eq!(
        rejected_with_witness, rejected_multi_tree,
        "some rejected graphs never disagreed — hypotheses may be too strong on 3 nodes"
    );
}

#[test]
fn exhaustive_three_node_counts() {
    // Document the landscape (guards against silent generator drift):
    // connected 3-node graphs, per outerjoin labeling.
    let strong = all_graphs(false);
    assert_eq!(strong.len(), 54); // 64 labelings − 10 disconnected ones
    let nice = strong
        .iter()
        .filter(|g| fro_graph::check_nice(g).is_nice())
        .count();
    assert_eq!(nice, 19, "nice-graph census changed");
}
