//! Wire-format properties over real optimizer output:
//!
//! * encode → decode → encode is the identity on bytes (and the
//!   decoded plan is structurally equal) for every DP and greedy plan
//!   over every corpus workload — the canonical-encoding guarantee the
//!   EXPLAIN corpus and snapshot format rely on;
//! * the decoder is total on hostile input: any byte mutation of a
//!   valid encoding, and any random byte string, yields a typed
//!   [`WireError`] or a plan that re-encodes cleanly — never a panic
//!   and never a structurally-invalid plan.

use fro_core::optimizer::greedy_optimize;
use fro_core::{analyze, optimize, Catalog, Policy};
use fro_testkit::corpus_suite;
use fro_wire::{decode_plan, encode_plan};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Every corpus plan (DP and greedy), with the catalog whose interner
/// is its symbol table. Built once: optimizing six workloads per
/// proptest case would dominate the suite's runtime.
fn corpus_encodings() -> &'static Vec<(String, Catalog, Vec<u8>)> {
    static CELL: OnceLock<Vec<(String, Catalog, Vec<u8>)>> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut out = Vec::new();
        for case in corpus_suite() {
            let dp = optimize(&case.query, &case.catalog, Policy::Paper).expect("dp optimizes");
            let graph = analyze(&case.query, Policy::Paper)
                .graph
                .expect("corpus workloads are reorderable");
            let greedy = greedy_optimize(&graph, &case.catalog).expect("greedy optimizes");
            for (algo, plan) in [("dp", &dp.plan), ("greedy", &greedy.plan)] {
                let bytes = encode_plan(plan, case.catalog.interner()).expect("encodes");
                out.push((format!("{}/{algo}", case.name), case.catalog.clone(), bytes));
            }
        }
        out
    })
}

/// Encode → decode → encode identity for every corpus plan.
#[test]
fn corpus_plans_roundtrip_bytewise() {
    for case in corpus_suite() {
        let dp = optimize(&case.query, &case.catalog, Policy::Paper).expect("dp optimizes");
        let graph = analyze(&case.query, Policy::Paper)
            .graph
            .expect("corpus workloads are reorderable");
        let greedy = greedy_optimize(&graph, &case.catalog).expect("greedy optimizes");
        let it = case.catalog.interner();
        for (algo, plan) in [("dp", &dp.plan), ("greedy", &greedy.plan)] {
            let bytes = encode_plan(plan, it)
                .unwrap_or_else(|e| panic!("{}/{algo} must encode: {e}", case.name));
            let back = decode_plan(&bytes, it)
                .unwrap_or_else(|e| panic!("{}/{algo} must decode: {e}", case.name));
            assert_eq!(&back, plan, "{}/{algo}: decoded plan differs", case.name);
            let again = encode_plan(&back, it).expect("re-encodes");
            assert_eq!(again, bytes, "{}/{algo}: re-encode not bytewise", case.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Single-byte XOR mutations of valid encodings: the decoder must
    /// return a typed error or a plan that itself re-encodes — never
    /// panic, never hand back something the encoder rejects.
    #[test]
    fn mutated_encodings_never_panic(
        which in 0usize..1_000,
        pos in 0usize..100_000,
        xor in 1u8..=255,
    ) {
        let all = corpus_encodings();
        let (name, catalog, bytes) = &all[which % all.len()];
        let mut mutated = bytes.clone();
        let i = pos % mutated.len();
        mutated[i] ^= xor;
        if let Ok(plan) = decode_plan(&mutated, catalog.interner()) {
            // A mutation may land in a don't-care spot (e.g. turn one
            // valid literal into another). Whatever decodes must be a
            // plan the encoder accepts: structural validity held.
            prop_assert!(
                encode_plan(&plan, catalog.interner()).is_ok(),
                "{name}: mutation at byte {i} decoded to an unencodable plan"
            );
        }
    }

    /// Truncations of valid encodings always fail with a typed error.
    #[test]
    fn truncated_encodings_error(which in 0usize..1_000, cut in 0usize..100_000) {
        let all = corpus_encodings();
        let (name, catalog, bytes) = &all[which % all.len()];
        let keep = cut % bytes.len(); // strictly shorter than the original
        let err = decode_plan(&bytes[..keep], catalog.interner());
        prop_assert!(err.is_err(), "{name}: truncation to {keep} bytes decoded");
    }

    /// Arbitrary byte strings: decoding is total (no panics), and the
    /// rare accidental success still re-encodes.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..192)) {
        let (_, catalog, _) = &corpus_encodings()[0];
        if let Ok(plan) = decode_plan(&bytes, catalog.interner()) {
            prop_assert!(encode_plan(&plan, catalog.interner()).is_ok());
        }
    }
}
