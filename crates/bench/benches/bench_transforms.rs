//! E11 timing: basic-transform application, applicability scanning,
//! closure computation and BT-sequence search (Lemma 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fro_testkit::{random_implementing_tree, random_nice_graph, GraphSpec};
use fro_trees::{applicable_bts, apply_bt, bt_closure, find_bt_sequence, ClosureOptions};
use std::hint::black_box;

fn bench_transforms(c: &mut Criterion) {
    let spec = GraphSpec {
        core: 5,
        oj_nodes: 2,
        extra_core_edges: 1,
        strong: true,
    };
    let g = random_nice_graph(&spec, 5);
    let q = random_implementing_tree(&g, 1).unwrap();

    c.bench_function("bt/applicable_scan", |b| {
        b.iter(|| black_box(applicable_bts(&q)));
    });

    let bts = applicable_bts(&q);
    let bt = bts.first().expect("some BT applies").clone();
    c.bench_function("bt/apply_one", |b| {
        b.iter(|| black_box(apply_bt(&q, &bt).unwrap()));
    });

    let mut group = c.benchmark_group("bt_closure");
    group.sample_size(10);
    for (core, oj) in [(3usize, 1usize), (4, 1), (4, 2)] {
        let spec = GraphSpec {
            core,
            oj_nodes: oj,
            extra_core_edges: 0,
            strong: true,
        };
        let g = random_nice_graph(&spec, 7);
        let q = random_implementing_tree(&g, 2).unwrap();
        group.bench_with_input(
            BenchmarkId::new("preserving", format!("{core}c{oj}o")),
            &q,
            |b, q| {
                b.iter(|| {
                    black_box(bt_closure(
                        q,
                        ClosureOptions {
                            only_preserving: true,
                            max_states: 500_000,
                        },
                    ))
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("bt_sequence_search");
    group.sample_size(10);
    // BFS: shortest sequences, exponential state space — small cores only.
    for core in [3usize, 4] {
        let spec = GraphSpec {
            core,
            oj_nodes: 1,
            extra_core_edges: 0,
            strong: true,
        };
        let g = random_nice_graph(&spec, 11);
        let a = random_implementing_tree(&g, 3).unwrap();
        let b_tree = random_implementing_tree(&g, 103).unwrap();
        group.bench_with_input(BenchmarkId::new("lemma3_bfs", core), &core, |bch, _| {
            bch.iter(|| {
                black_box(
                    find_bt_sequence(&a, &b_tree, ClosureOptions::default()).expect("reachable"),
                )
            });
        });
    }
    // The paper's constructive hoisting procedure scales much further.
    for core in [4usize, 6, 8] {
        let spec = GraphSpec {
            core,
            oj_nodes: 2,
            extra_core_edges: 0,
            strong: true,
        };
        let g = random_nice_graph(&spec, 11);
        let a = random_implementing_tree(&g, 3).unwrap();
        let b_tree = random_implementing_tree(&g, 103).unwrap();
        group.bench_with_input(
            BenchmarkId::new("lemma3_constructive", core),
            &core,
            |bch, _| {
                bch.iter(|| {
                    black_box(fro_trees::constructive_sequence(&a, &b_tree).expect("bridge cuts"))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
