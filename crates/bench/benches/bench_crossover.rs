//! E2 timing: join-first vs outerjoin-first across join selectivities
//! (the discussion following Example 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fro_core::optimizer::lower;
use fro_exec::{execute, ExecStats};
use fro_testkit::workloads::crossover;
use std::hint::black_box;

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossover");
    group.sample_size(10);
    for sel_pct in [1u32, 25, 75] {
        let w = crossover(400, 800, f64::from(sel_pct) / 100.0, 42);
        let jf = lower(&w.join_first, &w.catalog).unwrap();
        let of = lower(&w.oj_first, &w.catalog).unwrap();
        group.bench_with_input(BenchmarkId::new("join_first", sel_pct), &sel_pct, |b, _| {
            b.iter(|| {
                let mut stats = ExecStats::new();
                black_box(execute(&jf, &w.storage, &mut stats).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("oj_first", sel_pct), &sel_pct, |b, _| {
            b.iter(|| {
                let mut stats = ExecStats::new();
                black_box(execute(&of, &w.storage, &mut stats).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
