//! E5 timing: implementing-tree counting and enumeration across
//! topologies and sizes (the plan space Theorem 1 licenses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fro_algebra::Pred;
use fro_graph::QueryGraph;
use fro_trees::{count_implementing_trees, enumerate_trees, EnumLimit};
use std::hint::black_box;

fn key_eq(a: usize, b: usize) -> Pred {
    Pred::eq_attr(&format!("R{a}.k"), &format!("R{b}.k"))
}

fn chain(n: usize) -> QueryGraph {
    let mut g = QueryGraph::new((0..n).map(|i| format!("R{i}")).collect());
    for i in 0..n - 1 {
        g.add_join_edge(i, i + 1, key_eq(i, i + 1)).unwrap();
    }
    g
}

fn clique(n: usize) -> QueryGraph {
    let mut g = QueryGraph::new((0..n).map(|i| format!("R{i}")).collect());
    for i in 0..n {
        for j in i + 1..n {
            g.add_join_edge(i, j, key_eq(i, j)).unwrap();
        }
    }
    g
}

fn core_with_oj_tail(n: usize) -> QueryGraph {
    let core = n / 2;
    let mut g = QueryGraph::new((0..n).map(|i| format!("R{i}")).collect());
    for i in 0..core.saturating_sub(1) {
        g.add_join_edge(i, i + 1, key_eq(i, i + 1)).unwrap();
    }
    for i in core.max(1)..n {
        g.add_outerjoin_edge(i - 1, i, key_eq(i - 1, i)).unwrap();
    }
    g
}

fn bench_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_trees");
    for n in [6usize, 10, 14] {
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            let g = chain(n);
            b.iter(|| black_box(count_implementing_trees(&g, false)));
        });
        group.bench_with_input(BenchmarkId::new("oj_mix", n), &n, |b, &n| {
            let g = core_with_oj_tail(n);
            b.iter(|| black_box(count_implementing_trees(&g, false)));
        });
    }
    for n in [6usize, 8, 10] {
        group.bench_with_input(BenchmarkId::new("clique", n), &n, |b, &n| {
            let g = clique(n);
            b.iter(|| black_box(count_implementing_trees(&g, false)));
        });
    }
    group.finish();
}

fn bench_enumerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_trees");
    group.sample_size(10);
    for n in [5usize, 7, 9] {
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            let g = chain(n);
            b.iter(|| {
                black_box(
                    enumerate_trees(
                        &g,
                        EnumLimit {
                            max_trees: 1_000_000,
                        },
                    )
                    .unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("oj_mix", n), &n, |b, &n| {
            let g = core_with_oj_tail(n);
            b.iter(|| {
                black_box(
                    enumerate_trees(
                        &g,
                        EnumLimit {
                            max_trees: 1_000_000,
                        },
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_count, bench_enumerate);
criterion_main!(benches);
