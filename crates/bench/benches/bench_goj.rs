//! E10 timing: the generalized outerjoin operator and the identity-15
//! reordering of Example 2's shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fro_algebra::{ops, Attr, Pred, Relation, Value};
use fro_core::goj_reorder::oj_of_join_to_goj;
use fro_core::optimizer::lower;
use fro_core::Catalog;
use fro_exec::{execute, ExecStats, Storage};
use std::hint::black_box;

fn setup(nx: usize, nyz: usize) -> (Storage, Catalog) {
    let mut storage = Storage::new();
    let x: Vec<Vec<Value>> = (0..nx).map(|i| vec![Value::Int(i as i64)]).collect();
    storage.insert("X", Relation::from_values("X", &["a"], x));
    let y: Vec<Vec<Value>> = (0..nyz)
        .map(|i| vec![Value::Int(i as i64), Value::Int(i as i64)])
        .collect();
    storage.insert("Y", Relation::from_values("Y", &["b", "b2"], y));
    let z: Vec<Vec<Value>> = (0..nyz).map(|i| vec![Value::Int(i as i64)]).collect();
    storage.insert("Z", Relation::from_values("Z", &["c"], z));
    for (t, a) in [("X", "X.a"), ("Y", "Y.b"), ("Z", "Z.c")] {
        storage.create_index(t, &[Attr::parse(a)]);
    }
    let catalog = Catalog::from_storage(&storage);
    (storage, catalog)
}

fn bench_goj_operator(c: &mut Criterion) {
    let mut group = c.benchmark_group("goj_operator");
    group.sample_size(10);
    for n in [100usize, 400] {
        let l = Relation::from_values(
            "L",
            &["k", "x"],
            (0..n)
                .map(|i| vec![Value::Int(i as i64), Value::Int((i / 2) as i64)])
                .collect(),
        );
        let r = Relation::from_values(
            "R",
            &["k"],
            (0..n / 2).map(|i| vec![Value::Int(i as i64)]).collect(),
        );
        let p = Pred::eq_attr("L.k", "R.k");
        let s = vec![Attr::parse("L.k")];
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| black_box(ops::goj(&l, &r, &p, &s).unwrap()));
        });
    }
    group.finish();
}

fn bench_identity15_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("goj_identity15");
    group.sample_size(10);
    let q = fro_algebra::Query::rel("X").outerjoin(
        fro_algebra::Query::rel("Y")
            .join(fro_algebra::Query::rel("Z"), Pred::eq_attr("Y.b2", "Z.c")),
        Pred::eq_attr("X.a", "Y.b"),
    );
    for (nx, nyz) in [(20usize, 2_000usize), (50, 4_000)] {
        let (storage, catalog) = setup(nx, nyz);
        let syn = lower(&q, &catalog).unwrap();
        let rw = oj_of_join_to_goj(&q, &catalog).expect("applies");
        let rw_plan = lower(&rw, &catalog).unwrap();
        let id = format!("{nx}x{nyz}");
        group.bench_with_input(BenchmarkId::new("syntactic", &id), &id, |b, _| {
            b.iter(|| {
                let mut stats = ExecStats::new();
                black_box(execute(&syn, &storage, &mut stats).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("goj_reordered", &id), &id, |b, _| {
            b.iter(|| {
                let mut stats = ExecStats::new();
                black_box(execute(&rw_plan, &storage, &mut stats).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_goj_operator, bench_identity15_reorder);
criterion_main!(benches);
