//! E1 timing: executing the two associations of Example 1 (the
//! counter-based shape lives in the `experiments` binary; this
//! measures wall-clock on the real engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fro_core::optimizer::lower;
use fro_core::{optimize, Policy};
use fro_exec::{execute, ExecStats};
use fro_testkit::workloads::example1;
use std::hint::black_box;

fn bench_example1(c: &mut Criterion) {
    let mut group = c.benchmark_group("example1");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let ex = example1(n);
        let syn_plan = lower(&ex.bad_query, &ex.catalog).unwrap();
        let opt = optimize(&ex.bad_query, &ex.catalog, Policy::Paper).unwrap();
        assert!(opt.reordered);

        group.bench_with_input(BenchmarkId::new("syntactic_R1-(R2→R3)", n), &n, |b, _| {
            b.iter(|| {
                let mut stats = ExecStats::new();
                black_box(execute(&syn_plan, &ex.storage, &mut stats).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("reordered_(R1-R2)→R3", n), &n, |b, _| {
            b.iter(|| {
                let mut stats = ExecStats::new();
                black_box(execute(&opt.plan, &ex.storage, &mut stats).unwrap())
            });
        });
    }
    group.finish();

    // Optimizer latency itself (the §6.1 "small extension" claim).
    let ex = example1(10_000);
    c.bench_function("example1/optimize_call", |b| {
        b.iter(|| black_box(optimize(&ex.bad_query, &ex.catalog, Policy::Paper).unwrap()));
    });
}

criterion_group!(benches, bench_example1);
criterion_main!(benches);
