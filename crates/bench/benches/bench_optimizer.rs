//! E7 timing: the reordering DP itself (optimizer latency as the plan
//! space grows), plus the full optimize-and-execute pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fro_core::optimizer::{dp_optimize, lower};
use fro_core::{optimize, Policy};
use fro_exec::{execute, ExecStats};
use fro_testkit::workloads::chain;
use std::hint::black_box;

fn bench_dp_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_optimize");
    for k in [4usize, 6, 8, 10, 12] {
        let (_, catalog, q) = chain(k, 16, 3);
        let g = fro_graph::graph_of(&q).unwrap();
        group.bench_with_input(BenchmarkId::new("chain", k), &k, |b, _| {
            b.iter(|| black_box(dp_optimize(&g, &catalog).unwrap()));
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_execute");
    group.sample_size(10);
    for k in [4usize, 5, 6] {
        let (storage, catalog, q) = chain(k, 64, 3);
        group.bench_with_input(BenchmarkId::new("reordered", k), &k, |b, _| {
            b.iter(|| {
                // Measure cold planning: without this, every iteration
                // after the first is a plan-cache hit.
                catalog.clear_plan_cache();
                let opt = optimize(&q, &catalog, Policy::Paper).unwrap();
                let mut stats = ExecStats::new();
                black_box(execute(&opt.plan, &storage, &mut stats).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("syntactic", k), &k, |b, _| {
            b.iter(|| {
                let plan = lower(&q, &catalog).unwrap();
                let mut stats = ExecStats::new();
                black_box(execute(&plan, &storage, &mut stats).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp_latency, bench_end_to_end);
criterion_main!(benches);
