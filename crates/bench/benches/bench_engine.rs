//! Engine micro-benchmarks: the physical join operators against each
//! other and against the reference evaluator (the substrate Example 1
//! runs on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fro_algebra::{ops, Attr, Pred, Relation, Value};
use fro_exec::{execute, ExecStats, JoinKind, PhysPlan, Storage};
use std::hint::black_box;

fn storage(n: usize) -> Storage {
    let mut s = Storage::new();
    let l: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i as i64), Value::Int((i % 97) as i64)])
        .collect();
    s.insert("L", Relation::from_values("L", &["k", "v"], l));
    let r: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int(i as i64)]).collect();
    s.insert("R", Relation::from_values("R", &["k"], r));
    s.create_index("R", &[Attr::parse("R.k")]);
    s
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("physical_joins");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let s = storage(n);
        let hash = PhysPlan::HashJoin {
            kind: JoinKind::LeftOuter,
            probe: Box::new(PhysPlan::scan("L")),
            build: Box::new(PhysPlan::scan("R")),
            probe_keys: vec![Attr::parse("L.k")],
            build_keys: vec![Attr::parse("R.k")],
            residual: Pred::always(),
        };
        let index = PhysPlan::IndexJoin {
            kind: JoinKind::LeftOuter,
            outer: Box::new(PhysPlan::scan("L")),
            inner: "R".into(),
            outer_keys: vec![Attr::parse("L.k")],
            inner_keys: vec![Attr::parse("R.k")],
            residual: Pred::always(),
        };
        group.bench_with_input(BenchmarkId::new("hash_left_outer", n), &n, |b, _| {
            b.iter(|| {
                let mut st = ExecStats::new();
                black_box(execute(&hash, &s, &mut st).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("index_left_outer", n), &n, |b, _| {
            b.iter(|| {
                let mut st = ExecStats::new();
                black_box(execute(&index, &s, &mut st).unwrap())
            });
        });
    }
    group.finish();

    // Reference nested-loop evaluator for context (quadratic).
    let mut group = c.benchmark_group("reference_ops");
    group.sample_size(10);
    for n in [200usize, 400] {
        let s = storage(n);
        let l = s
            .get_by_id(s.rel_id("L").unwrap())
            .unwrap()
            .relation()
            .clone();
        let r = s
            .get_by_id(s.rel_id("R").unwrap())
            .unwrap()
            .relation()
            .clone();
        let p = Pred::eq_attr("L.k", "R.k");
        group.bench_with_input(BenchmarkId::new("nl_outerjoin", n), &n, |b, _| {
            b.iter(|| black_box(ops::outerjoin(&l, &r, &p).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
