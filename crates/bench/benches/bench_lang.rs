//! E9 timing: the §5 language pipeline — lex/parse, translate (+
//! reorderability check), and end-to-end evaluation.
//!
//! Deliberately times the reference evaluation path (parse →
//! translate → plan → eval): it is the oracle the engine is checked
//! against, and its throughput bounds the property-test suite.

use criterion::{criterion_group, criterion_main, Criterion};
use fro_lang::model::{paper_world, EntityDb};
use fro_lang::{parse, plan_query, translate};
use std::hint::black_box;

/// The reference end-to-end pipeline previously offered by the removed
/// `fro_lang::run` wrapper.
fn run(src: &str, world: &EntityDb) -> Result<fro_algebra::Relation, fro_lang::LangError> {
    let t = translate(&parse(src)?, world)?;
    plan_query(&t)?
        .eval(&t.database)
        .map_err(|e| fro_lang::LangError::Eval(e.to_string()))
}

const PROSECUTOR: &str = "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit \
     Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' \
     and EMPLOYEE.Rank > 10";

fn bench_lang(c: &mut Criterion) {
    let world = paper_world();

    c.bench_function("lang/parse", |b| {
        b.iter(|| black_box(parse(PROSECUTOR).unwrap()));
    });

    let block = parse(PROSECUTOR).unwrap();
    c.bench_function("lang/translate_and_check", |b| {
        b.iter(|| black_box(translate(&block, &world).unwrap()));
    });

    c.bench_function("lang/run_end_to_end", |b| {
        b.iter(|| black_box(run(PROSECUTOR, &world).unwrap()));
    });

    // At scale: a synthetic world with hundreds of employees.
    let big = fro_testkit::workloads::synthetic_entity_world(50, 20, 7);
    let query = "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager \
                 Where EMPLOYEE.D# = DEPARTMENT.D# and EMPLOYEE.Rank > 10";
    let mut group = c.benchmark_group("lang_scale");
    group.sample_size(10);
    group.bench_function("translate_1000_emps", |b| {
        let block = parse(query).unwrap();
        b.iter(|| black_box(translate(&block, &big).unwrap()));
    });
    group.bench_function("run_1000_emps", |b| {
        b.iter(|| black_box(run(query, &big).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_lang);
criterion_main!(benches);
