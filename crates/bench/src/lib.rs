//! # fro-bench — the experiment harness
//!
//! One function per experiment in DESIGN.md's index (E1–E11 plus the
//! figure reproductions F1–F4). Each returns a printable report whose
//! rows mirror what the paper states or implies; EXPERIMENTS.md records
//! paper-vs-measured for each. The Criterion benches under `benches/`
//! time the same setups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod examples_1_to_4;
pub mod figures;
pub mod lang_goj_bts;
pub mod optimizer_benefit;
pub mod table;
pub mod theorem_scale;

pub use table::Table;

/// Run every experiment, returning `(id, report)` pairs in order.
/// Progress (with wall-clock per experiment) goes to stderr.
#[must_use]
pub fn run_all(quick: bool) -> Vec<(String, String)> {
    let timed = |id: &str, f: &dyn Fn() -> String| -> (String, String) {
        let t0 = std::time::Instant::now();
        let report = f();
        eprintln!("[{id} done in {:.2?}]", t0.elapsed());
        (id.to_owned(), report)
    };
    vec![
        timed("E1", &|| examples_1_to_4::e1_example1_cost(quick)),
        timed("E2", &|| examples_1_to_4::e2_crossover(quick)),
        timed("E3", &examples_1_to_4::e3_example2_nonassociativity),
        timed("E4", &examples_1_to_4::e4_example3_nonstrong),
        timed("E5", &|| theorem_scale::e5_theorem_validation(quick)),
        timed("E6", &|| theorem_scale::e6_identity_pass_rates(quick)),
        timed("E7", &|| optimizer_benefit::e7_reordering_benefit(quick)),
        timed("E8", &|| optimizer_benefit::e8_simplification(quick)),
        timed("E9", &|| lang_goj_bts::e9_language(quick)),
        timed("E10", &|| lang_goj_bts::e10_goj(quick)),
        timed("E11", &|| lang_goj_bts::e11_bt_machinery(quick)),
        timed("E12", &|| theorem_scale::e12_semijoin_conjecture(quick)),
        timed("F1", &figures::f1_graph_vs_trees),
        timed("F2", &figures::f2_nice_topology),
        timed("F3", &figures::f3_derivation),
        timed("F4", &figures::f4_basic_transforms),
    ]
}
