//! A tiny fixed-width table printer for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", c, width = widths[i]);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Convenience macro-ish helper: stringify heterogenous cells.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["n", "value"]);
        t.row(cells!(1, "abc"));
        t.row(cells!(1000, "d"));
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("value"));
        assert!(lines[2].trim_start().starts_with('1'));
        // All lines same width-ish alignment: last line ends with "d".
        assert!(lines[3].ends_with('d'));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(cells!(1));
    }
}
