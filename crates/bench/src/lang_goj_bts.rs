//! Experiments E9–E11: the §5 language, the §6.2 generalized
//! outerjoin, and the §3 basic-transform machinery.

use crate::cells;
use crate::table::Table;
use fro_algebra::{Attr, Pred, Query, Relation, Value};
use fro_core::goj_reorder::oj_of_join_to_goj;
use fro_core::optimizer::lower;
use fro_core::Catalog;
use fro_exec::{execute, ExecStats, Storage};
use fro_lang::model::paper_world;
use fro_lang::{parse, translate};
use fro_testkit::{random_implementing_tree, random_nice_graph, GraphSpec};
use fro_trees::{
    count_implementing_trees, enumerate_trees, find_bt_sequence, ClosureOptions, EnumLimit,
};
use std::fmt::Write as _;
use std::time::Instant;

/// E9 — the §5 language: every block freely reorderable (measured, not
/// asserted), plan-space sizes, and end-to-end timings.
#[must_use]
pub fn e9_language(quick: bool) -> String {
    let world = paper_world();
    let sources = [
        (
            "Queretaro (UnNest + join)",
            "Select All From EMPLOYEE*ChildName, DEPARTMENT \
          Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'",
        ),
        (
            "Zurich (Link chain)",
            "Select All From DEPARTMENT-->Manager-->Audit Where DEPARTMENT.Location = 'Zurich'",
        ),
        (
            "Prosecutor (both)",
            "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit \
          Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' \
          and EMPLOYEE.Rank > 10",
        ),
        (
            "Secretary + Manager",
            "Select All From DEPARTMENT-->Manager-->Secretary, EMPLOYEE \
          Where EMPLOYEE.D# = DEPARTMENT.D#",
        ),
    ];
    let mut t = Table::new(&[
        "query",
        "nodes",
        "oj edges",
        "reorderable",
        "trees",
        "rows",
        "all trees equal",
    ]);
    for (name, src) in sources {
        let block = parse(src).expect("parses");
        let tr = translate(&block, &world).expect("translates");
        let trees = enumerate_trees(&tr.graph, EnumLimit::default()).expect("connected");
        let results: Vec<Relation> = trees
            .iter()
            .map(|q| {
                let q = tr
                    .restrictions
                    .iter()
                    .fold(q.clone(), |acc, r| acc.restrict(r.clone()));
                q.eval(&tr.database).expect("eval")
            })
            .collect();
        let equal = fro_testkit::all_set_eq(&results);
        assert!(equal, "§5.3 violated for {name}");
        assert!(tr.analysis.is_freely_reorderable());
        let oj_edges = tr
            .graph
            .edges()
            .iter()
            .filter(|e| e.kind() == fro_graph::EdgeKind::OuterJoin)
            .count();
        t.row(cells!(
            name,
            tr.graph.n_nodes(),
            oj_edges,
            "yes",
            trees.len(),
            results[0].len(),
            "yes"
        ));
    }

    // Throughput: parse+translate+check per second on the prosecutor
    // query (the unit §6.1 says stays cheap).
    let iterations = if quick { 200 } else { 2_000 };
    let src = sources[2].1;
    let start = Instant::now();
    for _ in 0..iterations {
        let block = parse(src).expect("parses");
        let tr = translate(&block, &world).expect("translates");
        assert!(tr.analysis.is_freely_reorderable());
    }
    let per = start.elapsed().as_secs_f64() / f64::from(iterations) * 1e6;
    format!(
        "E9 — §5 language blocks: translation, reorderability, Theorem 1 end-to-end\n\n{}\n\
         parse+translate+check: {per:.0} µs/block ({iterations} iterations)\n",
        t.render()
    )
}

/// E10 — §6.2: the generalized outerjoin recovers the blocked order of
/// Example 2's shape; correctness counts plus measured work for both
/// orders as the preserved side grows.
#[must_use]
pub fn e10_goj(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E10 — §6.2 generalized outerjoin: reordering X → (Y − Z) via identity 15"
    );

    // Correctness sweep.
    let total = if quick { 200 } else { 1_000 };
    let mut pass = 0;
    for seed in 0..total {
        let (db, _) = goj_world(4, 3, 30, seed as u64);
        let q = example2_query();
        let rw = oj_of_join_to_goj(&q, &goj_catalog(1)).expect("applies");
        if q.eval(&db).unwrap().set_eq(&rw.eval(&db).unwrap()) {
            pass += 1;
        }
    }
    assert_eq!(pass, total);
    let _ = writeln!(
        out,
        "  identity-15 rewrite equivalence: {pass}/{total} random databases\n"
    );

    // Cost: when X is large and selective predicates make (Y − Z)
    // huge, evaluating (X → Y) first and GOJ-ing Z wins.
    let mut t = Table::new(&["|X|", "|Y|=|Z|", "syntactic work", "GOJ-reordered work"]);
    let sizes: &[(usize, usize)] = if quick {
        &[(20, 300)]
    } else {
        &[(20, 600), (50, 1_000), (100, 1_600)]
    };
    for &(nx, nyz) in sizes {
        let (storage, catalog) = goj_storage(nx, nyz);
        let q = example2_query();
        let syn_plan = lower(&q, &catalog).expect("lowerable");
        let mut syn = ExecStats::new();
        let a = execute(&syn_plan, &storage, &mut syn).expect("runs");

        let rw = oj_of_join_to_goj(&q, &catalog).expect("applies");
        let rw_plan = lower(&rw, &catalog).expect("lowerable");
        let mut dp = ExecStats::new();
        let b = execute(&rw_plan, &storage, &mut dp).expect("runs");
        assert!(a.set_eq(&b), "GOJ rewrite changed the result");

        t.row(cells!(nx, nyz, syn.work(), dp.work()));
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

fn example2_query() -> Query {
    Query::rel("X").outerjoin(
        Query::rel("Y").join(Query::rel("Z"), Pred::eq_attr("Y.b2", "Z.c")),
        Pred::eq_attr("X.a", "Y.b"),
    )
}

fn goj_catalog(rows: u64) -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(
        "X",
        std::sync::Arc::new(fro_algebra::Schema::of_relation("X", &["a"])),
        rows,
    );
    cat.add_table(
        "Y",
        std::sync::Arc::new(fro_algebra::Schema::of_relation("Y", &["b", "b2"])),
        rows,
    );
    cat.add_table(
        "Z",
        std::sync::Arc::new(fro_algebra::Schema::of_relation("Z", &["c"])),
        rows,
    );
    cat
}

fn goj_world(
    rows: usize,
    domain: i64,
    null_pct: u32,
    seed: u64,
) -> (fro_algebra::Database, Catalog) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let val = |rng: &mut StdRng| {
        if null_pct > 0 && rng.gen_ratio(null_pct, 100) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(0..domain))
        }
    };
    let mut db = fro_algebra::Database::new();
    db.insert(Relation::from_values(
        "X",
        &["a"],
        (0..rows).map(|_| vec![val(&mut rng)]).collect(),
    ));
    db.insert(Relation::from_values(
        "Y",
        &["b", "b2"],
        (0..rows)
            .map(|_| vec![val(&mut rng), val(&mut rng)])
            .collect(),
    ));
    db.insert(Relation::from_values(
        "Z",
        &["c"],
        (0..rows).map(|_| vec![val(&mut rng)]).collect(),
    ));
    (db, goj_catalog(rows as u64))
}

/// Storage where the `Y − Z` join explodes (its keys are skewed onto
/// a handful of values) while `X` matches only a few `Y` rows: the
/// shape where the forced `(Y − Z)`-first order materializes a huge
/// intermediate that the identity-15 order never builds.
fn goj_storage(nx: usize, nyz: usize) -> (Storage, Catalog) {
    let mut storage = Storage::new();
    let x: Vec<Vec<Value>> = (0..nx).map(|i| vec![Value::Int(i as i64)]).collect();
    storage.insert("X", Relation::from_values("X", &["a"], x));
    // Y.b is key-like (selective w.r.t. X); Y.b2 is constant, so the
    // Y–Z equality join degenerates toward a cross product.
    let y: Vec<Vec<Value>> = (0..nyz)
        .map(|i| vec![Value::Int(i as i64), Value::Int((i % 2) as i64)])
        .collect();
    storage.insert("Y", Relation::from_values("Y", &["b", "b2"], y));
    let z: Vec<Vec<Value>> = (0..nyz)
        .map(|i| vec![Value::Int((i % 2) as i64), Value::Int(i as i64)])
        .collect();
    storage.insert("Z", Relation::from_values("Z", &["c", "zid"], z));
    for (t, a) in [("X", "X.a"), ("Y", "Y.b"), ("Z", "Z.c")] {
        storage.create_index(t, &[Attr::parse(a)]);
    }
    let catalog = Catalog::from_storage(&storage);
    (storage, catalog)
}

/// E11 — the BT machinery: enumeration census and Lemma 3 BT-sequence
/// search, comparing the breadth-first search (optimal-length
/// sequences, exponential state space) against the paper's
/// constructive hoisting procedure (longer sequences, near-linear).
#[must_use]
pub fn e11_bt_machinery(quick: bool) -> String {
    let mut t = Table::new(&[
        "core",
        "oj nodes",
        "canonical trees",
        "enum time",
        "bfs len",
        "bfs time",
        "constructive len",
        "constructive time",
    ]);
    let shapes: &[(usize, usize)] = if quick {
        &[(3, 1), (4, 1), (4, 2)]
    } else {
        &[(3, 1), (4, 1), (4, 2), (5, 2), (6, 1), (8, 3)]
    };
    // BFS is exponential in tree count; skip it past this size.
    let bfs_cap = if quick { 4 } else { 5 };
    for &(core, oj) in shapes {
        let spec = GraphSpec {
            core,
            oj_nodes: oj,
            extra_core_edges: 0,
            strong: true,
        };
        let g = random_nice_graph(&spec, 5);
        let start = Instant::now();
        let n_trees = count_implementing_trees(&g, false);
        if n_trees < 2_000_000 {
            let _ = enumerate_trees(
                &g,
                EnumLimit {
                    max_trees: 2_000_000,
                },
            )
            .expect("connected");
        }
        let enum_time = start.elapsed();

        let searches = 6u64;
        let pairs: Vec<(Query, Query)> = (0..searches)
            .map(|s| {
                (
                    random_implementing_tree(&g, s).expect("connected"),
                    random_implementing_tree(&g, s + 100).expect("connected"),
                )
            })
            .collect();

        let (bfs_len, bfs_time) = if core + oj <= bfs_cap {
            let start = Instant::now();
            let mut total = 0usize;
            for (a, b) in &pairs {
                let seq = find_bt_sequence(a, b, ClosureOptions::default())
                    .expect("Lemma 3: always reachable");
                total += seq.len();
            }
            (
                format!("{:.1}", total as f64 / searches as f64),
                format!("{:.2?}", start.elapsed() / searches as u32),
            )
        } else {
            ("—".into(), "(skipped)".into())
        };

        let start = Instant::now();
        let mut total = 0usize;
        for (a, b) in &pairs {
            let seq = fro_trees::constructive_sequence(a, b)
                .expect("bridge cuts: constructive procedure succeeds");
            total += seq.len();
        }
        let cons_time = start.elapsed() / searches as u32;
        t.row(cells!(
            core,
            oj,
            n_trees,
            format!("{enum_time:.2?}"),
            bfs_len,
            bfs_time,
            format!("{:.1}", total as f64 / searches as f64),
            format!("{cons_time:.2?}")
        ));
    }
    format!(
        "E11 — basic transforms: implementing-tree census and Lemma 3 BT-sequence search\n\
         (BFS = shortest sequences, exponential; constructive = the paper's hoisting proof, fast)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_runs_and_asserts() {
        let r = e9_language(true);
        assert!(r.contains("Prosecutor"));
    }

    #[test]
    fn e10_goj_reorder_helps_when_x_small() {
        let r = e10_goj(true);
        assert!(r.contains("identity-15"));
    }

    #[test]
    fn e11_census() {
        let r = e11_bt_machinery(true);
        assert!(r.contains("canonical trees"));
    }
}
