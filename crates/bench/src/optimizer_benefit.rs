//! Experiments E7–E8: what free reordering buys an optimizer (§1.1,
//! §6.1) and what the §4 simplification rule buys on top.

use crate::cells;
use crate::table::Table;
use fro_algebra::{Attr, CmpOp, Pred, Query, Relation, Value};
use fro_core::optimizer::lower;
use fro_core::simplify::simplify;
use fro_core::{optimize, Catalog, Policy};
use fro_exec::{execute, ExecStats, Storage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// An Example 1-style chain of `k` relations: the relation at
/// `tiny_idx` is tiny and selective, the others large, all keys
/// indexed; the *syntactic* query is written in the worst order
/// (driving from the big end).
fn selective_chain(k: usize, big: usize, tiny_idx: usize, seed: u64) -> (Storage, Catalog, Query) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut storage = Storage::new();
    for i in 0..k {
        let name = format!("R{i}");
        let rows = if i == tiny_idx { 2 } else { big };
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|j| vec![Value::Int(j as i64), Value::Int(rng.gen_range(0..1000))])
            .collect();
        storage.insert(&name, Relation::from_values(&name, &["k", "v"], data));
        storage.create_index(&name, &[Attr::new(&name, "k")]);
    }
    let catalog = Catalog::from_storage(&storage);
    // Worst-order syntactic tree: right-deep ending at R0, so the
    // naive plan scans and joins the big relations first.
    let mut q = Query::rel(format!("R{}", k - 1));
    for i in (0..k - 1).rev() {
        q = Query::rel(format!("R{i}")).join(
            q,
            Pred::eq_attr(&format!("R{i}.k"), &format!("R{}.k", i + 1)),
        );
    }
    (storage, catalog, q)
}

/// Same shape, with the tail of the chain turned into outerjoins
/// (Fig. 2 topology: join core + outerjoin chain).
fn selective_chain_oj(
    k: usize,
    big: usize,
    tiny_idx: usize,
    seed: u64,
) -> (Storage, Catalog, Query) {
    let (storage, catalog, _) = selective_chain(k, big, tiny_idx, seed);
    let core = k / 2 + 1;
    // Build the bad association: outerjoins applied innermost.
    let mut tail = Query::rel(format!("R{}", core - 1));
    for i in core..k {
        tail = tail.outerjoin(
            Query::rel(format!("R{i}")),
            Pred::eq_attr(&format!("R{}.k", i - 1), &format!("R{i}.k")),
        );
    }
    let mut q = tail;
    for i in (0..core - 1).rev() {
        q = Query::rel(format!("R{i}")).join(
            q,
            Pred::eq_attr(&format!("R{i}.k"), &format!("R{}.k", i + 1)),
        );
    }
    (storage, catalog, q)
}

/// E7 — measured benefit of reordering: executed work of the user's
/// association vs the DP plan, across chain lengths and both pure-join
/// and join+outerjoin shapes.
#[must_use]
pub fn e7_reordering_benefit(quick: bool) -> String {
    let big = if quick { 2_000 } else { 20_000 };
    let mut t = Table::new(&[
        "shape",
        "k",
        "syntactic work",
        "reordered work",
        "speedup",
        "plans explored",
    ]);
    for k in [3usize, 4, 5, 6] {
        for (shape, (storage, catalog, q)) in [
            ("join chain", selective_chain(k, big, 0, 7)),
            ("join+oj chain", selective_chain_oj(k, big, 0, 7)),
        ] {
            let syn_plan = lower(&q, &catalog).expect("lowerable");
            let mut syn = ExecStats::new();
            let a = execute(&syn_plan, &storage, &mut syn).expect("runs");

            let opt = optimize(&q, &catalog, Policy::Paper).expect("optimizes");
            assert!(opt.reordered, "shape {shape} must be freely reorderable");
            let mut dp = ExecStats::new();
            let b = execute(&opt.plan, &storage, &mut dp).expect("runs");
            assert!(a.set_eq(&b), "reordering changed the result");

            let pairs =
                match fro_core::optimizer::dp_optimize(&fro_graph::graph_of(&q).unwrap(), &catalog)
                {
                    Ok(r) => r.pairs_examined,
                    Err(_) => 0,
                };
            let speedup = syn.work() as f64 / dp.work().max(1) as f64;
            t.row(cells!(
                shape,
                k,
                syn.work(),
                dp.work(),
                format!("{speedup:.1}x"),
                pairs
            ));
        }
    }
    format!(
        "E7 — optimizer benefit of free reordering (selective head, big tail; work = tuples touched)\n\n{}",
        t.render()
    )
}

/// E8 — the §4 simplification rule: how many outerjoins strong
/// restrictions convert to joins, and the executed-work effect of the
/// conversion (joins reorder more freely than outerjoins).
#[must_use]
pub fn e8_simplification(quick: bool) -> String {
    let big = if quick { 2_000 } else { 10_000 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E8 — §4 simplification: strong restrictions convert outerjoins to joins"
    );
    let mut t = Table::new(&[
        "k",
        "ojs before",
        "ojs after",
        "syntactic",
        "reordered (oj)",
        "simplified+reordered",
    ]);
    for k in [3usize, 4, 5] {
        // The tiny selective relation sits at the *null-supplied end*
        // of the outerjoin chain: outerjoin direction forbids driving
        // from it, so reordering alone cannot exploit it — the §4
        // conversion to regular joins is what unlocks the cheap plan.
        let (storage, catalog, q) = selective_chain_oj(k, big, k - 1, 11);
        // Restrict on the last (null-supplied) relation's key: strong.
        let last = format!("R{}.k", k - 1);
        let q = q.restrict(Pred::cmp_lit(&last, CmpOp::Ge, 0));

        fn count_ojs(q: &Query) -> usize {
            usize::from(matches!(q, Query::OuterJoin { .. }))
                + q.children().iter().map(|c| count_ojs(c)).sum::<usize>()
        }
        let before = count_ojs(&q);
        let (s, events) = simplify(&q);
        let after = count_ojs(&s);
        assert_eq!(before - after, events.len());
        assert_eq!(after, 0, "strong demand cascades down the whole chain");

        let strip = |q: &Query| match q {
            Query::Restrict { input, pred } => ((**input).clone(), pred.clone()),
            other => (other.clone(), Pred::always()),
        };
        let run_filtered = |inner: &Query, restriction: &Pred, reorder: bool| {
            let inner_plan = if reorder {
                optimize(inner, &catalog, Policy::Paper)
                    .expect("optimizes")
                    .plan
            } else {
                lower(inner, &catalog).expect("lowerable")
            };
            let plan = fro_exec::PhysPlan::Filter {
                input: Box::new(inner_plan),
                pred: restriction.clone(),
            };
            let mut stats = ExecStats::new();
            let rel = execute(&plan, &storage, &mut stats).expect("runs");
            (rel, stats)
        };

        let (qi, qr) = strip(&q);
        let (si, sr) = strip(&s);
        let (a, syn) = run_filtered(&qi, &qr, false);
        let (b, oj_dp) = run_filtered(&qi, &qr, true);
        let (c, simp) = run_filtered(&si, &sr, true);
        assert!(
            a.set_eq(&b) && a.set_eq(&c),
            "rewrites changed the result (k={k})"
        );

        t.row(cells!(
            k,
            before,
            after,
            syn.work(),
            oj_dp.work(),
            simp.work()
        ));
    }
    let _ = writeln!(out, "\n{}", t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_reordering_always_correct_and_helpful() {
        let r = e7_reordering_benefit(true);
        assert!(r.contains("join chain"));
    }

    #[test]
    fn e8_simplifies_something() {
        let r = e8_simplification(true);
        assert!(r.contains("ojs before"));
    }

    #[test]
    fn selective_chain_worst_order_is_expensive() {
        let (storage, catalog, q) = selective_chain(4, 500, 0, 3);
        let syn_plan = lower(&q, &catalog).unwrap();
        let mut syn = ExecStats::new();
        execute(&syn_plan, &storage, &mut syn).unwrap();
        let opt = optimize(&q, &catalog, Policy::Paper).unwrap();
        let mut dp = ExecStats::new();
        execute(&opt.plan, &storage, &mut dp).unwrap();
        assert!(dp.work() <= syn.work());
    }
}
