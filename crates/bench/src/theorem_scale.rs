//! Experiments E5–E6: Theorem 1 at scale and the identity suite.

use crate::cells;
use crate::table::Table;
use fro_algebra::identities as id;
use fro_algebra::{Pred, Relation, Value};
use fro_graph::QueryGraph;
use fro_testkit::{db_for_graph, random_nice_graph, GraphSpec};
use fro_trees::{count_implementing_trees, enumerate_trees, EnumLimit};
use std::fmt::Write as _;

fn key_eq(a: usize, b: usize) -> Pred {
    Pred::eq_attr(&format!("R{a}.k"), &format!("R{b}.k"))
}

fn chain_join(n: usize) -> QueryGraph {
    let mut g = QueryGraph::new((0..n).map(|i| format!("R{i}")).collect());
    for i in 0..n - 1 {
        g.add_join_edge(i, i + 1, key_eq(i, i + 1)).unwrap();
    }
    g
}

fn chain_oj(n: usize) -> QueryGraph {
    let mut g = QueryGraph::new((0..n).map(|i| format!("R{i}")).collect());
    for i in 0..n - 1 {
        g.add_outerjoin_edge(i, i + 1, key_eq(i, i + 1)).unwrap();
    }
    g
}

fn star_join(n: usize) -> QueryGraph {
    let mut g = QueryGraph::new((0..n).map(|i| format!("R{i}")).collect());
    for i in 1..n {
        g.add_join_edge(0, i, key_eq(0, i)).unwrap();
    }
    g
}

fn fig2_like(n: usize) -> QueryGraph {
    // Half the nodes form a join chain core; the rest hang as an
    // outerjoin chain off the last core node.
    let core = (n / 2).max(1);
    let mut g = QueryGraph::new((0..n).map(|i| format!("R{i}")).collect());
    for i in 0..core - 1 {
        g.add_join_edge(i, i + 1, key_eq(i, i + 1)).unwrap();
    }
    for i in core..n {
        g.add_outerjoin_edge(i - 1, i, key_eq(i - 1, i)).unwrap();
    }
    g
}

/// E5 — Theorem 1 validation and plan-space census: implementing-tree
/// counts per topology and size, plus exhaustive eval-equality checks
/// on random databases for the sizes where enumeration is feasible.
#[must_use]
pub fn e5_theorem_validation(quick: bool) -> String {
    let max_n = if quick { 8 } else { 10 };
    let verify_to = 6;
    let mut t = Table::new(&[
        "topology",
        "n",
        "canonical trees",
        "ordered trees",
        "verified equal",
    ]);
    type MakeGraph = fn(usize) -> QueryGraph;
    let topologies: [(&str, MakeGraph); 4] = [
        ("join chain", chain_join),
        ("oj chain", chain_oj),
        ("join star", star_join),
        ("core+oj tree", fig2_like),
    ];
    for (name, make) in topologies {
        for n in [3usize, 4, 5, 6, max_n] {
            let g = make(n);
            let canonical = count_implementing_trees(&g, false);
            let ordered = count_implementing_trees(&g, true);
            let verified = if n <= verify_to {
                let trees = enumerate_trees(&g, EnumLimit::default()).expect("connected");
                let mut ok = true;
                for dseed in 0..10u64 {
                    let db = db_for_graph(&g, 4, 3, 0.2, dseed);
                    let results: Vec<_> =
                        trees.iter().map(|q| q.eval(&db).expect("eval")).collect();
                    ok &= fro_testkit::all_set_eq(&results);
                }
                assert!(ok, "Theorem 1 violated on {name} n={n}");
                format!("yes ({} trees x 10 dbs)", trees.len())
            } else {
                "(count only)".to_owned()
            };
            t.row(cells!(name, n, canonical, ordered, verified));
        }
    }

    // Random nice graphs too.
    let mut extra = String::new();
    let mut verified = 0;
    for gseed in 0..(if quick { 20 } else { 60 }) {
        let spec = GraphSpec {
            core: 1 + (gseed as usize % 4),
            oj_nodes: gseed as usize % 3,
            extra_core_edges: gseed as usize % 2,
            strong: true,
        };
        let g = random_nice_graph(&spec, gseed);
        let trees = enumerate_trees(&g, EnumLimit { max_trees: 20_000 }).expect("connected");
        let db = db_for_graph(&g, 5, 3, 0.2, gseed);
        let results: Vec<_> = trees.iter().map(|q| q.eval(&db).expect("eval")).collect();
        assert!(
            fro_testkit::all_set_eq(&results),
            "random nice graph violated Theorem 1"
        );
        verified += 1;
    }
    let _ = writeln!(
        extra,
        "\nrandom nice graphs verified (all trees equal on random dbs): {verified}/{verified}"
    );
    format!(
        "E5 — Theorem 1 at scale (Fig. 2 class): every implementing tree evaluates equal\n\n{}{extra}",
        t.render()
    )
}

/// E6 — identity pass rates over random databases, with the ablation
/// showing strongness is load-bearing for identities 8, 9 and 12.
#[must_use]
pub fn e6_identity_pass_rates(quick: bool) -> String {
    let total = if quick { 200 } else { 1_000 };
    let pxy = Pred::eq_attr("X.a", "Y.b");
    let pyx = Pred::eq_attr("Y.b", "X.a");
    let pyz = Pred::eq_attr("Y.b2", "Z.c");
    let weak_pyz = Pred::eq_attr("Y.b2", "Z.c").or(Pred::is_null("Y.b2"));

    let mut t = Table::new(&["identity", "predicate", "pass", "of"]);
    type Check = Box<dyn Fn(&Relation, &Relation, &Relation) -> bool>;
    let checks: Vec<(&str, &str, Check)> = vec![
        ("1", "strong", {
            let (pxy, pyz) = (pxy.clone(), pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_1(x, y, z, &pxy, None, &pyz).unwrap();
                l.set_eq(&r)
            })
        }),
        ("2", "strong", {
            let (pxy, pyz) = (pxy.clone(), pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_2(x, y, z, &pxy, &pyz).unwrap();
                l.set_eq(&r)
            })
        }),
        ("3", "strong", {
            let (pxy, pyz) = (pxy.clone(), pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_3(x, y, z, &pxy, &pyz).unwrap();
                l.set_eq(&r)
            })
        }),
        ("7", "strong", {
            let (pxy, pyz) = (pxy.clone(), pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_7(x, y, z, &pxy, &pyz).unwrap();
                l.set_eq(&r)
            })
        }),
        ("8", "strong", {
            let (pxy, pyz) = (pxy.clone(), pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_8(x, y, z, &pxy, &pyz).unwrap();
                l.set_eq(&r)
            })
        }),
        ("8", "weak (ablation)", {
            let (pxy, weak) = (pxy.clone(), weak_pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_8(x, y, z, &pxy, &weak).unwrap();
                l.set_eq(&r)
            })
        }),
        ("9", "strong", {
            let (pxy, pyz) = (pxy.clone(), pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_9(x, y, z, &pxy, &pyz).unwrap();
                l.set_eq(&r)
            })
        }),
        ("10", "strong", {
            let pxy = pxy.clone();
            Box::new(move |x, y, _z| {
                let (l, r) = id::identity_10(x, y, &pxy).unwrap();
                l.set_eq(&r)
            })
        }),
        ("11", "strong", {
            let (pxy, pyz) = (pxy.clone(), pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_11(x, y, z, &pxy, &pyz).unwrap();
                l.set_eq(&r)
            })
        }),
        ("12", "strong", {
            let (pxy, pyz) = (pxy.clone(), pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_12(x, y, z, &pxy, &pyz).unwrap();
                l.set_eq(&r)
            })
        }),
        ("12", "weak (ablation)", {
            let (pxy, weak) = (pxy.clone(), weak_pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_12(x, y, z, &pxy, &weak).unwrap();
                l.set_eq(&r)
            })
        }),
        ("13", "strong", {
            let (pyx, pyz) = (pyx.clone(), pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_13(x, y, z, &pyx, &pyz).unwrap();
                l.set_eq(&r)
            })
        }),
        ("15", "strong", {
            let (pxy, pyz) = (pxy.clone(), pyz.clone());
            Box::new(move |x, y, z| {
                let (l, r) = id::identity_15(x, y, z, &pxy, &pyz).unwrap();
                l.set_eq(&r)
            })
        }),
        ("16", "strong", {
            let (pxy, pyz) = (pxy.clone(), pyz.clone());
            Box::new(move |x, y, z| {
                let s = vec![
                    fro_algebra::Attr::parse("Y.b"),
                    fro_algebra::Attr::parse("Y.b2"),
                ];
                let (l, r) = id::identity_16(x, y, z, &pxy, &pyz, &s).unwrap();
                l.set_eq(&r)
            })
        }),
    ];

    for (name, pred_kind, check) in checks {
        let mut pass = 0;
        for seed in 0..total {
            let (x, y, z) = xyz(4, 3, 35, seed);
            if check(&x, &y, &z) {
                pass += 1;
            }
        }
        if pred_kind == "strong" {
            assert_eq!(
                pass, total,
                "identity {name} failed under strong predicates"
            );
        } else {
            assert!(pass < total, "ablation for identity {name} never failed");
        }
        t.row(cells!(name, pred_kind, pass, total));
    }
    format!(
        "E6 — §2/§6.2 identity verification on random databases (35% nulls, domain 3)\n\
         strong-predicate rows must pass 100%; weak ablations must not\n\n{}",
        t.render()
    )
}

fn xyz(rows: usize, domain: i64, null_pct: u32, seed: u64) -> (Relation, Relation, Relation) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let val = |rng: &mut StdRng| {
        if null_pct > 0 && rng.gen_ratio(null_pct, 100) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(0..domain))
        }
    };
    let x = Relation::from_values(
        "X",
        &["a"],
        (0..rows).map(|_| vec![val(&mut rng)]).collect(),
    );
    let y = Relation::from_values(
        "Y",
        &["b", "b2"],
        (0..rows)
            .map(|_| vec![val(&mut rng), val(&mut rng)])
            .collect(),
    );
    let z = Relation::from_values(
        "Z",
        &["c"],
        (0..rows).map(|_| vec![val(&mut rng)]).collect(),
    );
    (x, y, z)
}

/// E12 — the §6.3 future-work conjecture: join/semijoin graphs.
///
/// The paper conjectures that "semijoin edges in series appear to be an
/// additional forbidden subgraph". This experiment runs the exhaustive
/// three-node study plus a random four-node sample and reports the
/// sharp empirical form: the forbidden patterns collapse the plan space
/// (≤ 1 valid implementing tree) rather than producing disagreeing
/// trees, and the nice class is sound.
#[must_use]
pub fn e12_semijoin_conjecture(quick: bool) -> String {
    use fro_algebra::{Database, Relation};
    use fro_trees::semijoin::{
        all_three_node_graphs, enumerate_sj_trees, is_sj_nice, run_sj_study, SjGraph,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // Exhaustive tiny databases (subsets of {0,1} per relation).
    fn tiny_dbs(n_rels: usize) -> Vec<Database> {
        let values = [Value::Int(0), Value::Int(1)];
        let mut dbs = Vec::new();
        for mask in 0..(4u32.pow(n_rels as u32)) {
            let mut db = Database::new();
            let mut m = mask;
            for r in 0..n_rels {
                let sub = m % 4;
                m /= 4;
                let rows: Vec<Vec<Value>> = (0..2)
                    .filter(|i| sub & (1 << i) != 0)
                    .map(|i| vec![values[i as usize].clone()])
                    .collect();
                let name = format!("R{r}");
                db.insert_named(name.clone(), Relation::from_values(&name, &["k"], rows));
            }
            dbs.push(db);
        }
        dbs
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "E12 — §6.3 conjecture: join/semijoin graphs (\"semijoin edges in series\nare an additional forbidden subgraph\")"
    );

    let graphs = all_three_node_graphs();
    let study = run_sj_study(&graphs, &tiny_dbs(3));
    let mut t = Table::new(&[
        "universe",
        "graphs",
        "reorderable",
        "disagree",
        "1 tree",
        "0 trees",
        "non-nice multi-tree",
        "nice-but-wrong",
    ]);
    t.row(cells!(
        "3 nodes (exhaustive)",
        graphs.len(),
        study.reorderable,
        study.not_reorderable,
        study.single_tree,
        study.no_tree,
        study.non_nice_multi_tree,
        study.false_accepts
    ));

    // Random 4-node sample.
    let samples = if quick { 40 } else { 400 };
    let mut rng = StdRng::seed_from_u64(99);
    let mut four: Vec<SjGraph> = Vec::new();
    while four.len() < samples {
        let mut g = SjGraph::new((0..4).map(|i| format!("R{i}")).collect());
        for a in 0..4usize {
            for b in a + 1..4 {
                match rng.gen_range(0..5) {
                    1 => g.add_join(a, b, Pred::eq_attr(&format!("R{a}.k"), &format!("R{b}.k"))),
                    2 => g.add_semi(a, b, Pred::eq_attr(&format!("R{a}.k"), &format!("R{b}.k"))),
                    3 => g.add_semi(b, a, Pred::eq_attr(&format!("R{b}.k"), &format!("R{a}.k"))),
                    _ => {}
                }
            }
        }
        if g.connected_in(fro_graph::NodeSet::full(4)) {
            four.push(g);
        }
    }
    let study4 = run_sj_study(&four, &tiny_dbs(4));
    t.row(cells!(
        format!("4 nodes ({samples} random)"),
        four.len(),
        study4.reorderable,
        study4.not_reorderable,
        study4.single_tree,
        study4.no_tree,
        study4.non_nice_multi_tree,
        study4.false_accepts
    ));
    let _ = writeln!(out, "\n{}", t.render());
    assert_eq!(study.false_accepts, 0);
    assert_eq!(study4.false_accepts, 0);

    // A concrete collapsed example.
    let mut g = SjGraph::new(vec!["A".into(), "B".into(), "C".into()]);
    g.add_semi(0, 1, Pred::eq_attr("A.k", "B.k"));
    g.add_semi(1, 2, Pred::eq_attr("B.k", "C.k"));
    let trees = enumerate_sj_trees(&g);
    let _ = writeln!(
        out,
        "semijoins in series (A ⋉→ B ⋉→ C): nice = {}, implementing trees = {}",
        is_sj_nice(&g),
        trees.len()
    );
    for (q, _) in &trees {
        let _ = writeln!(out, "  {}", q.shape());
    }
    let _ = writeln!(
        out,
        "findings: (1) on 3 nodes the forbidden patterns collapse the plan space\n\
         to <=1 valid tree; (2) on 4 nodes some non-nice graphs keep multiple\n\
         trees, but every well-typed pair still agreed — semijoins never pad, so\n\
         no Example 2-style divergence is expressible. \"Fewer basic transforms\n\
         preserve the result\" manifests as fewer *valid* associations (the\n\
         consumed relation's attributes are gone), and the conjectured forbidden\n\
         class is sound but conservative on these universes."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_match_catalan_for_join_chains() {
        assert_eq!(count_implementing_trees(&chain_join(5), false), 14);
        assert_eq!(count_implementing_trees(&chain_oj(4), false), 5);
    }

    #[test]
    fn e5_quick_runs() {
        let r = e5_theorem_validation(true);
        assert!(r.contains("join chain"));
        assert!(r.contains("oj chain"));
    }

    #[test]
    fn e6_quick_runs() {
        let r = e6_identity_pass_rates(true);
        assert!(r.contains("ablation"));
    }
}
