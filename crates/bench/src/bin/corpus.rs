//! The EXPLAIN regression corpus: every deterministic testkit workload
//! optimized (both DP and greedy), rendered to a stable text form, and
//! compared against the files under `corpus/plans/`.
//!
//! Each corpus file captures everything a plan regression would move:
//! the query-graph signature, the estimated cost/cardinality, the
//! EXPLAIN tree, and the hex of the id-only wire encoding — so a cost
//! model tweak, a lowering change, or a wire-format change all show up
//! as a text diff in review instead of sliding in silently.
//!
//! ```text
//! corpus [--out DIR] [--check] [--perturb]
//! ```
//!
//! * default: (re)write the corpus files under `--out`
//!   (`corpus/plans/`);
//! * `--check`: write nothing; regenerate in memory and fail (exit 1)
//!   with a diff excerpt if any file disagrees — the CI gate;
//! * `--perturb`: deterministically perturb every catalog's statistics
//!   first. `--check --perturb` must fail on a healthy corpus; CI runs
//!   it to prove the gate actually detects cost-model drift.

use fro_core::optimizer::{graph_signature, greedy_optimize, optimize};
use fro_core::{analyze, Catalog, Policy};
use fro_exec::PhysPlan;
use fro_testkit::corpus_suite;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Double every table's row count (wiping its distinct counts): a
/// deterministic statistics shift that moves every cost estimate.
fn perturb(catalog: &mut Catalog, storage: &fro_exec::Storage) {
    for (name, table) in storage.iter() {
        let rel = table.relation();
        let rows = rel.len() as u64 * 2 + 17;
        catalog.add_table(name.to_string(), rel.schema().clone(), rows);
    }
}

fn render(
    case_name: &str,
    algo: &str,
    sig: u64,
    cost: f64,
    rows: f64,
    plan: &PhysPlan,
    catalog: &Catalog,
) -> String {
    let wire = fro_wire::encode_plan(plan, catalog.interner())
        .unwrap_or_else(|e| panic!("corpus plan for {case_name}/{algo} must encode: {e}"));
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# fro EXPLAIN corpus. Regenerate with scripts/explain_corpus.sh; do not edit by hand."
    );
    let _ = writeln!(s, "case: {case_name}");
    let _ = writeln!(s, "algo: {algo}");
    let _ = writeln!(s, "policy: Paper");
    let _ = writeln!(s, "signature: {sig:016x}");
    let _ = writeln!(s, "est_cost: {cost:.3}");
    let _ = writeln!(s, "est_rows: {rows:.3}");
    let _ = writeln!(s, "plan:");
    for line in plan.explain().lines() {
        let _ = writeln!(s, "  {line}");
    }
    let _ = writeln!(s, "wire: {}", hex(&wire));
    s
}

/// First point of divergence, with a couple of context lines from each
/// side — enough to read the regression off the CI log.
fn diff_excerpt(expected: &str, actual: &str) -> String {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let n = e.len().max(a.len());
    for i in 0..n {
        if e.get(i) != a.get(i) {
            let mut s = String::new();
            let _ = writeln!(s, "  first difference at line {}:", i + 1);
            for j in i.saturating_sub(1)..(i + 3).min(n) {
                let _ = writeln!(s, "    - {}", e.get(j).unwrap_or(&"<eof>"));
                let _ = writeln!(s, "    + {}", a.get(j).unwrap_or(&"<eof>"));
            }
            return s;
        }
    }
    "  contents differ only in trailing whitespace\n".to_owned()
}

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from("corpus/plans");
    let mut check = false;
    let mut do_perturb = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a directory")),
            "--check" => check = true,
            "--perturb" => do_perturb = true,
            other => {
                eprintln!("unknown flag {other}; usage: corpus [--out DIR] [--check] [--perturb]");
                return ExitCode::FAILURE;
            }
        }
    }
    if !check {
        std::fs::create_dir_all(&out_dir).expect("create corpus dir");
    }

    let mut failures = 0usize;
    let mut written = 0usize;
    for case in corpus_suite() {
        let mut catalog = case.catalog;
        if do_perturb {
            perturb(&mut catalog, &case.storage);
        }
        let graph = analyze(&case.query, Policy::Paper)
            .graph
            .unwrap_or_else(|| panic!("corpus workload {} must be reorderable", case.name));
        let (sig, _) = graph_signature(&graph);

        let dp = optimize(&case.query, &catalog, Policy::Paper)
            .unwrap_or_else(|e| panic!("dp optimize {} failed: {e}", case.name));
        let greedy = greedy_optimize(&graph, &catalog)
            .unwrap_or_else(|e| panic!("greedy optimize {} failed: {e}", case.name));

        let outputs = [
            (
                "dp",
                render(
                    case.name,
                    "dp",
                    sig.as_u64(),
                    dp.est_cost,
                    dp.est_rows,
                    &dp.plan,
                    &catalog,
                ),
            ),
            (
                "greedy",
                render(
                    case.name,
                    "greedy",
                    sig.as_u64(),
                    greedy.cost,
                    greedy.rows,
                    &greedy.plan,
                    &catalog,
                ),
            ),
        ];
        for (algo, content) in outputs {
            let path = out_dir.join(format!("{}.{algo}.txt", case.name));
            if check {
                match std::fs::read_to_string(&path) {
                    Ok(on_disk) if on_disk == content => {}
                    Ok(on_disk) => {
                        eprintln!("corpus drift in {}:", path.display());
                        eprint!("{}", diff_excerpt(&on_disk, &content));
                        failures += 1;
                    }
                    Err(e) => {
                        eprintln!(
                            "corpus file {} unreadable ({e}); regenerate with \
                             scripts/explain_corpus.sh",
                            path.display()
                        );
                        failures += 1;
                    }
                }
            } else {
                std::fs::write(&path, &content).expect("write corpus file");
                written += 1;
            }
        }
    }

    if check {
        if failures > 0 {
            eprintln!(
                "{failures} corpus file(s) out of date. If the plan change is intentional, \
                 regenerate with scripts/explain_corpus.sh and commit the diff."
            );
            return ExitCode::FAILURE;
        }
        println!("corpus check: all files match");
    } else {
        println!("corpus: wrote {written} files to {}", out_dir.display());
    }
    ExitCode::SUCCESS
}
