//! Thread-scaling benchmark for the morsel-driven hash-join executor.
//!
//! Builds a ≥100k-row probe-side hash join, runs it at 1/2/4/8 worker
//! threads, and writes `BENCH_engine.json` at the repository root with
//! probe-rows-per-second for each thread count. The machine's
//! `available_parallelism` is recorded alongside: on a single-core
//! container the wall-clock curve is flat by construction, and the
//! field lets a reader tell that apart from an engine that fails to
//! scale.

use fro_algebra::{Attr, Pred, Relation, Value};
use fro_exec::{execute_with, ExecConfig, ExecStats, JoinKind, PhysPlan, Storage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

const PROBE_ROWS: usize = 200_000;
const BUILD_ROWS: usize = 20_000;
const KEY_DOMAIN: i64 = 50_000;
const REPS: usize = 3;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn build_storage(seed: u64) -> Storage {
    let mut rng = StdRng::seed_from_u64(seed);
    let probe_rows: Vec<Vec<Value>> = (0..PROBE_ROWS)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..KEY_DOMAIN)),
            ]
        })
        .collect();
    let build_rows: Vec<Vec<Value>> = (0..BUILD_ROWS)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..KEY_DOMAIN)),
            ]
        })
        .collect();
    let mut s = Storage::new();
    s.insert("P", Relation::from_values("P", &["id", "k"], probe_rows));
    s.insert("B", Relation::from_values("B", &["id", "k"], build_rows));
    s
}

fn main() {
    let storage = build_storage(42);
    let plan = PhysPlan::HashJoin {
        kind: JoinKind::LeftOuter,
        probe: Box::new(PhysPlan::scan("P")),
        build: Box::new(PhysPlan::scan("B")),
        probe_keys: vec![Attr::parse("P.k")],
        build_keys: vec![Attr::parse("B.k")],
        residual: Pred::always(),
    };

    let mut baseline_rows = None;
    let mut results = Vec::new();
    for threads in THREAD_COUNTS {
        let cfg = ExecConfig::with_threads(threads);
        // Warm-up run (also determinism check against the 1-thread run).
        let mut st = ExecStats::new();
        let out = execute_with(&plan, &storage, &mut st, &cfg).expect("join runs");
        match &baseline_rows {
            None => baseline_rows = Some(out.rows().to_vec()),
            Some(rows) => assert_eq!(
                out.rows(),
                &rows[..],
                "parallel output diverged at {threads} threads"
            ),
        }
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let mut st = ExecStats::new();
            let t = Instant::now();
            let out = execute_with(&plan, &storage, &mut st, &cfg).expect("join runs");
            let secs = t.elapsed().as_secs_f64();
            std::hint::black_box(out.len());
            best = best.min(secs);
        }
        let rows_per_sec = PROBE_ROWS as f64 / best;
        println!("threads={threads:>2}  best={best:.4}s  probe rows/sec={rows_per_sec:.0}");
        results.push((threads, best, rows_per_sec));
    }

    let output_rows = baseline_rows.map_or(0, |r| r.len());
    let base = results[0].2;
    let speedup_at = |t: usize| {
        results
            .iter()
            .find(|&&(threads, _, _)| threads == t)
            .map_or(0.0, |&(_, _, rps)| rps / base)
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"hash_join_thread_scaling\",");
    let _ = writeln!(
        json,
        "  \"join\": \"left-outer hash join, zero-copy build side\","
    );
    let _ = writeln!(json, "  \"probe_rows\": {PROBE_ROWS},");
    let _ = writeln!(json, "  \"build_rows\": {BUILD_ROWS},");
    let _ = writeln!(json, "  \"output_rows\": {output_rows},");
    let _ = writeln!(
        json,
        "  \"morsel_rows\": {},",
        ExecConfig::default().morsel_rows
    );
    let _ = writeln!(
        json,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, (threads, secs, rps)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"threads\": {threads}, \"best_secs\": {secs:.6}, \"probe_rows_per_sec\": {rps:.0}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_2_threads\": {:.3},", speedup_at(2));
    let _ = writeln!(json, "  \"speedup_4_threads\": {:.3}", speedup_at(4));
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
