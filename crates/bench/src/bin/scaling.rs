//! Thread- and partition-scaling benchmark for the radix-partitioned
//! morsel-driven hash-join executor, plus the pipelined-vs-materializing
//! engine comparison on a deep left-outerjoin chain.
//!
//! Builds a ≥100k-row probe-side hash join and sweeps worker threads
//! (1/2/4/8) × radix partitions (1/4/16/64), writing
//! `BENCH_engine.json` at the repository root with build-phase and
//! probe-phase wall-clock reported separately for every cell. Output
//! rows are asserted bit-identical across the whole sweep — the
//! partitioned engine's core contract. The machine's
//! `available_parallelism` is recorded alongside: on a single-core
//! container the wall-clock curve is flat by construction, and the
//! field lets a reader tell that apart from an engine that fails to
//! scale.
//!
//! The deep-chain section joins eight 100k-row relations
//! `C0 ⟕ C1 ⟕ … ⟕ C7` at one thread — per ROADMAP the honest setting
//! on a 1-CPU container — through both executors. The materializing
//! engine pays one widening intermediate per join edge; the pipelined
//! engine fuses the whole chain (all build sides are base tables) into
//! a single pass with `rows_materialized = 0`, which is asserted, as
//! is bit-identical output and work counters between the modes.
//!
//! A third section microbenchmarks the columnar kernels at one thread:
//! `ColumnSet::eval_pred` vs a per-tuple `BoundPred::eval` loop, and
//! `ColumnSet::hash_key_at` vs the row-at-a-time key hash the engines
//! use without a column mirror, both over the 200k-row probe relation,
//! plus the zone-skip count for an out-of-domain equality literal.
//! Kernel outputs are asserted identical to the row path before
//! timing.

use fro_algebra::ops::BoundPred;
use fro_algebra::{Attr, CmpOp, ColumnSet, Pred, Relation, Tuple, Value};
use fro_exec::engine::hash_join_timed;
use fro_exec::{execute_with, ExecConfig, ExecStats, JoinKind, PhysPlan, Storage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::time::Instant;

const PROBE_ROWS: usize = 200_000;
const BUILD_ROWS: usize = 20_000;
const KEY_DOMAIN: i64 = 50_000;
const REPS: usize = 3;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PARTITION_COUNTS: [usize; 4] = [1, 4, 16, 64];

const CHAIN_RELS: usize = 8;
const CHAIN_ROWS: usize = 20_000;
const CHAIN_PAYLOAD_COLS: usize = 15;

/// `P.id < FILTER_ID_LIT` — 1% selectivity on the clustered id column,
/// where the zone metadata refutes all but the first two 1024-row
/// zones and the columnar kernel answers mostly from min/max. This is
/// the headline filter metric: scan-dominated, zone-prunable, the
/// regime the columnar layout is built for.
const FILTER_ID_LIT: i64 = 2_000;
/// `P.k < FILTER_LIT` — ~1% selectivity on the *uniformly random* key
/// column, where every zone straddles the literal and nothing prunes.
/// Reported separately as the `_mixed` metrics: it isolates the raw
/// vectorized-loop advantage with zone skipping contributing nothing.
const FILTER_LIT: i64 = 500;
const KERNEL_REPS: usize = 5;

/// Deep left-outerjoin chain: eight relations of `CHAIN_ROWS` rows,
/// each with *distinct* keys drawn from a domain 1.5× the row count —
/// so every link matches at most once (no fanout; the output stays at
/// `CHAIN_ROWS` rows while the tuples widen), and roughly a third of
/// each probe side null-pads. Tuples carry `CHAIN_PAYLOAD_COLS`
/// payload columns beside the key: the probe work is identical in both
/// modes (the tables are small enough to stay cache-resident), so the
/// wall-clock difference isolates what the issue targets — the
/// widening intermediate the materializing engine allocates per join
/// edge and the pipelined engine never does.
fn chain_storage(seed: u64) -> Storage {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain: Vec<i64> = (0..(CHAIN_ROWS as i64) * 3 / 2).collect();
    let mut schema: Vec<String> = vec!["k".into()];
    schema.extend((0..CHAIN_PAYLOAD_COLS).map(|c| format!("v{c}")));
    let schema_refs: Vec<&str> = schema.iter().map(String::as_str).collect();
    let mut storage = Storage::new();
    for i in 0..CHAIN_RELS {
        let name = format!("C{i}");
        let mut keys = domain.clone();
        // Fisher–Yates (the vendored rand has no `seq` module).
        for j in (1..keys.len()).rev() {
            keys.swap(j, rng.gen_range(0..=j));
        }
        let data: Vec<Vec<Value>> = keys[..CHAIN_ROWS]
            .iter()
            .map(|&k| {
                let mut row = Vec::with_capacity(1 + CHAIN_PAYLOAD_COLS);
                row.push(Value::Int(k));
                row.extend((0..CHAIN_PAYLOAD_COLS).map(|_| Value::Int(rng.gen_range(0..1000))));
                row
            })
            .collect();
        storage.insert(&name, Relation::from_values(&name, &schema_refs, data));
    }
    storage
}

/// Left-deep hash-join plan over the chain with a narrow root
/// projection: the probe spine descends through every join to
/// `Scan C0`, every build side is a bare scan, and the projection
/// fuses as the pipeline sink — the shape the pipeline compiler fuses
/// completely. The materializing engine allocates the full widening
/// intermediate at every join edge before projecting it away; the
/// pipelined engine never allocates a wide tuple at all.
fn chain_plan() -> PhysPlan {
    let mut plan = PhysPlan::scan("C0");
    for i in 1..CHAIN_RELS {
        plan = PhysPlan::HashJoin {
            kind: JoinKind::LeftOuter,
            probe: Box::new(plan),
            build: Box::new(PhysPlan::scan(format!("C{i}"))),
            probe_keys: vec![Attr::new(format!("C{}", i - 1), "k")],
            build_keys: vec![Attr::new(format!("C{i}"), "k")],
            residual: Pred::always(),
        };
    }
    PhysPlan::Project {
        input: Box::new(plan),
        attrs: vec![
            Attr::new("C0", "k"),
            Attr::new("C3", "v0"),
            Attr::new(format!("C{}", CHAIN_RELS - 1), "v0"),
        ],
    }
}

/// Best-of-`REPS` wall-clock for the chain plan under `cfg`, plus the
/// rows and stats of one run for the cross-mode identity checks.
fn run_chain(storage: &Storage, plan: &PhysPlan, cfg: &ExecConfig) -> (Relation, ExecStats, f64) {
    let mut st = ExecStats::new();
    let out = execute_with(plan, storage, &mut st, cfg).expect("chain runs");
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let mut scratch = ExecStats::new();
        let t = Instant::now();
        let rel = execute_with(plan, storage, &mut scratch, cfg).expect("chain runs");
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(rel.len());
        best = best.min(secs);
    }
    (out, st, best)
}

fn table(name: &str, rows: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..KEY_DOMAIN)),
            ]
        })
        .collect();
    Relation::from_values(name, &["id", "k"], rows)
}

struct Cell {
    threads: usize,
    partitions: usize,
    best_secs: f64,
    build_secs: f64,
    probe_secs: f64,
    rows_per_sec: f64,
}

fn main() {
    let probe = table("P", PROBE_ROWS, 42);
    let build = table("B", BUILD_ROWS, 43);
    let probe_keys = [Attr::parse("P.k")];
    let build_keys = [Attr::parse("B.k")];
    let residual = Pred::always();

    let run = |cfg: &ExecConfig| -> (Relation, ExecStats, f64, f64) {
        let mut st = ExecStats::new();
        let (out, build_secs, probe_secs) = hash_join_timed(
            JoinKind::LeftOuter,
            &probe,
            &build,
            &probe_keys,
            &build_keys,
            &residual,
            &mut st,
            cfg,
        )
        .expect("join runs");
        (out, st, build_secs, probe_secs)
    };

    let mut baseline_rows: Option<Vec<Tuple>> = None;
    let mut baseline_stats: Option<ExecStats> = None;
    let mut cells: Vec<Cell> = Vec::new();
    for partitions in PARTITION_COUNTS {
        for threads in THREAD_COUNTS {
            let cfg = ExecConfig::with_threads(threads).partitions(partitions);
            // Warm-up run doubles as the bit-identity check against the
            // sequential unpartitioned baseline: same rows, same order,
            // same scalar counters at every (threads, partitions).
            let (out, st, _, _) = run(&cfg);
            match &baseline_rows {
                None => {
                    baseline_rows = Some(out.rows().to_vec());
                    baseline_stats = Some(st);
                }
                Some(rows) => {
                    assert_eq!(
                        out.rows(),
                        &rows[..],
                        "output diverged at {threads} threads, {partitions} partitions"
                    );
                    assert_eq!(
                        Some(st),
                        baseline_stats,
                        "counters diverged at {threads} threads, {partitions} partitions"
                    );
                }
            }
            let (mut best, mut best_build, mut best_probe) = (f64::INFINITY, 0.0, 0.0);
            for _ in 0..REPS {
                let t = Instant::now();
                let (out, _, build_secs, probe_secs) = run(&cfg);
                let secs = t.elapsed().as_secs_f64();
                std::hint::black_box(out.len());
                if secs < best {
                    best = secs;
                    best_build = build_secs;
                    best_probe = probe_secs;
                }
            }
            let rows_per_sec = PROBE_ROWS as f64 / best;
            println!(
                "threads={threads:>2} partitions={partitions:>2}  best={best:.4}s \
                 (build={best_build:.4}s probe={best_probe:.4}s)  probe rows/sec={rows_per_sec:.0}"
            );
            cells.push(Cell {
                threads,
                partitions,
                best_secs: best,
                build_secs: best_build,
                probe_secs: best_probe,
                rows_per_sec,
            });
        }
    }

    // --- Deep left-outerjoin chain: pipelined vs materializing at one
    // thread. Output rows, order, and work counters must be
    // bit-identical; only the wall clock and the bookkeeping split
    // (`rows_materialized` vs `rows_pipelined`) may differ.
    let chain_store = chain_storage(97);
    let plan = chain_plan();
    let (mat_rows, mat_stats, mat_secs) =
        run_chain(&chain_store, &plan, &ExecConfig::new().materializing());
    let (pipe_rows, pipe_stats, pipe_secs) =
        run_chain(&chain_store, &plan, &ExecConfig::new().pipelined());
    assert_eq!(
        mat_rows.rows(),
        pipe_rows.rows(),
        "pipelined chain output diverged from materializing"
    );
    for (name, a, b) in [
        (
            "tuples_retrieved",
            mat_stats.tuples_retrieved,
            pipe_stats.tuples_retrieved,
        ),
        ("comparisons", mat_stats.comparisons, pipe_stats.comparisons),
        (
            "hash_build_rows",
            mat_stats.hash_build_rows,
            pipe_stats.hash_build_rows,
        ),
        ("rows_output", mat_stats.rows_output, pipe_stats.rows_output),
    ] {
        assert_eq!(a, b, "work counter {name} diverged between modes");
    }
    assert_eq!(
        pipe_stats.rows_materialized, 0,
        "fully-fused chain must materialize nothing"
    );
    let chain_speedup = mat_secs / pipe_secs;
    println!(
        "chain ({CHAIN_RELS} rels x {CHAIN_ROWS} rows, threads=1): \
         materializing={mat_secs:.4}s pipelined={pipe_secs:.4}s speedup={chain_speedup:.2}x \
         (materialized {} rows vs {} across {} pipelines)",
        mat_stats.rows_materialized, pipe_stats.rows_materialized, pipe_stats.pipelines
    );

    // --- Vectorized-kernel microbench at one thread: the columnar
    // predicate and join-key-hash kernels against their row-at-a-time
    // equivalents over the same 200k-row relation. The row-major
    // baselines replicate what the engines do without a `ColumnSet` —
    // `BoundPred::eval` per tuple for the filter, a `DefaultHasher`
    // over `Tuple::get` per key column for the build — and the
    // columnar results are asserted identical (same passing rows, same
    // u64 hashes) before anything is timed.
    let cols = ColumnSet::build(&probe);
    let clustered = Pred::cmp_lit("P.id", CmpOp::Lt, FILTER_ID_LIT);
    let bound = BoundPred::bind(&clustered, probe.schema()).expect("filter binds");
    let mixed = Pred::cmp_lit("P.k", CmpOp::Lt, FILTER_LIT);
    let bound_mixed = BoundPred::bind(&mixed, probe.schema()).expect("filter binds");
    let key_cols = [1usize]; // P.k

    for b in [&bound, &bound_mixed] {
        let mut passing_row: Vec<usize> = Vec::new();
        for (i, row) in probe.rows().iter().enumerate() {
            if b.eval(row).is_true() {
                passing_row.push(i);
            }
        }
        let mut skipped = 0u64;
        let mask = cols.eval_pred(b, &mut skipped).into_trues();
        let mut passing_col: Vec<usize> = Vec::with_capacity(passing_row.len());
        mask.for_each_one_in(0, probe.len(), |i| passing_col.push(i));
        assert_eq!(
            passing_col, passing_row,
            "columnar filter selected different rows"
        );
    }
    let best_of = |mut f: Box<dyn FnMut() -> u64>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..KERNEL_REPS {
            let t = Instant::now();
            std::hint::black_box(f());
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let row_filter = |b: &BoundPred| -> u64 {
        let mut n = 0u64;
        for row in probe.rows() {
            if b.eval(row).is_true() {
                n += 1;
            }
        }
        n
    };
    let filter_row_secs = best_of(Box::new(|| row_filter(&bound)));
    let filter_col_secs = best_of(Box::new(|| {
        let mut sk = 0u64;
        cols.eval_pred(&bound, &mut sk).true_count() as u64
    }));
    let filter_row_secs_mixed = best_of(Box::new(|| row_filter(&bound_mixed)));
    let filter_col_secs_mixed = best_of(Box::new(|| {
        let mut sk = 0u64;
        cols.eval_pred(&bound_mixed, &mut sk).true_count() as u64
    }));
    // The build-hash kernel is measured on a *wide* (16-column)
    // relation — the shape the chain section joins and the shape where
    // hashing straight from the key column pays: the row-at-a-time
    // baseline drags each scattered heap tuple through cache to hash
    // one key, the columnar kernel streams a dense i64 slice. On the
    // narrow 2-column probe table both paths are SipHash-bound and
    // indistinguishable.
    let wide = {
        let mut rng = StdRng::seed_from_u64(44);
        let mut schema: Vec<String> = vec!["id".into(), "k".into()];
        schema.extend((0..14).map(|c| format!("v{c}")));
        let schema_refs: Vec<&str> = schema.iter().map(String::as_str).collect();
        let rows: Vec<Vec<Value>> = (0..PROBE_ROWS)
            .map(|i| {
                let mut row = Vec::with_capacity(schema_refs.len());
                row.push(Value::Int(i as i64));
                row.push(Value::Int(rng.gen_range(0..KEY_DOMAIN)));
                row.extend((0..14).map(|_| Value::Int(rng.gen_range(0..1000))));
                row
            })
            .collect();
        Relation::from_values("W", &schema_refs, rows)
    };
    let wide_cols = ColumnSet::build(&wide);
    for rid in 0..wide.len() {
        let row_hash = {
            let mut h = DefaultHasher::new();
            let mut out = Some(());
            for &c in &key_cols {
                let v = wide.rows()[rid].get(c);
                if v.is_null() {
                    out = None;
                    break;
                }
                v.hash(&mut h);
            }
            out.map(|()| h.finish())
        };
        assert_eq!(
            wide_cols.hash_key_at(&key_cols, rid),
            row_hash,
            "columnar key hash diverged at row {rid}"
        );
    }
    let build_row_secs = best_of(Box::new(|| {
        let mut acc = 0u64;
        'rows: for row in wide.rows() {
            let mut h = DefaultHasher::new();
            for &c in &key_cols {
                let v = row.get(c);
                if v.is_null() {
                    continue 'rows;
                }
                v.hash(&mut h);
            }
            acc ^= h.finish();
        }
        acc
    }));
    let build_col_secs = best_of(Box::new(|| {
        let mut acc = 0u64;
        for rid in 0..wide.len() {
            if let Some(h) = wide_cols.hash_key_at(&key_cols, rid) {
                acc ^= h;
            }
        }
        acc
    }));

    // Zone skipping: an equality literal outside the key domain is
    // refuted by every zone's min/max, so the kernel answers from
    // metadata alone and counts each zone as skipped.
    let absent = Pred::cmp_lit("P.k", CmpOp::Eq, -7i64);
    let absent_bound = BoundPred::bind(&absent, probe.schema()).expect("absent binds");
    let mut zones_skipped = 0u64;
    let absent_mask = cols.eval_pred(&absent_bound, &mut zones_skipped);
    assert_eq!(
        absent_mask.true_count(),
        0,
        "out-of-domain literal matched rows"
    );
    assert!(
        zones_skipped > 0,
        "no zones skipped for out-of-domain literal"
    );

    let filter_rps = PROBE_ROWS as f64 / filter_col_secs;
    let filter_rps_row = PROBE_ROWS as f64 / filter_row_secs;
    let filter_speedup = filter_row_secs / filter_col_secs;
    let filter_rps_mixed = PROBE_ROWS as f64 / filter_col_secs_mixed;
    let filter_rps_row_mixed = PROBE_ROWS as f64 / filter_row_secs_mixed;
    let filter_speedup_mixed = filter_row_secs_mixed / filter_col_secs_mixed;
    let build_rps = PROBE_ROWS as f64 / build_col_secs;
    let build_rps_row = PROBE_ROWS as f64 / build_row_secs;
    let build_speedup = build_row_secs / build_col_secs;
    println!(
        "kernels ({PROBE_ROWS} rows, threads=1): \
         clustered filter {filter_rps:.0} rows/sec vs {filter_rps_row:.0} row-major \
         ({filter_speedup:.1}x), mixed-zone filter {filter_rps_mixed:.0} vs \
         {filter_rps_row_mixed:.0} ({filter_speedup_mixed:.1}x), build-hash {build_rps:.0} \
         vs {build_rps_row:.0} ({build_speedup:.1}x), \
         {zones_skipped} zones skipped on out-of-domain probe"
    );

    let output_rows = baseline_rows.map_or(0, |r| r.len());
    let rps_at = |t: usize, p: usize| {
        cells
            .iter()
            .find(|c| c.threads == t && c.partitions == p)
            .map_or(0.0, |c| c.rows_per_sec)
    };
    let base = rps_at(1, 1);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"hash_join_partition_scaling\",");
    let _ = writeln!(
        json,
        "  \"join\": \"left-outer hash join, radix-partitioned zero-copy build side\","
    );
    let _ = writeln!(json, "  \"probe_rows\": {PROBE_ROWS},");
    let _ = writeln!(json, "  \"build_rows\": {BUILD_ROWS},");
    let _ = writeln!(json, "  \"output_rows\": {output_rows},");
    let _ = writeln!(
        json,
        "  \"morsel_rows\": {},",
        ExecConfig::default().morsel_rows
    );
    let _ = writeln!(
        json,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"partitions\": {}, \"best_secs\": {:.6}, \
             \"build_secs\": {:.6}, \"probe_secs\": {:.6}, \"probe_rows_per_sec\": {:.0}}}{comma}",
            c.threads, c.partitions, c.best_secs, c.build_secs, c.probe_secs, c.rows_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_2_threads\": {:.3},", rps_at(2, 1) / base);
    let _ = writeln!(json, "  \"speedup_4_threads\": {:.3},", rps_at(4, 1) / base);
    let _ = writeln!(
        json,
        "  \"speedup_16_partitions\": {:.3},",
        rps_at(1, 16) / base
    );
    let _ = writeln!(json, "  \"chain_rels\": {CHAIN_RELS},");
    let _ = writeln!(json, "  \"chain_rows_per_rel\": {CHAIN_ROWS},");
    let _ = writeln!(json, "  \"chain_output_rows\": {},", pipe_rows.len());
    let _ = writeln!(json, "  \"chain_materializing_secs\": {mat_secs:.6},");
    let _ = writeln!(json, "  \"chain_pipelined_secs\": {pipe_secs:.6},");
    let _ = writeln!(json, "  \"chain_speedup_pipelined\": {chain_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"chain_rows_materialized_materializing\": {},",
        mat_stats.rows_materialized
    );
    let _ = writeln!(
        json,
        "  \"chain_rows_materialized_pipelined\": {},",
        pipe_stats.rows_materialized
    );
    let _ = writeln!(
        json,
        "  \"chain_rows_pipelined\": {},",
        pipe_stats.rows_pipelined
    );
    let _ = writeln!(json, "  \"chain_pipelines\": {},", pipe_stats.pipelines);
    let _ = writeln!(json, "  \"kernel_rows\": {PROBE_ROWS},");
    let _ = writeln!(json, "  \"filter_rows_per_sec\": {filter_rps:.0},");
    let _ = writeln!(
        json,
        "  \"filter_rows_per_sec_rowmajor\": {filter_rps_row:.0},"
    );
    let _ = writeln!(json, "  \"filter_speedup\": {filter_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"filter_rows_per_sec_mixed\": {filter_rps_mixed:.0},"
    );
    let _ = writeln!(
        json,
        "  \"filter_rows_per_sec_mixed_rowmajor\": {filter_rps_row_mixed:.0},"
    );
    let _ = writeln!(
        json,
        "  \"filter_speedup_mixed\": {filter_speedup_mixed:.3},"
    );
    let _ = writeln!(json, "  \"build_rows_per_sec\": {build_rps:.0},");
    let _ = writeln!(
        json,
        "  \"build_rows_per_sec_rowmajor\": {build_rps_row:.0},"
    );
    let _ = writeln!(json, "  \"build_speedup\": {build_speedup:.3},");
    let _ = writeln!(json, "  \"zones_skipped\": {zones_skipped}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
