//! Thread- and partition-scaling benchmark for the radix-partitioned
//! morsel-driven hash-join executor.
//!
//! Builds a ≥100k-row probe-side hash join and sweeps worker threads
//! (1/2/4/8) × radix partitions (1/4/16/64), writing
//! `BENCH_engine.json` at the repository root with build-phase and
//! probe-phase wall-clock reported separately for every cell. Output
//! rows are asserted bit-identical across the whole sweep — the
//! partitioned engine's core contract. The machine's
//! `available_parallelism` is recorded alongside: on a single-core
//! container the wall-clock curve is flat by construction, and the
//! field lets a reader tell that apart from an engine that fails to
//! scale.

use fro_algebra::{Attr, Pred, Relation, Tuple, Value};
use fro_exec::engine::hash_join_timed;
use fro_exec::{ExecConfig, ExecStats, JoinKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

const PROBE_ROWS: usize = 200_000;
const BUILD_ROWS: usize = 20_000;
const KEY_DOMAIN: i64 = 50_000;
const REPS: usize = 3;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PARTITION_COUNTS: [usize; 4] = [1, 4, 16, 64];

fn table(name: &str, rows: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..KEY_DOMAIN)),
            ]
        })
        .collect();
    Relation::from_values(name, &["id", "k"], rows)
}

struct Cell {
    threads: usize,
    partitions: usize,
    best_secs: f64,
    build_secs: f64,
    probe_secs: f64,
    rows_per_sec: f64,
}

fn main() {
    let probe = table("P", PROBE_ROWS, 42);
    let build = table("B", BUILD_ROWS, 43);
    let probe_keys = [Attr::parse("P.k")];
    let build_keys = [Attr::parse("B.k")];
    let residual = Pred::always();

    let run = |cfg: &ExecConfig| -> (Relation, ExecStats, f64, f64) {
        let mut st = ExecStats::new();
        let (out, build_secs, probe_secs) = hash_join_timed(
            JoinKind::LeftOuter,
            &probe,
            &build,
            &probe_keys,
            &build_keys,
            &residual,
            &mut st,
            cfg,
        )
        .expect("join runs");
        (out, st, build_secs, probe_secs)
    };

    let mut baseline_rows: Option<Vec<Tuple>> = None;
    let mut baseline_stats: Option<ExecStats> = None;
    let mut cells: Vec<Cell> = Vec::new();
    for partitions in PARTITION_COUNTS {
        for threads in THREAD_COUNTS {
            let cfg = ExecConfig::with_threads(threads).partitions(partitions);
            // Warm-up run doubles as the bit-identity check against the
            // sequential unpartitioned baseline: same rows, same order,
            // same scalar counters at every (threads, partitions).
            let (out, st, _, _) = run(&cfg);
            match &baseline_rows {
                None => {
                    baseline_rows = Some(out.rows().to_vec());
                    baseline_stats = Some(st);
                }
                Some(rows) => {
                    assert_eq!(
                        out.rows(),
                        &rows[..],
                        "output diverged at {threads} threads, {partitions} partitions"
                    );
                    assert_eq!(
                        Some(st),
                        baseline_stats,
                        "counters diverged at {threads} threads, {partitions} partitions"
                    );
                }
            }
            let (mut best, mut best_build, mut best_probe) = (f64::INFINITY, 0.0, 0.0);
            for _ in 0..REPS {
                let t = Instant::now();
                let (out, _, build_secs, probe_secs) = run(&cfg);
                let secs = t.elapsed().as_secs_f64();
                std::hint::black_box(out.len());
                if secs < best {
                    best = secs;
                    best_build = build_secs;
                    best_probe = probe_secs;
                }
            }
            let rows_per_sec = PROBE_ROWS as f64 / best;
            println!(
                "threads={threads:>2} partitions={partitions:>2}  best={best:.4}s \
                 (build={best_build:.4}s probe={best_probe:.4}s)  probe rows/sec={rows_per_sec:.0}"
            );
            cells.push(Cell {
                threads,
                partitions,
                best_secs: best,
                build_secs: best_build,
                probe_secs: best_probe,
                rows_per_sec,
            });
        }
    }

    let output_rows = baseline_rows.map_or(0, |r| r.len());
    let rps_at = |t: usize, p: usize| {
        cells
            .iter()
            .find(|c| c.threads == t && c.partitions == p)
            .map_or(0.0, |c| c.rows_per_sec)
    };
    let base = rps_at(1, 1);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"hash_join_partition_scaling\",");
    let _ = writeln!(
        json,
        "  \"join\": \"left-outer hash join, radix-partitioned zero-copy build side\","
    );
    let _ = writeln!(json, "  \"probe_rows\": {PROBE_ROWS},");
    let _ = writeln!(json, "  \"build_rows\": {BUILD_ROWS},");
    let _ = writeln!(json, "  \"output_rows\": {output_rows},");
    let _ = writeln!(
        json,
        "  \"morsel_rows\": {},",
        ExecConfig::default().morsel_rows
    );
    let _ = writeln!(
        json,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"partitions\": {}, \"best_secs\": {:.6}, \
             \"build_secs\": {:.6}, \"probe_secs\": {:.6}, \"probe_rows_per_sec\": {:.0}}}{comma}",
            c.threads, c.partitions, c.best_secs, c.build_secs, c.probe_secs, c.rows_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"speedup_2_threads\": {:.3},", rps_at(2, 1) / base);
    let _ = writeln!(json, "  \"speedup_4_threads\": {:.3},", rps_at(4, 1) / base);
    let _ = writeln!(
        json,
        "  \"speedup_16_partitions\": {:.3}",
        rps_at(1, 16) / base
    );
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
