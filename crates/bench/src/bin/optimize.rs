//! Optimizer-throughput benchmark for the interned plan algebra.
//!
//! Times the full `optimize()` entry point (analysis + exhaustive DP)
//! on syntactic join chains of 8–12 relations, the DP alone on random
//! nice graphs, and the greedy reorderer on a 30-relation chain, then
//! writes `BENCH_optimizer.json` at the repository root. The DP rows
//! record `pairs_examined` and csg–cmp pairs per second — the unit of
//! optimizer work that the `RelSet`-keyed memo and per-cut
//! memoization are meant to make cheap.

use fro_core::optimizer::{dp_optimize, greedy_optimize, optimize, Catalog};
use fro_core::reorder::Policy;
use fro_exec::Storage;
use fro_testkit::graphgen::{db_for_graph, random_nice_graph, GraphSpec};
use fro_testkit::workloads::chain;
use std::fmt::Write as _;
use std::time::Instant;

const REPS: usize = 5;

struct Row {
    bench: String,
    n_rels: usize,
    best_secs: f64,
    pairs_examined: u64,
    est_cost: f64,
}

fn time_best(reps: usize, mut f: impl FnMut() -> (u64, f64)) -> (f64, u64, f64) {
    let mut best = f64::INFINITY;
    let (mut pairs, mut cost) = (0, 0.0);
    for _ in 0..reps {
        let t = Instant::now();
        let (p, c) = f();
        let secs = t.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        pairs = p;
        cost = c;
    }
    (best, pairs, cost)
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // Full optimize() on syntactic chains: Theorem 1 analysis, graph
    // extraction, and the DP all on the clock.
    for k in [8usize, 10, 12] {
        let (_storage, catalog, q) = chain(k, 10, 7);
        let (best, pairs, cost) = time_best(REPS, || {
            // This row measures cold planning throughput; drop the
            // catalog's cross-query plan cache so every rep re-plans
            // (the warm path is measured by `plancache`).
            catalog.clear_plan_cache();
            let out = optimize(std::hint::black_box(&q), &catalog, Policy::Paper)
                .expect("chain optimizes");
            assert!(out.reordered, "chains are freely reorderable");
            (0, out.est_cost)
        });
        // pairs_examined is only reported by the DP entry point; rerun
        // it once for the count.
        let _ = pairs;
        let g = fro_core::reorder::analyze(&q, Policy::Paper)
            .graph
            .expect("chain has a graph");
        let pairs = dp_optimize(&g, &catalog).expect("dp runs").pairs_examined;
        println!("optimize/chain{k}: best={best:.6}s pairs={pairs}");
        rows.push(Row {
            bench: format!("optimize_chain_{k}"),
            n_rels: k,
            best_secs: best,
            pairs_examined: pairs,
            est_cost: cost,
        });
    }

    // DP alone on random nice graphs (join core + outerjoin forest).
    for (n_core, n_oj, seed) in [(6usize, 4usize, 11u64), (7, 5, 13)] {
        let n = n_core + n_oj;
        let spec = GraphSpec {
            core: n_core,
            oj_nodes: n_oj,
            extra_core_edges: 2,
            strong: true,
        };
        let g = random_nice_graph(&spec, seed);
        let db = db_for_graph(&g, 50, 40, 0.0, seed);
        let catalog = Catalog::from_storage(&Storage::from_database(&db));
        let (best, pairs, cost) = time_best(REPS, || {
            let r = dp_optimize(std::hint::black_box(&g), &catalog).expect("dp runs");
            (r.pairs_examined, r.cost)
        });
        println!("dp/nice{n}: best={best:.6}s pairs={pairs}");
        rows.push(Row {
            bench: format!("dp_nice_graph_{n}"),
            n_rels: n,
            best_secs: best,
            pairs_examined: pairs,
            est_cost: cost,
        });
    }

    // Greedy on a 30-relation chain — far past the DP cap; exercises
    // the persistent per-cut memo across merge rounds.
    {
        let (_storage, catalog, q) = chain(30, 10, 7);
        let g = fro_core::reorder::analyze(&q, Policy::Paper)
            .graph
            .expect("chain has a graph");
        let (best, merges, cost) = time_best(REPS, || {
            let r = greedy_optimize(std::hint::black_box(&g), &catalog).expect("greedy runs");
            (r.merges_examined, r.cost)
        });
        println!("greedy/chain30: best={best:.6}s merges={merges}");
        rows.push(Row {
            bench: "greedy_chain_30".to_owned(),
            n_rels: 30,
            best_secs: best,
            pairs_examined: merges,
            est_cost: cost,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"optimizer_throughput\",");
    let _ = writeln!(
        json,
        "  \"keying\": \"interned: RelSet memo keys, RelId bases, per-cut memoized splits\","
    );
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let pairs_per_sec = if r.best_secs > 0.0 {
            r.pairs_examined as f64 / r.best_secs
        } else {
            0.0
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"n_rels\": {}, \"best_secs\": {:.6}, \"pairs_examined\": {}, \"pairs_per_sec\": {:.0}, \"est_cost\": {:.1}}}{comma}",
            r.bench, r.n_rels, r.best_secs, r.pairs_examined, pairs_per_sec, r.est_cost
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_optimizer.json");
    std::fs::write(path, &json).expect("write BENCH_optimizer.json");
    println!("wrote {path}");
}
