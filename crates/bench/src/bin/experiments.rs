//! The experiment driver: prints the paper-reproduction reports.
//!
//! ```text
//! cargo run --release -p fro-bench --bin experiments            # all, full size
//! cargo run --release -p fro-bench --bin experiments -- --quick # all, small
//! cargo run --release -p fro-bench --bin experiments -- e1 e5   # a subset
//! ```

use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.to_uppercase())
        .collect();

    let all = fro_bench::run_all(quick);
    let mut printed = 0;
    for (id, report) in &all {
        if !wanted.is_empty() && !wanted.contains(id) {
            continue;
        }
        println!("{}", "=".repeat(78));
        println!("{report}");
        printed += 1;
    }
    if printed == 0 {
        eprintln!(
            "no experiment matched {wanted:?}; available: {}",
            all.iter()
                .map(|(id, _)| id.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }
    println!("{}", "=".repeat(78));
    println!("{printed} experiment(s) completed (quick = {quick}).");
}
