//! Concurrency benchmark for the wire-protocol server: N client
//! threads × M queries over one shared database, cycling
//! alpha-equivalent phrasings of the paper's §5 Queretaro query
//! (From-List permutations — Theorem 1 gives them one graph signature,
//! so they all share one cached plan).
//!
//! Asserts, per the architecture's contract:
//! * every remote result is **bit-identical** to single-session local
//!   execution of the same phrasing;
//! * the shared plan cache serves a warm hit rate above 90% across all
//!   connections.
//!
//! Writes `BENCH_server.json` (p50/p99 latency, throughput, cache hit
//! rate) at the repository root.

use fro::{Client, Server, ServerOptions, SharedDb};
use fro_algebra::Relation;
use fro_lang::model::paper_world;
use std::fmt::Write as _;
use std::time::Instant;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 40;

/// Alpha-equivalent phrasings: permuting the From-List (and the
/// conjunct order) leaves the query graph — and with it the plan-cache
/// signature — unchanged.
const PHRASINGS: [&str; 3] = [
    "Select All From EMPLOYEE*ChildName, DEPARTMENT \
     Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'",
    "Select All From DEPARTMENT, EMPLOYEE*ChildName \
     Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'",
    "Select All From EMPLOYEE*ChildName, DEPARTMENT \
     Where DEPARTMENT.Location = 'Queretaro' and EMPLOYEE.D# = DEPARTMENT.D#",
];

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 * p).ceil() as usize)
        .saturating_sub(1)
        .min(sorted_ms.len() - 1);
    sorted_ms[idx]
}

fn main() {
    let db = SharedDb::new();
    let opts = ServerOptions {
        edb: Some(paper_world()),
        ..ServerOptions::default()
    };
    let server = Server::start("127.0.0.1:0", db.clone(), opts).expect("bind loopback");
    let addr = server.addr();

    // Single-session expectations per phrasing (and cache warmup: the
    // three phrasings collapse onto one signature, so after this the
    // full-set plan is warm for every connection).
    let local = db.session().with_entity_db(paper_world());
    let expected: Vec<Relation> = PHRASINGS
        .iter()
        .map(|src| local.query(src).expect("plans").run().expect("runs"))
        .collect();
    assert_eq!(expected[0].len(), 3, "Queretaro query returns 3 rows");

    let wall = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut latencies_ms = Vec::with_capacity(QUERIES_PER_CLIENT);
                for i in 0..QUERIES_PER_CLIENT {
                    let v = (c + i) % PHRASINGS.len();
                    let t = Instant::now();
                    let (out, _stats) = client.query(PHRASINGS[v]).expect("query runs");
                    latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(
                        out, expected[v],
                        "client {c} query {i}: remote result must be bit-identical \
                         to single-session execution"
                    );
                }
                latencies_ms
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall_secs = wall.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let total = latencies.len();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let qps = total as f64 / wall_secs;

    let stats = db.snapshot().catalog().cache_stats();
    let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;
    assert!(
        hit_rate > 0.9,
        "warm hit rate {hit_rate:.3} must exceed 0.9 (stats: {stats})"
    );

    println!(
        "server_bench: {CLIENTS} clients x {QUERIES_PER_CLIENT} queries \
         p50={p50:.3}ms p99={p99:.3}ms qps={qps:.0} hit_rate={hit_rate:.3}"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"server\",");
    let _ = writeln!(
        json,
        "  \"protocol\": \"fro-wire proto v1 over loopback TCP, text requests\","
    );
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"queries_per_client\": {QUERIES_PER_CLIENT},");
    let _ = writeln!(json, "  \"total_queries\": {total},");
    let _ = writeln!(json, "  \"p50_ms\": {p50:.3},");
    let _ = writeln!(json, "  \"p99_ms\": {p99:.3},");
    let _ = writeln!(json, "  \"qps\": {qps:.0},");
    let _ = writeln!(json, "  \"cache_hits\": {},", stats.hits);
    let _ = writeln!(json, "  \"cache_misses\": {},", stats.misses);
    let _ = writeln!(json, "  \"cache_hit_rate\": {hit_rate:.3}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, &json).expect("write BENCH_server.json");
    println!("wrote {path}");

    drop(server);
}
