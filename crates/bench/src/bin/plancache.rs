//! Cold-vs-warm plan-cache benchmark.
//!
//! Repeats `optimize()` on a 10-relation join chain three ways and
//! writes `BENCH_plancache.json` at the repository root:
//!
//! * **cold** — the catalog's plan cache is cleared before every rep,
//!   so each run pays the full csg–cmp enumeration;
//! * **warm** — the cache is primed once, then every rep is answered
//!   from the cache: `pairs_examined` must be exactly zero;
//! * **epoch bump** — a statistics change between reps invalidates
//!   the cached plans, so the next optimize re-plans (a stale miss)
//!   and the one after that hits again.

use fro_core::optimizer::optimize;
use fro_core::reorder::Policy;
use fro_testkit::workloads::chain;
use std::fmt::Write as _;
use std::time::Instant;

const REPS: usize = 25;
const N_RELS: usize = 10;

fn time_best(reps: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut pairs = 0;
    for _ in 0..reps {
        let t = Instant::now();
        pairs = f();
        let secs = t.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
    }
    (best, pairs)
}

fn main() {
    let (_storage, mut catalog, q) = chain(N_RELS, 10, 7);

    // Cold: every rep pays the whole enumeration.
    let (cold_best, cold_pairs) = time_best(REPS, || {
        catalog.clear_plan_cache();
        let out = optimize(&q, &catalog, Policy::Paper).expect("chain optimizes");
        assert!(out.reordered);
        out.pairs_examined
    });
    assert!(cold_pairs > 0, "cold runs must enumerate");

    // Warm: prime once, then every rep is a full-set cache hit.
    catalog.clear_plan_cache();
    let primed = optimize(&q, &catalog, Policy::Paper).expect("chain optimizes");
    let (warm_best, warm_pairs) = time_best(REPS, || {
        let out = optimize(&q, &catalog, Policy::Paper).expect("chain optimizes");
        assert_eq!(
            out.plan.explain(),
            primed.plan.explain(),
            "warm plan identical"
        );
        out.pairs_examined
    });
    assert_eq!(warm_pairs, 0, "warm runs must not enumerate");

    // Epoch bump: a stats change forces a stale miss and a re-plan.
    let stats_before = catalog.cache_stats();
    catalog.set_distinct(&fro_algebra::Attr::parse("R0.k"), 7);
    let t = Instant::now();
    let replanned = optimize(&q, &catalog, Policy::Paper).expect("chain optimizes");
    let bump_secs = t.elapsed().as_secs_f64();
    assert!(replanned.pairs_examined > 0, "epoch bump must re-plan");
    assert!(replanned.cache.stale >= 1, "stale entries must be counted");
    let rehit = optimize(&q, &catalog, Policy::Paper).expect("chain optimizes");
    assert_eq!(rehit.pairs_examined, 0, "re-primed after the bump");

    let stats = catalog.cache_stats();
    let speedup = if warm_best > 0.0 {
        cold_best / warm_best
    } else {
        f64::INFINITY
    };
    println!(
        "plancache/chain{N_RELS}: cold={cold_best:.6}s ({cold_pairs} pairs) \
         warm={warm_best:.6}s ({warm_pairs} pairs) speedup={speedup:.1}x"
    );
    println!("plancache/epoch-bump: replan={bump_secs:.6}s, cache {stats}");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"plan_cache\",");
    let _ = writeln!(
        json,
        "  \"keying\": \"(graph signature, canonical RelSet, policy) with catalog-epoch invalidation\","
    );
    let _ = writeln!(json, "  \"n_rels\": {N_RELS},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"cold_best_secs\": {cold_best:.6},");
    let _ = writeln!(json, "  \"cold_pairs_examined\": {cold_pairs},");
    let _ = writeln!(json, "  \"warm_best_secs\": {warm_best:.6},");
    let _ = writeln!(json, "  \"warm_pairs_examined\": {warm_pairs},");
    let _ = writeln!(json, "  \"warm_speedup\": {speedup:.1},");
    let _ = writeln!(json, "  \"epoch_bump_replan_secs\": {bump_secs:.6},");
    let _ = writeln!(
        json,
        "  \"cache_stats\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"stale\": {}}},",
        stats.hits, stats.misses, stats.evictions, stats.stale
    );
    let _ = writeln!(
        json,
        "  \"stale_after_epoch_bump\": {}",
        stats.stale - stats_before.stale
    );
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plancache.json");
    std::fs::write(path, &json).expect("write BENCH_plancache.json");
    println!("wrote {path}");
}
