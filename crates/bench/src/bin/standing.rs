//! Standing-query maintenance benchmark: incremental delta
//! propagation vs full re-execution on a star-join view, writing
//! `BENCH_standing.json` at the repository root.
//!
//! The workload is a skewed snowflake from
//! `fro_testkit::workloads::star` at bench scale — a fact table of
//! thousands of rows, most of them junk blocks that multiply through
//! their own dimension's hot keys before dying at the next dimension,
//! so a full execution drags large doomed intermediates while the view
//! itself stays small. Reduction is pinned to `Never` so the
//! registered view and the baseline run the *identical* plain plan.
//!
//! The comparison is end to end and symmetric. Two databases hold the
//! same data; each of `APPENDS` single-row fact appends lands on both.
//! The incremental side is charged for its append (the O(|delta|)
//! storage path: row store, columnar mirror, indexes, and distinct
//! counts all extended in place) plus delta propagation through the
//! registered view's retained hash build sides plus the poll that
//! serves the maintained rows. The baseline side is charged for the
//! identical append on its own database plus re-executing the same
//! physical plan from scratch plus canonicalizing the result — exactly
//! what a refresh-on-poll view would pay to serve the same snapshot.
//! One warm-up append (untimed, applied to both sides) pays the
//! one-time build of each table's append-acceleration state so the
//! loop measures steady-state maintenance.
//!
//! Asserted, not just reported: every maintained poll is bit-identical
//! to the cold re-execution; the whole append loop never forces a
//! refresh (`views_refreshed` stays at the registration's 1); the
//! rows ingested by the delta pipeline are O(appends), nowhere near
//! O(base); and the summed incremental wall clock beats the summed
//! baseline wall clock by ≥ 10×.

use fro::prelude::*;
use fro_algebra::{Tuple, Value};
use fro_exec::execute_with;
use fro_testkit::workloads::{star, StarParams};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

const APPENDS: usize = 32;

fn bench_params() -> StarParams {
    StarParams {
        dims: 3,
        match_keys: 200,
        good_rows: 2_000,
        hot_keys: 50,
        hot_dup: 20,
        junk_rows: 7_000,
        wide_keys: 0,
        snowflake: true,
    }
}

/// Sort a result into the canonical order standing views serve.
fn canonical(rel: &fro_algebra::Relation) -> fro_algebra::Relation {
    let rows: BTreeSet<Tuple> = rel.rows().iter().cloned().collect();
    fro_algebra::Relation::from_distinct_rows(rel.schema().clone(), rows.into_iter().collect())
}

/// A fresh fact row keyed off `i`, never colliding with generated data.
fn fact_row(i: usize, match_keys: usize) -> Tuple {
    let key = (i % match_keys) as i64;
    let mk = match_keys as i64;
    Tuple::new(vec![
        Value::Int(key),
        Value::Int((key + 1) % mk),
        Value::Int((key + 2) % mk),
        Value::Int(1_000_000 + i as i64),
    ])
}

fn main() {
    let params = bench_params();
    let (storage, _catalog, query) = star(&params);

    // Two identical databases: the incremental side maintains a
    // registered view, the baseline side re-executes per append. No
    // indexes, so the optimizer picks hash joins and the view keeps
    // their build sides alive between deltas.
    let view_db = SharedDb::new();
    let plain_db = SharedDb::new();
    let view_sess = view_db.session().with_reduce_policy(ReducePolicy::Never);
    let plain_sess = plain_db.session().with_reduce_policy(ReducePolicy::Never);
    let mut fact_rows = 0usize;
    for (name, table) in storage.iter() {
        if name == "F" {
            fact_rows = table.len();
        }
        view_sess.insert_table(name, table.relation().clone());
        plain_sess.insert_table(name, table.relation().clone());
    }

    // Untimed warm-up append on both sides: pays the one-time O(base)
    // build of the fact table's append-acceleration state, so the loop
    // below measures steady-state O(delta) maintenance.
    let warmup = fact_row(APPENDS, params.match_keys);
    assert!(view_sess.append_rows("F", vec![warmup.clone()]));
    assert!(plain_sess.append_rows("F", vec![warmup]));
    fact_rows += 1;

    let reg = view_sess.register_standing(&query).unwrap();
    assert!(!reg.shared, "fresh database, fresh view");
    let (initial, _) = view_sess.poll_standing(reg.id).unwrap();
    println!(
        "registered star view over {} fact rows ({} view rows)",
        fact_rows,
        initial.len()
    );

    // The baseline re-runs this exact physical plan — optimization is
    // deliberately excluded from both sides of the comparison.
    let plan = plain_sess.prepare(&query).unwrap().optimized().plan.clone();
    let cfg = ExecConfig::default();

    let before = view_sess.maintenance_stats();
    let mut secs_incremental = 0.0f64;
    let mut secs_reexec = 0.0f64;
    for i in 0..APPENDS {
        let row = fact_row(i, params.match_keys);

        // Incremental: append + delta propagation + serve the view.
        let t = Instant::now();
        assert!(view_sess.append_rows("F", vec![row.clone()]));
        let (view, _) = view_sess.poll_standing(reg.id).unwrap();
        secs_incremental += t.elapsed().as_secs_f64();

        // Baseline: the same append on its own database, then a cold
        // re-execution canonicalized into the same served snapshot.
        let t = Instant::now();
        assert!(plain_sess.append_rows("F", vec![row]));
        let state = plain_db.snapshot();
        let mut st = ExecStats::new();
        let cold = execute_with(&plan, state.storage(), &mut st, &cfg).expect("plan runs");
        let cold = canonical(&cold);
        secs_reexec += t.elapsed().as_secs_f64();

        assert_eq!(view, cold, "maintained view diverged at append {i}");
    }
    let after = view_sess.maintenance_stats();

    let refreshes = after.views_refreshed - before.views_refreshed;
    assert_eq!(refreshes, 0, "an append forced a full refresh");
    let ingested = after.delta_rows_in - before.delta_rows_in;
    assert!(
        ingested < (fact_rows as u64) / 10,
        "delta pipeline ingested {ingested} rows over {APPENDS} appends — \
         that is O(base), not O(delta)"
    );

    let speedup = secs_reexec / secs_incremental;
    println!(
        "{APPENDS} appends: incremental={secs_incremental:.4}s \
         reexec={secs_reexec:.4}s speedup={speedup:.1}x \
         (delta_rows_in={ingested}, refreshes={refreshes})"
    );
    assert!(
        speedup >= 10.0,
        "maintenance speedup {speedup:.1}x below the 10x bar"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"standing_maintenance\",");
    let _ = writeln!(json, "  \"fact_rows\": {fact_rows},");
    let _ = writeln!(json, "  \"dims\": {},", params.dims);
    let _ = writeln!(json, "  \"appends\": {APPENDS},");
    let _ = writeln!(json, "  \"view_rows\": {},", initial.len());
    let _ = writeln!(json, "  \"secs_incremental\": {secs_incremental:.6},");
    let _ = writeln!(json, "  \"secs_reexec\": {secs_reexec:.6},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"delta_rows_in\": {ingested},");
    let _ = writeln!(json, "  \"views_refreshed\": {refreshes}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_standing.json");
    std::fs::write(path, &json).expect("write BENCH_standing.json");
    println!("wrote {path}");
}
