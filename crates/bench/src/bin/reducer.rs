//! Semijoin-reducer benchmark: plain vs reduced plans on skewed star
//! and snowflake workloads, writing `BENCH_reducer.json` at the
//! repository root.
//!
//! The workloads come from `fro_testkit::workloads::star` at bench
//! scale: a fact table whose per-dimension junk blocks each land on a
//! duplicated *hot* dimension key and die at every other dimension, so
//! a plain plan drags `junk_rows × hot_dup` doomed tuples through the
//! join pipeline per dimension while the reduced plan deletes the junk
//! from the fact table before the first join. Both plans come out of
//! the same optimizer entry point — `ReducePolicy::Never` for the
//! plain baseline, `ReducePolicy::Auto` for the reduced plan, which
//! must actually choose a reduction schedule on these statistics (the
//! bench asserts it, and asserts the uniform control declines).
//!
//! Reported per workload, at one worker thread in both execution
//! modes: wall clock (best of `REPS`), intermediate rows
//! (`rows_materialized + rows_pipelined` — every tuple an operator
//! emitted or flowed), rows removed by the reducer, and the
//! optimizer's own cost estimates for both plans. Output rows are
//! asserted bit-identical between plain and reduced — row for row, in
//! order — before anything is timed; the intermediate-row cut is
//! asserted ≥ 10× on the skewed workloads.

use fro_core::{optimize_with_reduce, Optimized, Policy, ReducePolicy};
use fro_exec::{execute_with, ExecConfig, ExecStats, PhysPlan, Storage};
use fro_testkit::workloads::{star, StarParams};
use std::fmt::Write as _;
use std::time::Instant;

const REPS: usize = 3;

fn bench_star() -> StarParams {
    StarParams {
        dims: 4,
        match_keys: 100,
        good_rows: 100,
        hot_keys: 50,
        hot_dup: 100,
        junk_rows: 2_000,
        wide_keys: 30_000,
        snowflake: false,
    }
}

fn bench_snowflake() -> StarParams {
    StarParams {
        dims: 3,
        match_keys: 100,
        good_rows: 100,
        hot_keys: 50,
        hot_dup: 60,
        junk_rows: 3_000,
        wide_keys: 20_000,
        snowflake: true,
    }
}

struct ModeRun {
    secs: f64,
    intermediate_rows: u64,
    rows_reduced: u64,
}

/// Best-of-`REPS` wall clock plus one run's stats under `cfg`.
fn run_plan(
    plan: &PhysPlan,
    storage: &Storage,
    cfg: &ExecConfig,
) -> (Vec<fro_algebra::Tuple>, ModeRun) {
    let mut st = ExecStats::new();
    let out = execute_with(plan, storage, &mut st, cfg).expect("plan runs");
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let mut scratch = ExecStats::new();
        let t = Instant::now();
        let rel = execute_with(plan, storage, &mut scratch, cfg).expect("plan runs");
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(rel.len());
        best = best.min(secs);
    }
    (
        out.rows().to_vec(),
        ModeRun {
            secs: best,
            intermediate_rows: st.rows_materialized + st.rows_pipelined,
            rows_reduced: st.rows_reduced,
        },
    )
}

struct WorkloadResult {
    name: &'static str,
    fact_rows: usize,
    output_rows: usize,
    wraps: usize,
    plain_cost: f64,
    reduced_cost: f64,
    plain: [ModeRun; 2],
    reduced: [ModeRun; 2],
}

fn bench_workload(name: &'static str, params: &StarParams) -> WorkloadResult {
    let (storage, catalog, query) = star(params);
    let fact_rows = storage
        .rel_id("F")
        .and_then(|id| storage.get_by_id(id))
        .expect("fact table")
        .len();

    let plain: Optimized =
        optimize_with_reduce(&query, &catalog, Policy::Paper, ReducePolicy::Never)
            .expect("plain optimize");
    let reduced: Optimized =
        optimize_with_reduce(&query, &catalog, Policy::Paper, ReducePolicy::Auto)
            .expect("reduced optimize");
    assert!(
        !reduced.reduction.applied.is_empty(),
        "{name}: Auto must choose a reduction schedule on skewed statistics\n{}",
        reduced.reduction
    );
    println!("{name}: {}", reduced.reduction);

    let modes = [
        ("materializing", ExecConfig::with_threads(1).materializing()),
        ("pipelined", ExecConfig::with_threads(1).pipelined()),
    ];
    let mut plain_runs = Vec::new();
    let mut reduced_runs = Vec::new();
    let mut output_rows = 0usize;
    for (mode, cfg) in &modes {
        let (rows_p, run_p) = run_plan(&plain.plan, &storage, cfg);
        let (rows_r, run_r) = run_plan(&reduced.plan, &storage, cfg);
        assert_eq!(
            rows_r, rows_p,
            "{name} ({mode}): reduced output is not bit-identical to plain"
        );
        output_rows = rows_p.len();
        let cut = run_p.intermediate_rows as f64 / run_r.intermediate_rows.max(1) as f64;
        println!(
            "{name} ({mode}, threads=1): plain={:.4}s reduced={:.4}s speedup={:.2}x  \
             intermediates {} -> {} (cut {:.1}x, {} rows reduced)",
            run_p.secs,
            run_r.secs,
            run_p.secs / run_r.secs,
            run_p.intermediate_rows,
            run_r.intermediate_rows,
            cut,
            run_r.rows_reduced,
        );
        assert!(
            cut >= 10.0,
            "{name} ({mode}): intermediate-row cut {cut:.1}x below the 10x bar"
        );
        assert!(
            run_p.secs >= 2.0 * run_r.secs,
            "{name} ({mode}): wall-clock speedup {:.2}x below the 2x bar",
            run_p.secs / run_r.secs
        );
        plain_runs.push(run_p);
        reduced_runs.push(run_r);
    }

    WorkloadResult {
        name,
        fact_rows,
        output_rows,
        wraps: reduced.reduction.applied.len(),
        plain_cost: plain.est_cost,
        reduced_cost: reduced.est_cost,
        plain: plain_runs.try_into().ok().expect("two modes"),
        reduced: reduced_runs.try_into().ok().expect("two modes"),
    }
}

fn main() {
    // The uniform control: same schema, no junk — Auto must decline.
    let uniform = StarParams {
        hot_keys: 0,
        hot_dup: 0,
        junk_rows: 0,
        wide_keys: 0,
        ..bench_star()
    };
    let (_, catalog, query) = star(&uniform);
    let control = optimize_with_reduce(&query, &catalog, Policy::Paper, ReducePolicy::Auto)
        .expect("control optimize");
    assert!(
        control.reduction.applied.is_empty(),
        "uniform control must decline reduction: {}",
        control.reduction
    );
    println!("uniform control: {}", control.reduction);

    let results = [
        bench_workload("star_skew", &bench_star()),
        bench_workload("snowflake_skew", &bench_snowflake()),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"semijoin_reducer\",");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let mode = |m: &ModeRun| {
            format!(
                "{{\"secs\": {:.6}, \"intermediate_rows\": {}, \"rows_reduced\": {}}}",
                m.secs, m.intermediate_rows, m.rows_reduced
            )
        };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"workload\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"fact_rows\": {},", r.fact_rows);
        let _ = writeln!(json, "      \"output_rows\": {},", r.output_rows);
        let _ = writeln!(json, "      \"wraps\": {},", r.wraps);
        let _ = writeln!(json, "      \"est_cost_plain\": {:.1},", r.plain_cost);
        let _ = writeln!(json, "      \"est_cost_reduced\": {:.1},", r.reduced_cost);
        let _ = writeln!(
            json,
            "      \"plain_materializing\": {},",
            mode(&r.plain[0])
        );
        let _ = writeln!(
            json,
            "      \"reduced_materializing\": {},",
            mode(&r.reduced[0])
        );
        let _ = writeln!(json, "      \"plain_pipelined\": {},", mode(&r.plain[1]));
        let _ = writeln!(
            json,
            "      \"reduced_pipelined\": {},",
            mode(&r.reduced[1])
        );
        let _ = writeln!(
            json,
            "      \"speedup_pipelined\": {:.3},",
            r.plain[1].secs / r.reduced[1].secs
        );
        let _ = writeln!(
            json,
            "      \"intermediate_cut_pipelined\": {:.3}",
            r.plain[1].intermediate_rows as f64 / r.reduced[1].intermediate_rows.max(1) as f64
        );
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reducer.json");
    std::fs::write(path, &json).expect("write BENCH_reducer.json");
    println!("wrote {path}");
}
