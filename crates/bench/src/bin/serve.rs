//! The `fro` server front door as a binary: serve the paper's entity
//! world (and any tables clients load through sessions) over the
//! `fro-wire` query/result protocol.
//!
//! ```text
//! serve [--addr HOST:PORT] [--smoke]
//! ```
//!
//! * `--addr` — bind address (default `127.0.0.1:4224`; use `:0` for
//!   an ephemeral port, printed on stdout).
//! * `--smoke` — self-test mode for CI: bind an ephemeral loopback
//!   port, round-trip a ping and one §5 text query through a real TCP
//!   client, verify the result against in-process execution, shut
//!   down, and exit 0 (any failure panics with a nonzero exit).

use fro::{Client, Server, ServerOptions, SharedDb};
use fro_lang::model::paper_world;

const SMOKE_QUERY: &str = "Select All From EMPLOYEE*ChildName, DEPARTMENT \
     Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::from("127.0.0.1:4224");
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().expect("--addr needs HOST:PORT").clone(),
            "--smoke" => smoke = true,
            other => panic!("unknown argument {other:?} (expected --addr HOST:PORT | --smoke)"),
        }
    }
    if smoke {
        addr = String::from("127.0.0.1:0");
    }

    let db = SharedDb::new();
    let opts = ServerOptions {
        edb: Some(paper_world()),
        ..ServerOptions::default()
    };
    let mut server = Server::start(&addr, db.clone(), opts).expect("bind server address");
    println!("serving on {}", server.addr());

    if smoke {
        let mut client = Client::connect(server.addr()).expect("loopback connect");
        client.ping().expect("ping round-trips");
        let (remote, stats) = client.query(SMOKE_QUERY).expect("smoke query runs");
        let local = db
            .session()
            .with_entity_db(paper_world())
            .query(SMOKE_QUERY)
            .expect("local plan")
            .run()
            .expect("local run");
        assert_eq!(remote, local, "remote result must be bit-identical");
        assert_eq!(remote.len(), 3, "Queretaro query returns 3 rows");
        assert!(stats.rows_output >= 3);
        server.shutdown();
        println!("smoke ok: {} rows, counters {stats}", remote.len());
        return;
    }

    // Serve until killed; connections are handled on their own threads.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
