//! F1–F4: programmatic reproductions of the paper's figures.

use fro_algebra::{Pred, Query, Relation};
use fro_graph::{check_nice, graph_of, QueryGraph};
use fro_trees::{applicable_bts, apply_bt, enumerate_trees, EnumLimit};
use std::fmt::Write as _;

/// F1 — "Alternate representations of a query": the expression tree
/// `(R − S) − (T → U)` and its query graph, plus the full set of
/// implementing trees (the reassociation joining R and T directly is
/// absent — no edge supports it).
#[must_use]
pub fn f1_graph_vs_trees() -> String {
    let q = Query::rel("R")
        .join(Query::rel("S"), Pred::eq_attr("R.a", "S.a"))
        .join(
            Query::rel("T").outerjoin(Query::rel("U"), Pred::eq_attr("T.c", "U.d")),
            Pred::eq_attr("S.b", "T.b"),
        );
    let g = graph_of(&q).expect("defined");
    let mut out = String::new();
    let _ = writeln!(out, "F1 — a query as expression tree and as query graph");
    let _ = writeln!(out, "\nexpression tree:\n  {}", q.shape());
    let _ = writeln!(out, "\nquery graph:\n{}", g.to_ascii());
    let _ = writeln!(out, "dot:\n{}", g.to_dot());
    let trees = enumerate_trees(&g, EnumLimit::default()).expect("connected");
    let _ = writeln!(out, "implementing trees ({}):", trees.len());
    for t in &trees {
        let _ = writeln!(out, "  {}", t.shape());
    }
    // "a reassociation joining R and T is disallowed": no tree has an
    // operator whose operands are exactly {R} and {T}.
    for t in &trees {
        assert!(no_rt_join(t), "found a forbidden R–T association");
    }
    let _ = writeln!(
        out,
        "(no tree joins R and T directly — Cartesian-free, as the paper requires)"
    );
    out
}

fn no_rt_join(q: &Query) -> bool {
    let direct_rt = match q {
        Query::Join { left, right, .. } | Query::OuterJoin { left, right, .. } => {
            let (l, r) = (left.rels(), right.rels());
            (l.len() == 1 && r.len() == 1)
                && ((l.contains("R") && r.contains("T")) || (l.contains("T") && r.contains("R")))
        }
        _ => false,
    };
    !direct_rt && q.children().iter().all(|c| no_rt_join(c))
}

/// F2 — "A 'nice' topology for a query graph": a connected join core
/// with outerjoin trees growing outward, its decomposition, and the
/// checker's verdict.
#[must_use]
pub fn f2_nice_topology() -> String {
    let p = |a: &str, b: &str| Pred::eq_attr(&format!("{a}.k"), &format!("{b}.k"));
    let names: Vec<String> = ["A", "B", "C", "D", "E", "F", "G", "H"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut g = QueryGraph::new(names);
    // Core: A − B − C, A − C (a cycle is fine in the core).
    g.add_join_edge(0, 1, p("A", "B")).unwrap();
    g.add_join_edge(1, 2, p("B", "C")).unwrap();
    g.add_join_edge(0, 2, p("A", "C")).unwrap();
    // Outerjoin trees outward: A → D → E, B → F, C → G, G... → H.
    g.add_outerjoin_edge(0, 3, p("A", "D")).unwrap();
    g.add_outerjoin_edge(3, 4, p("D", "E")).unwrap();
    g.add_outerjoin_edge(1, 5, p("B", "F")).unwrap();
    g.add_outerjoin_edge(2, 6, p("C", "G")).unwrap();
    g.add_outerjoin_edge(6, 7, p("G", "H")).unwrap();

    let rep = check_nice(&g);
    assert!(rep.is_nice());
    let dec = rep.decomposition.clone().expect("nice");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "F2 — a nice topology: join core + outward outerjoin forest"
    );
    let _ = writeln!(out, "\n{}", g.to_ascii());
    let core_names: Vec<&str> = dec.core.iter().map(|i| g.node_name(i)).collect();
    let _ = writeln!(
        out,
        "decomposition: G1 (join core) = {{{}}}",
        core_names.join(", ")
    );
    let _ = writeln!(
        out,
        "               G2 (outerjoin forest) = {} edges",
        dec.forest_edges.len()
    );
    let _ = writeln!(
        out,
        "Lemma 1 check: no OJ cycle, no X → Y − Z, no X → Y ← Z  ⇒ nice ⇒ freely reorderable\n\
         implementing trees: {}",
        fro_trees::count_implementing_trees(&g, false)
    );
    out
}

/// F3 — the Fig. 3 algebraic proof of identity 12, machine-checked
/// step by step on a concrete database.
#[must_use]
pub fn f3_derivation() -> String {
    use fro_algebra::identities::fig3_derivation;
    let x = Relation::from_ints("X", &["a"], &[&[1], &[2], &[5]]);
    let y = Relation::from_ints("Y", &["b", "b2"], &[&[1, 7], &[3, 8], &[5, 9]]);
    let z = Relation::from_ints("Z", &["c"], &[&[7], &[9], &[11]]);
    let pxy = Pred::eq_attr("X.a", "Y.b");
    let pyz = Pred::eq_attr("Y.b2", "Z.c");
    let steps = fig3_derivation(&x, &y, &z, &pxy, &pyz).expect("evaluates");
    let labels = [
        "(X → Y) → Z",
        "expand outer outerjoin (eqn 10)",
        "expand inner outerjoin (eqn 10)",
        "distribute; kill (X▷Y)−Z, fix (X▷Y)▷Z (eqns 4–6, 8, 9); reassociate (eqns 1, 2)",
        "complete by pseudo-distributivity of antijoin (eqn 7)",
        "factor out join from union (eqn 4)",
        "rewrite as outerjoin (eqn 10): X → (Y → Z)",
    ];
    let mut out = String::new();
    let _ = writeln!(out, "F3 — Fig. 3's proof of identity 12, machine-checked:");
    for (i, (step, label)) in steps.iter().zip(labels).enumerate() {
        let _ = writeln!(out, "  step {}: {:<72} [{} rows]", i + 1, label, step.len());
        if i > 0 {
            assert!(step.set_eq(&steps[i - 1]), "step {} broke the chain", i + 1);
        }
    }
    let _ = writeln!(out, "all 7 steps evaluate to the same relation ✓");
    out
}

/// F4 — basic transforms on the Fig. 1 tree: reversal and
/// reassociation, with IT-invariance checked.
#[must_use]
pub fn f4_basic_transforms() -> String {
    let q = Query::rel("R")
        .join(Query::rel("S"), Pred::eq_attr("R.a", "S.a"))
        .join(
            Query::rel("T").outerjoin(Query::rel("U"), Pred::eq_attr("T.c", "U.d")),
            Pred::eq_attr("S.b", "T.b"),
        );
    let g = graph_of(&q).expect("defined");
    let mut out = String::new();
    let _ = writeln!(out, "F4 — basic transforms on {}", q.shape());
    for bt in applicable_bts(&q) {
        let next = apply_bt(&q, &bt).expect("applicable");
        let preserving = fro_trees::is_result_preserving(&q, &bt);
        assert!(
            fro_trees::is_implementing_tree(&next, &g),
            "BT {bt} left the IT class"
        );
        let _ = writeln!(
            out,
            "  {bt:<14} ⇒ {:<36} result-preserving: {}",
            next.shape(),
            match preserving {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "n/a",
            }
        );
    }
    let _ = writeln!(
        out,
        "every BT yields another implementing tree of the same graph ✓"
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn figures_render_and_check() {
        let f1 = super::f1_graph_vs_trees();
        assert!(f1.contains("implementing trees"));
        let f2 = super::f2_nice_topology();
        assert!(f2.contains("join core"));
        let f3 = super::f3_derivation();
        assert!(f3.contains("step 7"));
        let f4 = super::f4_basic_transforms();
        assert!(f4.contains("result-preserving"));
    }
}
