//! Experiments E1–E4: the paper's worked Examples 1, 2 and 3.

use crate::cells;
use crate::table::Table;
use fro_algebra::{Database, Pred, Query, Relation, Value};
use fro_core::optimizer::{estimate_plan, lower};
use fro_core::{optimize, Policy};
use fro_exec::{execute, ExecStats};
use fro_testkit::workloads::{crossover, example1};
use std::fmt::Write as _;

/// E1 — Example 1: tuples retrieved by the two associations of
/// `R1 − (R2 → R3)` under key indexes, sweeping `n`.
///
/// Paper claim: the bad association retrieves `2n + 1` tuples, the
/// good one `3` — independent of `n`.
#[must_use]
pub fn e1_example1_cost(quick: bool) -> String {
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let mut t = Table::new(&[
        "n",
        "syntactic retrieved",
        "paper 2n+1",
        "reordered retrieved",
        "paper",
        "est. cost @n=1e7 (model)",
    ]);
    for &n in sizes {
        let ex = example1(n);
        let syn_plan = lower(&ex.bad_query, &ex.catalog).expect("lowerable");
        let mut syn = ExecStats::new();
        let a = execute(&syn_plan, &ex.storage, &mut syn).expect("runs");
        let opt = optimize(&ex.bad_query, &ex.catalog, Policy::Paper).expect("optimizes");
        assert!(opt.reordered);
        let mut dp = ExecStats::new();
        let b = execute(&opt.plan, &ex.storage, &mut dp).expect("runs");
        assert!(a.set_eq(&b), "associations must agree (Theorem 1)");
        t.row(cells!(
            n,
            syn.tuples_retrieved,
            2 * n + 1,
            dp.tuples_retrieved,
            3,
            ""
        ));
    }
    // The 10^7 point of the paper, via the (validated) cost model:
    // the model's cost includes materialized rows; report both plans.
    {
        let ex = example1(1_000); // index/statistics shape only
        let mut catalog = ex.catalog.clone();
        for (name, attr) in [("R1", "k1"), ("R2", "k2"), ("R3", "k3")] {
            let rows = if name == "R1" { 1 } else { 10_000_000u64 };
            catalog.add_table(
                name,
                ex.storage
                    .get_by_id(ex.storage.rel_id(name).unwrap())
                    .unwrap()
                    .relation()
                    .schema()
                    .clone(),
                rows,
            );
            catalog.set_distinct(&fro_algebra::Attr::new(name, attr), rows);
            catalog.add_index(name, &[fro_algebra::Attr::new(name, attr)]);
        }
        let syn_est = estimate_plan(&lower(&ex.bad_query, &catalog).unwrap(), &catalog);
        let opt = optimize(&ex.bad_query, &catalog, Policy::Paper).unwrap();
        t.row(cells!(
            "10^7 (model)",
            format!("{:.2e}", syn_est.cost),
            2e7 + 1.0,
            format!("{:.0}", opt.est_cost),
            3,
            format!("{:.2e} vs {:.0}", syn_est.cost, opt.est_cost)
        ));
    }
    format!(
        "E1 — Example 1 cost asymmetry (R1 − (R2 → R3) vs (R1 − R2) → R3)\n\
         paper: \"the first expression retrieves 2·10^7 + 1 tuples, and the second retrieves only 3\"\n\n{}",
        t.render()
    )
}

/// E2 — the crossover discussion after Example 1: with a non-selective
/// `>` join predicate and a selective key outerjoin predicate,
/// outerjoin-first wins; with a selective join it loses. Sweep the
/// join selectivity and report measured work for both orders.
#[must_use]
pub fn e2_crossover(quick: bool) -> String {
    let (n1, n2) = if quick { (300, 600) } else { (1_000, 2_000) };
    let mut t = Table::new(&["join sel", "join-first work", "oj-first work", "winner"]);
    let mut crossover_seen = (false, false);
    for sel_pct in [0.05f64, 0.1, 1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0] {
        let w = crossover(n1, n2, sel_pct / 100.0, 42);
        let jf = lower(&w.join_first, &w.catalog).expect("lowerable");
        let of = lower(&w.oj_first, &w.catalog).expect("lowerable");
        let mut sj = ExecStats::new();
        let a = execute(&jf, &w.storage, &mut sj).expect("runs");
        let mut so = ExecStats::new();
        let b = execute(&of, &w.storage, &mut so).expect("runs");
        assert!(a.set_eq(&b), "freely reorderable: both orders agree");
        let winner = if sj.work() < so.work() {
            "join-first"
        } else {
            "oj-first"
        };
        match winner {
            "join-first" => crossover_seen.0 = true,
            _ => crossover_seen.1 = true,
        }
        t.row(cells!(format!("{sel_pct}%"), sj.work(), so.work(), winner));
    }
    let note = if crossover_seen.0 && crossover_seen.1 {
        "both regimes observed — neither order dominates (paper §1.2)"
    } else {
        "WARNING: only one regime observed at these sizes"
    };
    format!(
        "E2 — join-first vs outerjoin-first crossover (join predicate R1.a > R2.b)\n\
         paper: \"evaluating joins before outerjoins … is not necessarily the least expensive\"\n\n{}\n{note}\n",
        t.render()
    )
}

/// E3 — Example 2: `R1 → (R2 − R3)` vs `(R1 → R2) − R3` share a graph
/// but differ; exact reproduction plus disagreement frequency over
/// random databases.
#[must_use]
pub fn e3_example2_nonassociativity() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E3 — Example 2: joins and outerjoins do not always associate"
    );

    // Exact paper instance: single tuples, (r2, r3) not matching.
    let mut db = Database::new();
    db.insert(Relation::from_ints("R1", &["a"], &[&[1]]));
    db.insert(Relation::from_ints("R2", &["b"], &[&[1]]));
    db.insert(Relation::from_ints("R3", &["c"], &[&[99]]));
    let p12 = Pred::eq_attr("R1.a", "R2.b");
    let p23 = Pred::eq_attr("R2.b", "R3.c");
    let q1 = Query::rel("R1").outerjoin(
        Query::rel("R2").join(Query::rel("R3"), p23.clone()),
        p12.clone(),
    );
    let q2 = Query::rel("R1")
        .outerjoin(Query::rel("R2"), p12)
        .join(Query::rel("R3"), p23);
    let r1 = q1.eval(&db).expect("eval");
    let r2 = q2.eval(&db).expect("eval");
    let _ = writeln!(
        out,
        "  {} = {} tuple(s): {}",
        q1.shape(),
        r1.len(),
        r1.rows()
            .first()
            .map_or(String::from("∅"), ToString::to_string)
    );
    let _ = writeln!(
        out,
        "  {} = {} tuple(s) (the empty set)",
        q2.shape(),
        r2.len()
    );
    assert_eq!(r1.len(), 1);
    assert!(r1.rows()[0].get(1).is_null() && r1.rows()[0].get(2).is_null());
    assert_eq!(r2.len(), 0);

    // Frequency over random data.
    let g = {
        let mut g = fro_graph::QueryGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_outerjoin_edge(0, 1, Pred::eq_attr("R0.k", "R1.k"))
            .unwrap();
        g.add_join_edge(1, 2, Pred::eq_attr("R1.k", "R2.k"))
            .unwrap();
        g
    };
    let trees = fro_trees::enumerate_trees(&g, fro_trees::EnumLimit::default()).unwrap();
    let total = 400;
    let mut disagreements = 0;
    for seed in 0..total {
        let db = fro_testkit::db_for_graph(&g, 4, 3, 0.1, seed);
        let results: Vec<_> = trees.iter().map(|t| t.eval(&db).unwrap()).collect();
        if !fro_testkit::all_set_eq(&results) {
            disagreements += 1;
        }
    }
    let _ = writeln!(
        out,
        "\n  same graph, {} implementing trees; disagreement on {disagreements}/{total} random databases \
         ({:.0}%)\n  graph is {}nice (X → Y − Z pattern)",
        trees.len(),
        100.0 * disagreements as f64 / total as f64,
        if fro_graph::check_nice(&g).is_nice() { "" } else { "NOT " },
    );
    assert!(disagreements > 0);
    out
}

/// E4 — Example 3: the non-strong predicate
/// `P_bc = (B.attr2 = C.attr1 OR B.attr2 IS NULL)` breaks identity 12;
/// exact reproduction plus violation rate as null density grows.
#[must_use]
pub fn e4_example3_nonstrong() -> String {
    use fro_algebra::identities::identity_12;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E4 — Example 3: nonstrong predicates preclude outerjoin reassociation"
    );

    // Exact paper instance: A = {(a)}, B = {(b, −)}, C = {(c)}.
    let a = Relation::from_values("A", &["attr1"], vec![vec![Value::Int(10)]]);
    let b = Relation::from_values(
        "B",
        &["attr1", "attr2"],
        vec![vec![Value::Int(20), Value::Null]],
    );
    let c = Relation::from_values("C", &["attr1"], vec![vec![Value::Int(30)]]);
    let pab = Pred::eq_attr("A.attr1", "B.attr1");
    let pbc = Pred::eq_attr("B.attr2", "C.attr1").or(Pred::is_null("B.attr2"));
    assert!(!pbc.is_strong_on_rel("B"));
    let (lhs, rhs) = identity_12(&a, &b, &c, &pab, &pbc).expect("evaluates");
    let _ = writeln!(out, "  (A → B) → C = {}", lhs.rows()[0]);
    let _ = writeln!(out, "  A → (B → C) = {}", rhs.rows()[0]);
    assert!(!lhs.set_eq(&rhs));

    // Violation rate vs null density (the predicate only misbehaves
    // when padding/nulls actually occur).
    let mut t = Table::new(&[
        "null density",
        "violations/200",
        "strong-pred violations/200",
    ]);
    let strong_pbc = Pred::eq_attr("B.attr2", "C.attr1");
    for null_pct in [0u32, 10, 25, 50] {
        let mut weak_viol = 0;
        let mut strong_viol = 0;
        for seed in 0..200u64 {
            let (x, y, z) = random_abc(3, 3, null_pct, seed);
            let (l, r) = identity_12(&x, &y, &z, &pab, &pbc).unwrap();
            if !l.set_eq(&r) {
                weak_viol += 1;
            }
            let (l, r) = identity_12(&x, &y, &z, &pab, &strong_pbc).unwrap();
            if !l.set_eq(&r) {
                strong_viol += 1;
            }
        }
        t.row(cells!(format!("{null_pct}%"), weak_viol, strong_viol));
        assert_eq!(
            strong_viol, 0,
            "identity 12 must hold for strong predicates"
        );
    }
    let _ = writeln!(out, "\n{}", t.render());
    out
}

fn random_abc(
    rows: usize,
    domain: i64,
    null_pct: u32,
    seed: u64,
) -> (Relation, Relation, Relation) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let val = |rng: &mut StdRng| {
        if rng.gen_ratio(null_pct.max(1), 100) && null_pct > 0 {
            Value::Null
        } else {
            Value::Int(rng.gen_range(0..domain))
        }
    };
    let a = Relation::from_values(
        "A",
        &["attr1"],
        (0..rows).map(|_| vec![val(&mut rng)]).collect(),
    );
    let b = Relation::from_values(
        "B",
        &["attr1", "attr2"],
        (0..rows)
            .map(|_| vec![val(&mut rng), val(&mut rng)])
            .collect(),
    );
    let c = Relation::from_values(
        "C",
        &["attr1"],
        (0..rows).map(|_| vec![val(&mut rng)]).collect(),
    );
    (a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_paper_shape() {
        let report = e1_example1_cost(true);
        assert!(report.contains("2n+1"));
        assert!(report.contains("E1"));
    }

    #[test]
    fn e3_and_e4_reproduce_examples() {
        let r = e3_example2_nonassociativity();
        assert!(r.contains("NOT nice"));
        let r = e4_example3_nonstrong();
        assert!(r.contains("(A → B) → C"));
    }

    #[test]
    fn e2_produces_both_regimes() {
        let r = e2_crossover(true);
        assert!(r.contains("both regimes observed"), "{r}");
    }
}
