//! Property tests local to the graph layer: bitset-law sanity, the
//! Lemma 1 ⇔ decomposition equivalence on random graphs, and
//! `graph(Q)` invariants.

use fro_algebra::{Pred, Query};
use fro_graph::{check_nice, graph_of, nice, NodeSet, QueryGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn key_eq(a: usize, b: usize) -> Pred {
    Pred::eq_attr(&format!("R{a}.k"), &format!("R{b}.k"))
}

/// A random connected graph over `n ≤ 7` nodes: spanning tree plus a
/// few random extra edges, each junction join or outerjoin.
fn random_graph(n: usize, oj_ratio: f64, extra: usize, seed: u64) -> QueryGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = n.clamp(1, 7);
    let mut g = QueryGraph::new((0..n).map(|i| format!("R{i}")).collect());
    for i in 1..n {
        let p = rng.gen_range(0..i);
        if rng.gen_bool(oj_ratio) {
            let (a, b) = if rng.gen_bool(0.5) { (p, i) } else { (i, p) };
            g.add_outerjoin_edge(a, b, key_eq(a, b)).unwrap();
        } else {
            g.add_join_edge(p, i, key_eq(p, i)).unwrap();
        }
    }
    for _ in 0..extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            // Ignore failures (parallel outerjoin edges).
            let _ = g.add_join_edge(a, b, key_eq(a, b));
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lemma 1's forbidden-pattern check and the constructive
    /// decomposition agree on every random graph.
    #[test]
    fn lemma1_equivalent_to_decomposition(
        n in 1usize..8,
        oj_pct in 0u32..101,
        extra in 0usize..4,
        seed in 0u64..100_000,
    ) {
        let g = random_graph(n, f64::from(oj_pct) / 100.0, extra, seed);
        let report = check_nice(&g);
        let dec = nice::decompose(&g);
        prop_assert_eq!(
            report.is_nice(),
            dec.is_some(),
            "disagree on\n{}",
            g
        );
        if let Some(d) = dec {
            // Decomposition invariants: core nodes have OJ in-degree 0;
            // forest edges are exactly the outerjoin edges.
            for i in d.core.iter() {
                prop_assert_eq!(g.oj_in_degree(i), 0);
            }
            let oj_edges = g
                .edges()
                .iter()
                .filter(|e| e.kind() == fro_graph::EdgeKind::OuterJoin)
                .count();
            prop_assert_eq!(d.forest_edges.len(), oj_edges);
        }
    }

    /// NodeSet algebra laws.
    #[test]
    fn nodeset_laws(a in 0u64..1_000_000, b in 0u64..1_000_000, i in 0usize..20) {
        let x = NodeSet::from_bits(a);
        let y = NodeSet::from_bits(b);
        prop_assert_eq!(x.union(y), y.union(x));
        prop_assert_eq!(x.intersect(y), y.intersect(x));
        prop_assert_eq!(x.minus(y).intersect(y), NodeSet::empty());
        prop_assert_eq!(x.union(y).minus(y).union(x.intersect(y)), x);
        prop_assert_eq!(x.with(i).without(i), x.without(i));
        prop_assert!(x.intersect(y).is_subset_of(x));
        prop_assert_eq!(x.union(y).len() + x.intersect(y).len(), x.len() + y.len());
        // Iteration visits exactly the members, ascending.
        let members: Vec<usize> = x.iter().collect();
        prop_assert!(members.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(members.len(), x.len());
        for m in members {
            prop_assert!(x.contains(m));
        }
    }

    /// Anchored proper subsets enumerate each unordered split once.
    #[test]
    fn anchored_subsets_partition_splits(bits in 1u64..4096) {
        let s = NodeSet::from_bits(bits);
        let subs: Vec<NodeSet> = s.anchored_proper_subsets().collect();
        // Each contains the anchor, is a proper nonempty subset.
        let anchor = s.lowest().unwrap();
        for sub in &subs {
            prop_assert!(sub.contains(anchor));
            prop_assert!(sub.is_subset_of(s));
            prop_assert!(!sub.is_empty());
            prop_assert!(*sub != s);
        }
        // Count: 2^(|s|-1) - 1 splits for |s| ≥ 2.
        if s.len() >= 2 {
            prop_assert_eq!(subs.len() as u64, (1u64 << (s.len() - 1)) - 1);
        } else {
            prop_assert!(subs.is_empty());
        }
        // Distinct.
        let set: std::collections::HashSet<u64> = subs.iter().map(|x| x.bits()).collect();
        prop_assert_eq!(set.len(), subs.len());
    }

    /// `graph(Q)` of any tree built from a graph's own edges matches
    /// the graph, and niceness of connected subgraphs is hereditary
    /// (the paper's observation in §3.1).
    #[test]
    fn nice_is_hereditary_on_connected_subgraphs(
        n in 2usize..8,
        oj_pct in 0u32..101,
        seed in 0u64..100_000,
        subset_bits in 1u64..256,
    ) {
        let g = random_graph(n, f64::from(oj_pct) / 100.0, 0, seed);
        if !check_nice(&g).is_nice() {
            return;
        }
        let sub = NodeSet::from_bits(subset_bits).intersect(NodeSet::full(g.n_nodes()));
        if sub.is_empty() || !g.connected_in(sub) {
            return;
        }
        // Build the induced subgraph.
        let names: Vec<String> = sub.iter().map(|i| g.node_name(i).to_owned()).collect();
        let mut ig = QueryGraph::new(names);
        for e in g.edges() {
            if sub.contains(e.a()) && sub.contains(e.b()) {
                let a = ig.node_id(g.node_name(e.a())).unwrap();
                let b = ig.node_id(g.node_name(e.b())).unwrap();
                match e.kind() {
                    fro_graph::EdgeKind::Join => {
                        ig.add_join_edge(a, b, e.pred().clone()).unwrap();
                    }
                    fro_graph::EdgeKind::OuterJoin => {
                        ig.add_outerjoin_edge(a, b, e.pred().clone()).unwrap();
                    }
                }
            }
        }
        prop_assert!(
            check_nice(&ig).is_nice(),
            "connected subgraph of a nice graph must be nice:\nparent:\n{}\nsub:\n{}",
            g,
            ig
        );
    }
}

#[test]
fn graph_of_roundtrip_on_example_trees() {
    // graph(Q) is invariant across hand-rolled reassociations.
    let p = |a: &str, b: &str| Pred::eq_attr(a, b);
    let q1 = Query::rel("A")
        .join(Query::rel("B"), p("A.k", "B.k"))
        .outerjoin(Query::rel("C"), p("B.k", "C.k"));
    let q2 = Query::rel("A").join(
        Query::rel("B").outerjoin(Query::rel("C"), p("B.k", "C.k")),
        p("A.k", "B.k"),
    );
    let g1 = graph_of(&q1).unwrap();
    let g2 = graph_of(&q2).unwrap();
    assert!(g1.same_graph(&g2));
}
