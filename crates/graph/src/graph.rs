//! The query-graph data structure (§1.2).

use fro_algebra::Pred;
use std::collections::BTreeMap;
use std::fmt;

/// Index of a node (relation) in a [`QueryGraph`].
pub type NodeId = usize;

/// The kind of a query-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// An undirected join edge (one per predicate conjunct; parallel
    /// edges between the same pair are collapsed, their conjuncts
    /// conjoined).
    Join,
    /// A directed outerjoin edge, pointing from the preserved relation
    /// toward the null-supplied relation, labeled with the entire
    /// outerjoin predicate.
    OuterJoin,
}

/// An edge of the query graph.
///
/// For join edges the endpoint order is canonical (`a < b`) and
/// carries no meaning; for outerjoin edges `a` is the preserved
/// endpoint and `b` the null-supplied endpoint (`a → b`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    kind: EdgeKind,
    a: NodeId,
    b: NodeId,
    pred: Pred,
}

impl Edge {
    /// The edge kind.
    #[must_use]
    pub fn kind(&self) -> EdgeKind {
        self.kind
    }

    /// First endpoint (preserved endpoint for outerjoin edges).
    #[must_use]
    pub fn a(&self) -> NodeId {
        self.a
    }

    /// Second endpoint (null-supplied endpoint for outerjoin edges).
    #[must_use]
    pub fn b(&self) -> NodeId {
        self.b
    }

    /// The edge label: the (merged) predicate.
    #[must_use]
    pub fn pred(&self) -> &Pred {
        &self.pred
    }

    /// The endpoint other than `n`.
    ///
    /// # Panics
    /// If `n` is not an endpoint of this edge.
    #[must_use]
    pub fn other(&self, n: NodeId) -> NodeId {
        if self.a == n {
            self.b
        } else {
            assert_eq!(self.b, n, "node {n} is not an endpoint");
            self.a
        }
    }

    /// Whether `n` is an endpoint.
    #[must_use]
    pub fn touches(&self, n: NodeId) -> bool {
        self.a == n || self.b == n
    }
}

/// Errors raised when mutating a [`QueryGraph`] directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeError {
    /// Both endpoints are the same node.
    SelfLoop(NodeId),
    /// An endpoint index is out of range.
    BadNode(NodeId),
    /// An outerjoin edge would parallel an existing edge between the
    /// same pair of nodes — the paper collapses parallel *join*
    /// conjuncts but a join/outerjoin or outerjoin/outerjoin parallel
    /// pair leaves the graph undefined.
    ParallelOuterjoin(NodeId, NodeId),
}

impl fmt::Display for EdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeError::SelfLoop(n) => write!(f, "self-loop at node {n}"),
            EdgeError::BadNode(n) => write!(f, "node index {n} out of range"),
            EdgeError::ParallelOuterjoin(a, b) => {
                write!(f, "outerjoin edge {a}–{b} parallels an existing edge")
            }
        }
    }
}

impl std::error::Error for EdgeError {}

/// A query graph: relation nodes plus join/outerjoin edges.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    nodes: Vec<String>,
    name_to_id: BTreeMap<String, NodeId>,
    edges: Vec<Edge>,
    /// adjacency[n] = indices into `edges`
    adjacency: Vec<Vec<usize>>,
}

impl QueryGraph {
    /// Create a graph with the given relation names and no edges.
    ///
    /// # Panics
    /// If more than 64 nodes or duplicate names are supplied.
    #[must_use]
    pub fn new(nodes: Vec<String>) -> QueryGraph {
        assert!(
            nodes.len() <= 64,
            "query graphs are limited to 64 relations"
        );
        let mut name_to_id = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            let prev = name_to_id.insert(n.clone(), i);
            assert!(prev.is_none(), "duplicate relation name `{n}`");
        }
        let adjacency = vec![Vec::new(); nodes.len()];
        QueryGraph {
            nodes,
            name_to_id,
            edges: Vec::new(),
            adjacency,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Relation name of node `i`.
    ///
    /// # Panics
    /// If `i` is out of range.
    #[must_use]
    pub fn node_name(&self, i: NodeId) -> &str {
        &self.nodes[i]
    }

    /// All node names, in id order.
    #[must_use]
    pub fn node_names(&self) -> &[String] {
        &self.nodes
    }

    /// Node id of a relation name.
    #[must_use]
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.name_to_id.get(name).copied()
    }

    /// The edges.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterate `(neighbor, edge)` pairs at node `n`.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, &Edge)> {
        self.adjacency[n].iter().map(move |&ei| {
            let e = &self.edges[ei];
            (e.other(n), e)
        })
    }

    /// Edge indices incident to node `n`.
    #[must_use]
    pub fn incident_edges(&self, n: NodeId) -> &[usize] {
        &self.adjacency[n]
    }

    fn check_pair(&self, a: NodeId, b: NodeId) -> Result<(), EdgeError> {
        if a == b {
            return Err(EdgeError::SelfLoop(a));
        }
        if a >= self.nodes.len() {
            return Err(EdgeError::BadNode(a));
        }
        if b >= self.nodes.len() {
            return Err(EdgeError::BadNode(b));
        }
        Ok(())
    }

    fn edge_between(&self, a: NodeId, b: NodeId) -> Option<usize> {
        self.adjacency[a]
            .iter()
            .copied()
            .find(|&ei| self.edges[ei].touches(b))
    }

    /// Add a join-conjunct edge between `a` and `b`. A parallel join
    /// edge is collapsed: the conjunct is ANDed onto the existing
    /// label (§1.2: "parallel edges will be collapsed into one").
    ///
    /// # Errors
    /// [`EdgeError`] for self-loops, bad indices, or when the parallel
    /// edge is an outerjoin edge.
    pub fn add_join_edge(&mut self, a: NodeId, b: NodeId, conjunct: Pred) -> Result<(), EdgeError> {
        self.check_pair(a, b)?;
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        if let Some(ei) = self.edge_between(a, b) {
            if self.edges[ei].kind == EdgeKind::OuterJoin {
                return Err(EdgeError::ParallelOuterjoin(a, b));
            }
            let prev = self.edges[ei].pred.clone();
            self.edges[ei].pred = prev.and(conjunct);
            return Ok(());
        }
        let ei = self.edges.len();
        self.edges.push(Edge {
            kind: EdgeKind::Join,
            a,
            b,
            pred: conjunct,
        });
        self.adjacency[a].push(ei);
        self.adjacency[b].push(ei);
        Ok(())
    }

    /// Add a directed outerjoin edge `preserved → null_supplied`.
    ///
    /// # Errors
    /// [`EdgeError::ParallelOuterjoin`] when any edge already connects
    /// the pair (the graph would be undefined), plus self-loop/index
    /// errors.
    pub fn add_outerjoin_edge(
        &mut self,
        preserved: NodeId,
        null_supplied: NodeId,
        pred: Pred,
    ) -> Result<(), EdgeError> {
        self.check_pair(preserved, null_supplied)?;
        if self.edge_between(preserved, null_supplied).is_some() {
            return Err(EdgeError::ParallelOuterjoin(preserved, null_supplied));
        }
        let ei = self.edges.len();
        self.edges.push(Edge {
            kind: EdgeKind::OuterJoin,
            a: preserved,
            b: null_supplied,
            pred,
        });
        self.adjacency[preserved].push(ei);
        self.adjacency[null_supplied].push(ei);
        Ok(())
    }

    /// Outerjoin in-degree of node `n` (number of outerjoin edges with
    /// `n` as null-supplied endpoint).
    #[must_use]
    pub fn oj_in_degree(&self, n: NodeId) -> usize {
        self.adjacency[n]
            .iter()
            .filter(|&&ei| {
                let e = &self.edges[ei];
                e.kind == EdgeKind::OuterJoin && e.b == n
            })
            .count()
    }

    /// Whether node `n` touches any join edge.
    #[must_use]
    pub fn has_join_edge(&self, n: NodeId) -> bool {
        self.adjacency[n]
            .iter()
            .any(|&ei| self.edges[ei].kind == EdgeKind::Join)
    }

    /// Structural equality up to node numbering and conjunct order:
    /// same node-name set and the same labeled edge set. This is the
    /// `graph(Q) = graph(Q')` relation of the paper.
    #[must_use]
    pub fn same_graph(&self, other: &QueryGraph) -> bool {
        if self.name_to_id.keys().ne(other.name_to_id.keys()) {
            return false;
        }
        if self.edges.len() != other.edges.len() {
            return false;
        }
        let key = |g: &QueryGraph, e: &Edge| {
            let (na, nb) = (g.nodes[e.a].clone(), g.nodes[e.b].clone());
            let mut conj: Vec<String> =
                e.pred.conjuncts().iter().map(ToString::to_string).collect();
            conj.sort();
            match e.kind {
                EdgeKind::OuterJoin => (1u8, na, nb, conj),
                EdgeKind::Join => {
                    if na <= nb {
                        (0u8, na, nb, conj)
                    } else {
                        (0u8, nb, na, conj)
                    }
                }
            }
        };
        let mut mine: Vec<_> = self.edges.iter().map(|e| key(self, e)).collect();
        let mut theirs: Vec<_> = other.edges.iter().map(|e| key(other, e)).collect();
        mine.sort();
        theirs.sort();
        mine == theirs
    }
}

impl fmt::Display for QueryGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes: {}", self.nodes.join(", "))?;
        for e in &self.edges {
            match e.kind {
                EdgeKind::Join => writeln!(
                    f,
                    "  {} — {}  [{}]",
                    self.nodes[e.a], self.nodes[e.b], e.pred
                )?,
                EdgeKind::OuterJoin => writeln!(
                    f,
                    "  {} → {}  [{}]",
                    self.nodes[e.a], self.nodes[e.b], e.pred
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g3() -> QueryGraph {
        let mut g = QueryGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_join_edge(0, 1, Pred::eq_attr("R0.a", "R1.b"))
            .unwrap();
        g.add_outerjoin_edge(1, 2, Pred::eq_attr("R1.b", "R2.c"))
            .unwrap();
        g
    }

    #[test]
    fn node_lookup() {
        let g = g3();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.node_id("R1"), Some(1));
        assert_eq!(g.node_id("nope"), None);
        assert_eq!(g.node_name(2), "R2");
    }

    #[test]
    fn neighbors_and_incidence() {
        let g = g3();
        let nbrs: Vec<NodeId> = g.neighbors(1).map(|(n, _)| n).collect();
        assert_eq!(nbrs, vec![0, 2]);
        assert_eq!(g.incident_edges(0).len(), 1);
    }

    #[test]
    fn parallel_join_edges_collapse() {
        let mut g = QueryGraph::new(vec!["A".into(), "B".into()]);
        g.add_join_edge(0, 1, Pred::eq_attr("A.f", "B.f")).unwrap();
        g.add_join_edge(1, 0, Pred::eq_attr("A.l", "B.l")).unwrap();
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].pred().conjuncts().len(), 2);
    }

    #[test]
    fn parallel_outerjoin_rejected() {
        let mut g = QueryGraph::new(vec!["A".into(), "B".into()]);
        g.add_outerjoin_edge(0, 1, Pred::eq_attr("A.x", "B.y"))
            .unwrap();
        let e = g.add_outerjoin_edge(0, 1, Pred::eq_attr("A.z", "B.w"));
        assert!(matches!(e, Err(EdgeError::ParallelOuterjoin(..))));
        let e = g.add_join_edge(0, 1, Pred::eq_attr("A.z", "B.w"));
        assert!(matches!(e, Err(EdgeError::ParallelOuterjoin(..))));
    }

    #[test]
    fn self_loop_and_bad_node_rejected() {
        let mut g = QueryGraph::new(vec!["A".into(), "B".into()]);
        assert!(matches!(
            g.add_join_edge(0, 0, Pred::always()),
            Err(EdgeError::SelfLoop(0))
        ));
        assert!(matches!(
            g.add_join_edge(0, 5, Pred::always()),
            Err(EdgeError::BadNode(5))
        ));
    }

    #[test]
    fn oj_in_degree_and_join_incidence() {
        let g = g3();
        assert_eq!(g.oj_in_degree(2), 1);
        assert_eq!(g.oj_in_degree(1), 0);
        assert!(g.has_join_edge(0));
        assert!(g.has_join_edge(1));
        assert!(!g.has_join_edge(2));
    }

    #[test]
    fn same_graph_up_to_numbering() {
        let a = g3();
        // Build the same graph with a different node order.
        let mut b = QueryGraph::new(vec!["R2".into(), "R0".into(), "R1".into()]);
        b.add_outerjoin_edge(2, 0, Pred::eq_attr("R1.b", "R2.c"))
            .unwrap();
        b.add_join_edge(2, 1, Pred::eq_attr("R0.a", "R1.b"))
            .unwrap();
        assert!(a.same_graph(&b));
        // Flip the outerjoin direction: different graph.
        let mut c = QueryGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        c.add_join_edge(0, 1, Pred::eq_attr("R0.a", "R1.b"))
            .unwrap();
        c.add_outerjoin_edge(2, 1, Pred::eq_attr("R1.b", "R2.c"))
            .unwrap();
        assert!(!a.same_graph(&c));
    }

    #[test]
    fn same_graph_distinguishes_edge_kinds() {
        let mut a = QueryGraph::new(vec!["A".into(), "B".into()]);
        a.add_join_edge(0, 1, Pred::eq_attr("A.x", "B.y")).unwrap();
        let mut b = QueryGraph::new(vec!["A".into(), "B".into()]);
        b.add_outerjoin_edge(0, 1, Pred::eq_attr("A.x", "B.y"))
            .unwrap();
        assert!(!a.same_graph(&b));
    }

    #[test]
    fn display_renders_arrows() {
        let s = g3().to_string();
        assert!(s.contains("R1 → R2"));
        assert!(s.contains("R0 — R1"));
    }

    #[test]
    fn edge_other_endpoint() {
        let g = g3();
        let e = &g.edges()[0];
        assert_eq!(e.other(0), 1);
        assert_eq!(e.other(1), 0);
        assert!(e.touches(0) && !e.touches(2));
    }
}
