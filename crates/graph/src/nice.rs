//! The "nice" graph class (§3.1) — two equivalent characterizations.
//!
//! **Definition.** `G` is nice if `G = G1 ∪ G2` where `G1` is connected
//! and has only join edges, `G2` is a forest of outerjoin edges, and
//! `G1 ∩ G2` is exactly the set of forest roots (Fig. 2: a join core
//! with outerjoin trees growing outward).
//!
//! **Lemma 1.** `G` is nice iff it has (a) no cycles composed of
//! outerjoin edges, (b) no path `X → Y − Z`, and (c) no path
//! `X → Y ← Z`.
//!
//! [`check_nice`] implements the *Lemma 1* characterization and reports
//! every violation it finds; [`decompose`] implements the constructive
//! definition and returns the core/forest split. Property tests in the
//! workspace verify the two agree on exhaustive small graphs and random
//! large ones.

use crate::graph::{EdgeKind, NodeId, QueryGraph};
use crate::subgraph::NodeSet;
use std::fmt;

/// A way in which a graph fails to be nice (Lemma 1 patterns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NiceViolation {
    /// A cycle composed of outerjoin edges (condition a). Carries the
    /// two endpoints of the edge that closed the cycle.
    OuterjoinCycle {
        /// One endpoint of the closing edge.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A path `X → Y − Z` (condition b): node `y` is null-supplied by
    /// an outerjoin edge from `x` yet participates in a join edge to
    /// `z`.
    OuterjoinIntoJoin {
        /// Preserved endpoint of the offending outerjoin edge.
        x: NodeId,
        /// The null-supplied node that also has a join edge.
        y: NodeId,
        /// The join-edge neighbor.
        z: NodeId,
    },
    /// A path `X → Y ← Z` (condition c): node `y` is null-supplied by
    /// two different outerjoin edges.
    TwoOuterjoinsIn {
        /// First preserver.
        x: NodeId,
        /// Doubly null-supplied node.
        y: NodeId,
        /// Second preserver.
        z: NodeId,
    },
    /// The graph is not connected — no implementing tree exists at all
    /// (implementing trees exclude Cartesian products), so the niceness
    /// question is moot and we flag it.
    Disconnected,
}

impl fmt::Display for NiceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NiceViolation::OuterjoinCycle { a, b } => {
                write!(
                    f,
                    "outerjoin edges form a cycle (closed between nodes {a} and {b})"
                )
            }
            NiceViolation::OuterjoinIntoJoin { x, y, z } => {
                write!(
                    f,
                    "forbidden path {x} → {y} − {z} (outerjoin into a joined relation)"
                )
            }
            NiceViolation::TwoOuterjoinsIn { x, y, z } => {
                write!(
                    f,
                    "forbidden path {x} → {y} ← {z} (two outerjoins null-supply one relation)"
                )
            }
            NiceViolation::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

/// The constructive decomposition of a nice graph: `G1` (the join
/// core) and `G2` (the outerjoin forest), per the §3.1 definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NiceDecomposition {
    /// Nodes of the connected all-join subgraph `G1` (also the roots
    /// of the outerjoin forest).
    pub core: NodeSet,
    /// Indices of the outerjoin (forest) edges, i.e. `G2`.
    pub forest_edges: Vec<usize>,
}

/// The result of a niceness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NiceReport {
    /// All Lemma 1 violations found (empty ⇒ nice).
    pub violations: Vec<NiceViolation>,
    /// The constructive decomposition, when the graph is nice.
    pub decomposition: Option<NiceDecomposition>,
}

impl NiceReport {
    /// Whether the graph is nice.
    #[must_use]
    pub fn is_nice(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Check niceness via Lemma 1, and build the constructive
/// decomposition when it holds.
#[must_use]
pub fn check_nice(g: &QueryGraph) -> NiceReport {
    let mut violations = Vec::new();

    if !g.is_connected() {
        violations.push(NiceViolation::Disconnected);
    }

    // Condition (c): no node null-supplied twice, and condition (b):
    // no null-supplied node on a join edge.
    for y in 0..g.n_nodes() {
        let suppliers: Vec<NodeId> = g
            .edges()
            .iter()
            .filter(|e| e.kind() == EdgeKind::OuterJoin && e.b() == y)
            .map(crate::graph::Edge::a)
            .collect();
        if suppliers.len() >= 2 {
            violations.push(NiceViolation::TwoOuterjoinsIn {
                x: suppliers[0],
                y,
                z: suppliers[1],
            });
        }
        if let Some(&x) = suppliers.first() {
            if let Some(e) = g
                .incident_edges(y)
                .iter()
                .map(|&ei| &g.edges()[ei])
                .find(|e| e.kind() == EdgeKind::Join)
            {
                violations.push(NiceViolation::OuterjoinIntoJoin {
                    x,
                    y,
                    z: e.other(y),
                });
            }
        }
    }

    // Condition (a): no undirected cycle among outerjoin edges
    // (union-find over the OJ-edge subgraph).
    let mut parent: Vec<usize> = (0..g.n_nodes()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut i = i;
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for e in g.edges() {
        if e.kind() != EdgeKind::OuterJoin {
            continue;
        }
        let (ra, rb) = (find(&mut parent, e.a()), find(&mut parent, e.b()));
        if ra == rb {
            violations.push(NiceViolation::OuterjoinCycle { a: e.a(), b: e.b() });
        } else {
            parent[ra] = rb;
        }
    }

    let decomposition = if violations.is_empty() {
        decompose(g)
    } else {
        None
    };
    NiceReport {
        violations,
        decomposition,
    }
}

/// The constructive §3.1 definition, implemented independently of
/// Lemma 1: find `G1`/`G2` directly, returning `None` when no valid
/// decomposition exists.
#[must_use]
pub fn decompose(g: &QueryGraph) -> Option<NiceDecomposition> {
    if !g.is_connected() {
        return None;
    }
    let n = g.n_nodes();

    // Candidate core: nodes with outerjoin in-degree 0.
    let mut core = NodeSet::empty();
    for i in 0..n {
        match g.oj_in_degree(i) {
            0 => core = core.with(i),
            1 => {}
            _ => return None, // not a forest: two parents
        }
    }
    if core.is_empty() {
        return None; // every node null-supplied ⇒ an OJ cycle exists
    }

    // Every join edge must connect two core nodes (G1 has only join
    // edges and G1's nodes are the forest roots / core).
    for e in g.edges() {
        if e.kind() == EdgeKind::Join && !(core.contains(e.a()) && core.contains(e.b())) {
            return None;
        }
    }

    // G1 must be connected using join edges only.
    if core.len() > 1 {
        let start = core.lowest().expect("non-empty core");
        let mut seen = NodeSet::singleton(start);
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for &ei in g.incident_edges(v) {
                let e = &g.edges()[ei];
                if e.kind() != EdgeKind::Join {
                    continue;
                }
                let w = e.other(v);
                if core.contains(w) && !seen.contains(w) {
                    seen = seen.with(w);
                    stack.push(w);
                }
            }
        }
        if seen != core {
            return None;
        }
    }

    // The outerjoin edges must be acyclic (forest). In-degree ≤ 1 plus
    // no undirected cycle: union-find again.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut i = i;
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut forest_edges = Vec::new();
    for (ei, e) in g.edges().iter().enumerate() {
        if e.kind() != EdgeKind::OuterJoin {
            continue;
        }
        let (ra, rb) = (find(&mut parent, e.a()), find(&mut parent, e.b()));
        if ra == rb {
            return None;
        }
        parent[ra] = rb;
        forest_edges.push(ei);
    }

    Some(NiceDecomposition { core, forest_edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Pred;

    fn p(a: &str, b: &str) -> Pred {
        Pred::eq_attr(&format!("{a}.k"), &format!("{b}.k"))
    }

    fn named(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("R{i}")).collect()
    }

    #[test]
    fn fig2_topology_is_nice() {
        // Figure 2: a join core with OJ trees going outward.
        // Core: R0 − R1 − R2 (triangle-free chain); trees:
        // R0 → R3 → R4, R1 → R5, R2 → R6, R6... (R2 → R6 → R7).
        let mut g = QueryGraph::new(named(8));
        g.add_join_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
        g.add_outerjoin_edge(0, 3, p("R0", "R3")).unwrap();
        g.add_outerjoin_edge(3, 4, p("R3", "R4")).unwrap();
        g.add_outerjoin_edge(1, 5, p("R1", "R5")).unwrap();
        g.add_outerjoin_edge(2, 6, p("R2", "R6")).unwrap();
        g.add_outerjoin_edge(6, 7, p("R6", "R7")).unwrap();
        let rep = check_nice(&g);
        assert!(rep.is_nice(), "violations: {:?}", rep.violations);
        let d = rep.decomposition.unwrap();
        assert_eq!(d.core.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(d.forest_edges.len(), 5);
    }

    #[test]
    fn example2_graph_is_not_nice() {
        // R1 → R2 − R3 (Example 2's shape): forbidden pattern (b).
        let mut g = QueryGraph::new(named(3));
        g.add_outerjoin_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
        let rep = check_nice(&g);
        assert!(!rep.is_nice());
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, NiceViolation::OuterjoinIntoJoin { x: 0, y: 1, z: 2 })));
        assert!(decompose(&g).is_none());
    }

    #[test]
    fn two_outerjoins_into_one_node_not_nice() {
        // R0 → R2 ← R1: forbidden pattern (c).
        let mut g = QueryGraph::new(named(3));
        g.add_outerjoin_edge(0, 2, p("R0", "R2")).unwrap();
        g.add_outerjoin_edge(1, 2, p("R1", "R2")).unwrap();
        let rep = check_nice(&g);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, NiceViolation::TwoOuterjoinsIn { y: 2, .. })));
        assert!(decompose(&g).is_none());
    }

    #[test]
    fn outerjoin_cycle_not_nice() {
        // R0 → R1 → R2 → R0 (directed OJ cycle; in-degrees are all 1 so
        // only condition (a) catches it).
        let mut g = QueryGraph::new(named(3));
        g.add_outerjoin_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_outerjoin_edge(1, 2, p("R1", "R2")).unwrap();
        g.add_outerjoin_edge(2, 0, p("R2", "R0")).unwrap();
        let rep = check_nice(&g);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, NiceViolation::OuterjoinCycle { .. })));
        assert!(decompose(&g).is_none());
    }

    #[test]
    fn pure_join_graph_is_nice() {
        let mut g = QueryGraph::new(named(3));
        g.add_join_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
        let rep = check_nice(&g);
        assert!(rep.is_nice());
        let d = rep.decomposition.unwrap();
        assert_eq!(d.core.len(), 3);
        assert!(d.forest_edges.is_empty());
    }

    #[test]
    fn single_node_is_nice() {
        let g = QueryGraph::new(named(1));
        let rep = check_nice(&g);
        assert!(rep.is_nice());
        assert_eq!(rep.decomposition.unwrap().core.len(), 1);
    }

    #[test]
    fn pure_oj_chain_is_nice() {
        // R0 → R1 → R2: core is just {R0}.
        let mut g = QueryGraph::new(named(3));
        g.add_outerjoin_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_outerjoin_edge(1, 2, p("R1", "R2")).unwrap();
        let rep = check_nice(&g);
        assert!(rep.is_nice());
        assert_eq!(
            rep.decomposition.unwrap().core.iter().collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn oj_star_out_of_one_node_is_nice() {
        // R0 → R1, R0 → R2 (identity 13 shape).
        let mut g = QueryGraph::new(named(3));
        g.add_outerjoin_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_outerjoin_edge(0, 2, p("R0", "R2")).unwrap();
        assert!(check_nice(&g).is_nice());
    }

    #[test]
    fn disconnected_graph_flagged() {
        let g = QueryGraph::new(named(2));
        let rep = check_nice(&g);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, NiceViolation::Disconnected)));
        assert!(decompose(&g).is_none());
    }

    #[test]
    fn join_edge_below_oj_tree_not_nice() {
        // Core R0; R0 → R1; join R1 − R2 deep in the tree: pattern (b).
        let mut g = QueryGraph::new(named(3));
        g.add_outerjoin_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
        assert!(!check_nice(&g).is_nice());
    }

    #[test]
    fn violation_display() {
        let v = NiceViolation::OuterjoinIntoJoin { x: 0, y: 1, z: 2 };
        assert!(v.to_string().contains('→'));
        assert!(NiceViolation::Disconnected
            .to_string()
            .contains("connected"));
    }

    #[test]
    fn lemma1_agrees_with_decomposition_on_small_graphs() {
        // Exhaustive: all graphs on 3 nodes where each unordered pair is
        // one of {none, join, oj_ab, oj_ba}. 4^3 = 64 graphs.
        let pairs = [(0usize, 1usize), (0, 2), (1, 2)];
        for mask in 0..(4u32.pow(3)) {
            let mut g = QueryGraph::new(named(3));
            let mut m = mask;
            for &(a, b) in &pairs {
                let choice = m % 4;
                m /= 4;
                let pr = p(&format!("R{a}"), &format!("R{b}"));
                match choice {
                    1 => g.add_join_edge(a, b, pr).unwrap(),
                    2 => g.add_outerjoin_edge(a, b, pr).unwrap(),
                    3 => g.add_outerjoin_edge(b, a, pr).unwrap(),
                    _ => {}
                }
            }
            let rep = check_nice(&g);
            let dec = decompose(&g);
            assert_eq!(
                rep.is_nice(),
                dec.is_some(),
                "Lemma 1 vs decomposition disagree on mask {mask}:\n{g}"
            );
        }
    }
}
