//! # fro-graph — query graphs for join/outerjoin queries
//!
//! Implements §1.2–§1.3 and §3.1 of Rosenthal & Galindo-Legaria
//! (SIGMOD 1990):
//!
//! * [`QueryGraph`]: relations as nodes; each join-predicate conjunct
//!   an undirected edge (parallel edges collapsed into one edge whose
//!   label is the conjunction); each outerjoin a single directed edge
//!   toward the null-supplied relation.
//! * [`build::graph_of`]: the `graph(Q)` construction, with the paper's
//!   definedness conditions (each conjunct references exactly two
//!   ground relations, one per operand; outerjoin predicates reference
//!   exactly two ground relations; no relation used twice; no
//!   Cartesian products).
//! * [`nice`]: the "nice" class of §3.1 — both the constructive
//!   definition (connected join core + outward forest of outerjoin
//!   edges) and the forbidden-pattern characterization of Lemma 1
//!   (no outerjoin cycles, no `X → Y − Z`, no `X → Y ← Z`), which the
//!   test-suite proves equivalent on exhaustive small graphs.
//! * [`subgraph`]: bitset node-sets, connectivity, and the cut
//!   classification used to enumerate implementing trees.
//! * [`render`]: Graphviz/ASCII renderings (paper Figures 1 and 2).

//! ## Example
//!
//! ```
//! use fro_algebra::{Pred, Query};
//! use fro_graph::{check_nice, graph_of};
//!
//! // Example 2's shape: R1 → (R2 − R3).
//! let q = Query::rel("R1").outerjoin(
//!     Query::rel("R2").join(Query::rel("R3"), Pred::eq_attr("R2.b", "R3.c")),
//!     Pred::eq_attr("R1.a", "R2.b"),
//! );
//! let g = graph_of(&q).unwrap();
//! // Not nice: a join edge touches the null-supplied relation R2.
//! assert!(!check_nice(&g).is_nice());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod graph;
pub mod nice;
pub mod render;
pub mod subgraph;

pub use build::{graph_of, GraphError};
pub use graph::{Edge, EdgeKind, NodeId, QueryGraph};
pub use nice::{check_nice, NiceDecomposition, NiceReport, NiceViolation};
pub use subgraph::{classify_cut, CutKind, NodeSet};
