//! Renderings of query graphs: Graphviz DOT and a compact ASCII form
//! (used by the experiment harness to reproduce Figures 1 and 2).

use crate::graph::{EdgeKind, QueryGraph};
use std::fmt::Write as _;

impl QueryGraph {
    /// Graphviz DOT rendering: join edges undirected (rendered with
    /// `dir=none`), outerjoin edges as arrows toward the null-supplied
    /// relation, labels carrying the predicates.
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph query_graph {\n  rankdir=LR;\n");
        for name in self.node_names() {
            let _ = writeln!(s, "  \"{name}\" [shape=circle];");
        }
        for e in self.edges() {
            let (a, b) = (self.node_name(e.a()), self.node_name(e.b()));
            let label = e.pred().to_string().replace('"', "'");
            match e.kind() {
                EdgeKind::Join => {
                    let _ = writeln!(s, "  \"{a}\" -> \"{b}\" [dir=none, label=\"{label}\"];");
                }
                EdgeKind::OuterJoin => {
                    let _ = writeln!(s, "  \"{a}\" -> \"{b}\" [label=\"{label}\"];");
                }
            }
        }
        s.push_str("}\n");
        s
    }

    /// One-line-per-edge ASCII rendering, e.g. `R — S`, `T → U`
    /// (predicates omitted; see `Display` for the labeled form).
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut s = String::new();
        if self.edges().is_empty() {
            let _ = writeln!(s, "{}", self.node_names().join("   "));
            return s;
        }
        for e in self.edges() {
            let (a, b) = (self.node_name(e.a()), self.node_name(e.b()));
            let sym = match e.kind() {
                EdgeKind::Join => "—",
                EdgeKind::OuterJoin => "→",
            };
            let _ = writeln!(s, "{a} {sym} {b}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Pred;

    fn g() -> QueryGraph {
        let mut g = QueryGraph::new(vec!["R".into(), "S".into(), "T".into()]);
        g.add_join_edge(0, 1, Pred::eq_attr("R.a", "S.a")).unwrap();
        g.add_outerjoin_edge(1, 2, Pred::eq_attr("S.b", "T.b"))
            .unwrap();
        g
    }

    #[test]
    fn dot_contains_nodes_and_styled_edges() {
        let dot = g().to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("\"R\" -> \"S\" [dir=none"));
        assert!(dot.contains("\"S\" -> \"T\" [label="));
    }

    #[test]
    fn ascii_lists_edges() {
        let a = g().to_ascii();
        assert!(a.contains("R — S"));
        assert!(a.contains("S → T"));
    }

    #[test]
    fn ascii_of_edgeless_graph_lists_nodes() {
        let g = QueryGraph::new(vec!["A".into(), "B".into()]);
        assert!(g.to_ascii().contains('A'));
    }
}
