//! The `graph(Q)` construction (§1.2) with the paper's definedness
//! conditions.
//!
//! For a join operator, *each predicate conjunct* contributes one
//! undirected edge and must reference attributes of exactly two ground
//! relations — one in each operand (the `⊙` convention of §2.1).
//! For an outerjoin, the *entire* predicate contributes one directed
//! edge toward the null-supplied operand and must reference exactly two
//! ground relations, "or else the graph is undefined". Relations appear
//! at most once; joins without edges (Cartesian products) are excluded
//! from implementing trees, so we reject predicate-free operators.

use crate::graph::{EdgeError, QueryGraph};
use fro_algebra::Query;
use std::collections::BTreeSet;
use std::fmt;

/// Why `graph(Q)` is undefined for a given query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The expression contains an operator other than join/outerjoin.
    NotJoinOuterjoin(String),
    /// A ground relation is used more than once.
    DuplicateRelation(String),
    /// A join conjunct does not reference exactly two ground relations.
    ConjunctNotBinary(String),
    /// A join conjunct references relations of only one operand.
    ConjunctDoesNotSpan(String),
    /// An outerjoin predicate does not reference exactly one ground
    /// relation on each side.
    OuterjoinPredNotBinary(String),
    /// An operator has no predicate conjuncts at all (a Cartesian
    /// product — excluded from implementing trees).
    CartesianProduct(String),
    /// Structural edge error (parallel outerjoin edge etc.).
    Edge(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NotJoinOuterjoin(op) => {
                write!(f, "query graphs are defined for join/outerjoin queries only; found {op}")
            }
            GraphError::DuplicateRelation(r) => {
                write!(f, "relation `{r}` is used more than once (rename copies)")
            }
            GraphError::ConjunctNotBinary(p) => {
                write!(f, "join conjunct `{p}` must reference exactly two ground relations")
            }
            GraphError::ConjunctDoesNotSpan(p) => {
                write!(f, "join conjunct `{p}` must reference one relation in each operand")
            }
            GraphError::OuterjoinPredNotBinary(p) => write!(
                f,
                "outerjoin predicate `{p}` must reference exactly two ground relations, one per operand"
            ),
            GraphError::CartesianProduct(q) => {
                write!(f, "operator with no join predicate (Cartesian product) at {q}")
            }
            GraphError::Edge(e) => write!(f, "edge error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<EdgeError> for GraphError {
    fn from(e: EdgeError) -> Self {
        GraphError::Edge(e.to_string())
    }
}

/// Construct `graph(Q)`.
///
/// # Errors
/// A [`GraphError`] describing why the graph is undefined.
pub fn graph_of(q: &Query) -> Result<QueryGraph, GraphError> {
    // Leaf set, with the §1.2 each-relation-once check.
    let leaves = q.leaves();
    let mut seen = BTreeSet::new();
    for l in &leaves {
        if !seen.insert(l.clone()) {
            return Err(GraphError::DuplicateRelation(l.clone()));
        }
    }
    let mut g = QueryGraph::new(leaves);
    add_edges(q, &mut g)?;
    Ok(g)
}

/// The set of ground relations under each operand plus edge insertion,
/// bottom-up.
fn add_edges(q: &Query, g: &mut QueryGraph) -> Result<BTreeSet<String>, GraphError> {
    match q {
        Query::Rel(name) => Ok(BTreeSet::from([name.clone()])),
        Query::Join { left, right, pred } => {
            let ls = add_edges(left, g)?;
            let rs = add_edges(right, g)?;
            let conjuncts = pred.conjuncts();
            if conjuncts.is_empty() {
                return Err(GraphError::CartesianProduct(q.shape()));
            }
            for c in conjuncts {
                let rels = c.rels();
                if rels.len() != 2 {
                    return Err(GraphError::ConjunctNotBinary(c.to_string()));
                }
                let mut it = rels.iter();
                let (r1, r2) = (it.next().unwrap(), it.next().unwrap());
                let (in_l, in_r) = if ls.contains(r1) && rs.contains(r2) {
                    (r1, r2)
                } else if ls.contains(r2) && rs.contains(r1) {
                    (r2, r1)
                } else {
                    return Err(GraphError::ConjunctDoesNotSpan(c.to_string()));
                };
                let a = g.node_id(in_l).expect("leaf registered");
                let b = g.node_id(in_r).expect("leaf registered");
                g.add_join_edge(a, b, c)?;
            }
            Ok(ls.union(&rs).cloned().collect())
        }
        Query::OuterJoin { left, right, pred } => {
            let ls = add_edges(left, g)?;
            let rs = add_edges(right, g)?;
            let rels = pred.rels();
            if rels.len() != 2 {
                return Err(GraphError::OuterjoinPredNotBinary(pred.to_string()));
            }
            let mut it = rels.iter();
            let (r1, r2) = (it.next().unwrap(), it.next().unwrap());
            let (preserved, null_supplied) = if ls.contains(r1) && rs.contains(r2) {
                (r1, r2)
            } else if ls.contains(r2) && rs.contains(r1) {
                (r2, r1)
            } else {
                return Err(GraphError::OuterjoinPredNotBinary(pred.to_string()));
            };
            let a = g.node_id(preserved).expect("leaf registered");
            let b = g.node_id(null_supplied).expect("leaf registered");
            g.add_outerjoin_edge(a, b, pred.clone())?;
            Ok(ls.union(&rs).cloned().collect())
        }
        other => Err(GraphError::NotJoinOuterjoin(other.shape())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;
    use fro_algebra::{CmpOp, Pred};

    fn fig1_query() -> Query {
        // Figure 1's tree: ((R − S) − (T → U)) with p_rs, p_st, p_tu —
        // S–T is the cut conjunct of the root join.
        Query::rel("R")
            .join(Query::rel("S"), Pred::eq_attr("R.a", "S.a"))
            .join(
                Query::rel("T").outerjoin(Query::rel("U"), Pred::eq_attr("T.c", "U.d")),
                Pred::eq_attr("S.b", "T.b"),
            )
    }

    #[test]
    fn graph_of_fig1() {
        let g = graph_of(&fig1_query()).unwrap();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.edges().len(), 3);
        let oj_edges: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.kind() == EdgeKind::OuterJoin)
            .collect();
        assert_eq!(oj_edges.len(), 1);
        assert_eq!(g.node_name(oj_edges[0].a()), "T");
        assert_eq!(g.node_name(oj_edges[0].b()), "U");
    }

    #[test]
    fn same_graph_for_reassociated_trees() {
        // R − (S − (T → U)) implements the same graph as Figure 1's tree.
        let q2 = Query::rel("R").join(
            Query::rel("S").join(
                Query::rel("T").outerjoin(Query::rel("U"), Pred::eq_attr("T.c", "U.d")),
                Pred::eq_attr("S.b", "T.b"),
            ),
            Pred::eq_attr("R.a", "S.a"),
        );
        let g1 = graph_of(&fig1_query()).unwrap();
        let g2 = graph_of(&q2).unwrap();
        assert!(g1.same_graph(&g2));
    }

    #[test]
    fn multi_conjunct_join_collapses_parallel_edges() {
        // (R1.F = R2.F and R1.L = R2.L): two conjuncts, one edge.
        let q = Query::rel("R1").join(
            Query::rel("R2"),
            Pred::eq_attr("R1.F", "R2.F").and(Pred::eq_attr("R1.L", "R2.L")),
        );
        let g = graph_of(&q).unwrap();
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].pred().conjuncts().len(), 2);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let q = Query::rel("R").join(Query::rel("R"), Pred::eq_attr("R.a", "R.b"));
        assert!(matches!(
            graph_of(&q),
            Err(GraphError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn cartesian_product_rejected() {
        let q = Query::rel("R").join(Query::rel("S"), Pred::always());
        assert!(matches!(graph_of(&q), Err(GraphError::CartesianProduct(_))));
    }

    #[test]
    fn non_spanning_conjunct_rejected() {
        // Conjunct references R and S but both are in the left operand.
        let q = Query::rel("R")
            .join(Query::rel("S"), Pred::eq_attr("R.a", "S.a"))
            .join(
                Query::rel("T"),
                Pred::eq_attr("R.a", "S.b").and(Pred::eq_attr("S.b", "T.c")),
            );
        assert!(matches!(
            graph_of(&q),
            Err(GraphError::ConjunctDoesNotSpan(_))
        ));
    }

    #[test]
    fn restriction_conjunct_rejected() {
        let q = Query::rel("R").join(
            Query::rel("S"),
            Pred::eq_attr("R.a", "S.a").and(Pred::cmp_lit("R.a", CmpOp::Gt, 0)),
        );
        assert!(matches!(
            graph_of(&q),
            Err(GraphError::ConjunctNotBinary(_))
        ));
    }

    #[test]
    fn three_relation_oj_pred_rejected() {
        let q = Query::rel("R")
            .join(Query::rel("S"), Pred::eq_attr("R.a", "S.a"))
            .outerjoin(
                Query::rel("T"),
                Pred::eq_attr("R.a", "T.c").and(Pred::eq_attr("S.b", "T.c")),
            );
        assert!(matches!(
            graph_of(&q),
            Err(GraphError::OuterjoinPredNotBinary(_))
        ));
    }

    #[test]
    fn non_ojj_operator_rejected() {
        let q = Query::rel("R")
            .join(Query::rel("S"), Pred::eq_attr("R.a", "S.a"))
            .restrict(Pred::cmp_lit("R.a", CmpOp::Gt, 0));
        assert!(matches!(graph_of(&q), Err(GraphError::NotJoinOuterjoin(_))));
    }

    #[test]
    fn oj_direction_follows_preserved_side() {
        // U ← T written as (U outerjoined by T): T is preserved when T
        // is the left operand of Query::outerjoin.
        let q = Query::rel("U").outerjoin(Query::rel("T"), Pred::eq_attr("T.c", "U.d"));
        let g = graph_of(&q).unwrap();
        let e = &g.edges()[0];
        assert_eq!(g.node_name(e.a()), "U"); // preserved = left operand
        assert_eq!(g.node_name(e.b()), "T");
    }

    #[test]
    fn cyclic_join_graph_builds() {
        // Triangle: R−S, S−T, R−T.
        let q = Query::rel("R")
            .join(Query::rel("S"), Pred::eq_attr("R.a", "S.a"))
            .join(
                Query::rel("T"),
                Pred::eq_attr("S.b", "T.b").and(Pred::eq_attr("R.a", "T.a")),
            );
        let g = graph_of(&q).unwrap();
        assert_eq!(g.edges().len(), 3);
    }

    #[test]
    fn error_display() {
        let e = GraphError::DuplicateRelation("R".into());
        assert!(e.to_string().contains('R'));
        let e: GraphError = EdgeError::SelfLoop(1).into();
        assert!(matches!(e, GraphError::Edge(_)));
    }
}
