//! Bitset node-sets, connectivity within a node subset, and the cut
//! classification underlying implementing-tree enumeration.

use crate::graph::{EdgeKind, NodeId, QueryGraph};
use std::fmt;

/// A set of graph nodes, as a 64-bit bitset (graphs are capped at 64
/// relations, far beyond what exhaustive IT enumeration can visit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeSet(u64);

impl NodeSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> NodeSet {
        NodeSet(0)
    }

    /// `{0, 1, …, n-1}`.
    ///
    /// # Panics
    /// If `n > 64`.
    #[must_use]
    pub fn full(n: usize) -> NodeSet {
        assert!(n <= 64, "query graphs are limited to 64 relations");
        if n == 64 {
            NodeSet(u64::MAX)
        } else {
            NodeSet((1u64 << n) - 1)
        }
    }

    /// The singleton `{i}`.
    #[must_use]
    pub fn singleton(i: NodeId) -> NodeSet {
        NodeSet(1u64 << i)
    }

    /// Construct from raw bits.
    #[must_use]
    pub fn from_bits(bits: u64) -> NodeSet {
        NodeSet(bits)
    }

    /// The raw bits.
    #[must_use]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Insert a node, returning the new set.
    #[must_use]
    pub fn with(self, i: NodeId) -> NodeSet {
        NodeSet(self.0 | (1u64 << i))
    }

    /// Remove a node, returning the new set.
    #[must_use]
    pub fn without(self, i: NodeId) -> NodeSet {
        NodeSet(self.0 & !(1u64 << i))
    }

    /// Membership test.
    #[must_use]
    pub fn contains(self, i: NodeId) -> bool {
        self.0 & (1u64 << i) != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Set difference.
    #[must_use]
    pub fn minus(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of members.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset_of(self, other: NodeSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// The smallest member, if any.
    #[must_use]
    pub fn lowest(self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as NodeId)
        }
    }

    /// Iterate members in increasing order.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as NodeId;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Iterate all non-empty proper subsets of `self` that contain
    /// `self`'s lowest member — exactly the left-hand sides needed to
    /// enumerate unordered 2-partitions of `self` without repeats.
    pub fn anchored_proper_subsets(self) -> impl Iterator<Item = NodeSet> {
        let anchor = self.lowest().map_or(0u64, |i| 1u64 << i);
        let rest = self.0 & !anchor;
        // Enumerate subsets of `rest` (including empty, excluding full)
        // and OR in the anchor.
        let mut sub: u64 = 0;
        let mut done = rest == 0; // a 1-element set has no proper split
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let current = sub | anchor;
            // Advance to the next subset of `rest`.
            sub = (sub.wrapping_sub(rest)) & rest;
            if sub == 0 {
                done = true; // wrapped: the last emitted was rest|anchor (full) — guard below
            }
            Some(NodeSet(current))
        })
        .filter(move |s| s.0 != self.0) // exclude the full set
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        iter.into_iter()
            .fold(NodeSet::empty(), |acc, i| acc.with(i))
    }
}

/// How a 2-partition `(left, right)` of a connected node set relates to
/// the graph's edges — this decides which operator (if any) an
/// implementing tree may place at that cut (§1.3: "joins without graph
/// edges (i.e. Cartesian products) are excluded"; an outerjoin
/// contributes exactly one directed edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CutKind {
    /// All crossing edges are join edges (at least one): a regular
    /// join whose predicate is the conjunction of the edge labels.
    Joins(Vec<usize>),
    /// Exactly one crossing edge, an outerjoin edge. `forward` is true
    /// when the preserved endpoint lies in `left` (so the operator is
    /// `left → right`).
    SingleOuterjoin {
        /// Index of the crossing edge.
        edge: usize,
        /// Whether the edge points left-to-right.
        forward: bool,
    },
    /// No crossing edges: the split would be a Cartesian product.
    Cartesian,
    /// A mixture (an outerjoin edge together with other crossing
    /// edges): no single operator implements this cut.
    Mixed,
}

/// Indices of edges with one endpoint in `left` and the other in
/// `right`.
#[must_use]
pub fn crossing_edges(g: &QueryGraph, left: NodeSet, right: NodeSet) -> Vec<usize> {
    g.edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            (left.contains(e.a()) && right.contains(e.b()))
                || (left.contains(e.b()) && right.contains(e.a()))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Classify the cut `(left, right)`.
#[must_use]
pub fn classify_cut(g: &QueryGraph, left: NodeSet, right: NodeSet) -> CutKind {
    let crossing = crossing_edges(g, left, right);
    if crossing.is_empty() {
        return CutKind::Cartesian;
    }
    let oj_count = crossing
        .iter()
        .filter(|&&i| g.edges()[i].kind() == EdgeKind::OuterJoin)
        .count();
    match (oj_count, crossing.len()) {
        (0, _) => CutKind::Joins(crossing),
        (1, 1) => {
            let e = &g.edges()[crossing[0]];
            CutKind::SingleOuterjoin {
                edge: crossing[0],
                forward: left.contains(e.a()),
            }
        }
        _ => CutKind::Mixed,
    }
}

impl QueryGraph {
    /// Whether the induced subgraph on `set` is connected (the empty
    /// set is vacuously connected; a singleton is connected).
    #[must_use]
    pub fn connected_in(&self, set: NodeSet) -> bool {
        let Some(start) = set.lowest() else {
            return true;
        };
        let mut seen = NodeSet::singleton(start);
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            for (m, _) in self.neighbors(n) {
                if set.contains(m) && !seen.contains(m) {
                    seen = seen.with(m);
                    stack.push(m);
                }
            }
        }
        seen == set
    }

    /// Whether the whole graph is connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.connected_in(NodeSet::full(self.n_nodes()))
    }

    /// Connected components of the induced subgraph on `set`.
    #[must_use]
    pub fn components_in(&self, set: NodeSet) -> Vec<NodeSet> {
        let mut remaining = set;
        let mut out = Vec::new();
        while let Some(start) = remaining.lowest() {
            let mut comp = NodeSet::singleton(start);
            let mut stack = vec![start];
            while let Some(n) = stack.pop() {
                for (m, _) in self.neighbors(n) {
                    if set.contains(m) && !comp.contains(m) {
                        comp = comp.with(m);
                        stack.push(m);
                    }
                }
            }
            out.push(comp);
            remaining = remaining.minus(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::QueryGraph;
    use fro_algebra::Pred;

    fn chain3() -> QueryGraph {
        // R0 −(join) R1 →(oj) R2
        let mut g = QueryGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_join_edge(0, 1, Pred::eq_attr("R0.a", "R1.b"))
            .unwrap();
        g.add_outerjoin_edge(1, 2, Pred::eq_attr("R1.b", "R2.c"))
            .unwrap();
        g
    }

    #[test]
    fn nodeset_basics() {
        let s = NodeSet::empty().with(1).with(3);
        assert!(s.contains(1) && s.contains(3) && !s.contains(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.lowest(), Some(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(s.without(1).iter().collect::<Vec<_>>(), vec![3]);
        assert!(NodeSet::singleton(2).is_subset_of(NodeSet::full(3)));
        assert_eq!(
            NodeSet::full(3).minus(s).iter().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(s.to_string(), "{1,3}");
        assert_eq!([0usize, 2].into_iter().collect::<NodeSet>().len(), 2);
    }

    #[test]
    fn full_64_does_not_overflow() {
        let s = NodeSet::full(64);
        assert_eq!(s.len(), 64);
        assert!(s.contains(63));
    }

    #[test]
    fn anchored_proper_subsets_enumerate_splits() {
        let s = NodeSet::full(3); // {0,1,2}
        let subs: Vec<NodeSet> = s.anchored_proper_subsets().collect();
        // Subsets containing 0, proper and nonempty: {0}, {0,1}, {0,2}.
        assert_eq!(subs.len(), 3);
        for sub in &subs {
            assert!(sub.contains(0));
            assert!(sub.is_subset_of(s));
            assert_ne!(*sub, s);
        }
        // Singleton set: no proper splits.
        assert_eq!(NodeSet::singleton(4).anchored_proper_subsets().count(), 0);
        // Pair: exactly one.
        let pair = NodeSet::empty().with(1).with(5);
        let subs: Vec<NodeSet> = pair.anchored_proper_subsets().collect();
        assert_eq!(subs, vec![NodeSet::singleton(1)]);
    }

    #[test]
    fn connectivity() {
        let g = chain3();
        assert!(g.is_connected());
        assert!(g.connected_in(NodeSet::full(3)));
        assert!(g.connected_in(NodeSet::empty().with(0).with(1)));
        // {R0, R2} skips the middle node: disconnected.
        assert!(!g.connected_in(NodeSet::empty().with(0).with(2)));
        let comps = g.components_in(NodeSet::empty().with(0).with(2));
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn cut_classification() {
        let g = chain3();
        // Cut {R0} | {R1,R2}: crosses the join edge only.
        let k = classify_cut(&g, NodeSet::singleton(0), NodeSet::empty().with(1).with(2));
        assert!(matches!(k, CutKind::Joins(ref v) if v.len() == 1));
        // Cut {R0,R1} | {R2}: crosses the outerjoin edge, forward.
        let k = classify_cut(&g, NodeSet::empty().with(0).with(1), NodeSet::singleton(2));
        assert!(matches!(k, CutKind::SingleOuterjoin { forward: true, .. }));
        // Reversed orientation.
        let k = classify_cut(&g, NodeSet::singleton(2), NodeSet::empty().with(0).with(1));
        assert!(matches!(k, CutKind::SingleOuterjoin { forward: false, .. }));
        // Cut {R1} | {R0,R2}: crosses both edges — mixed.
        let k = classify_cut(&g, NodeSet::singleton(1), NodeSet::empty().with(0).with(2));
        assert!(matches!(k, CutKind::Mixed));
    }

    #[test]
    fn cartesian_cut_detected() {
        let mut g = QueryGraph::new(vec!["A".into(), "B".into()]);
        // No edges at all.
        let k = classify_cut(&g, NodeSet::singleton(0), NodeSet::singleton(1));
        assert_eq!(k, CutKind::Cartesian);
        g.add_join_edge(0, 1, Pred::eq_attr("A.x", "B.y")).unwrap();
        let k = classify_cut(&g, NodeSet::singleton(0), NodeSet::singleton(1));
        assert!(matches!(k, CutKind::Joins(_)));
    }
}
