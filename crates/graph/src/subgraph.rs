//! Node-sets, connectivity within a node subset, and the cut
//! classification underlying implementing-tree enumeration.
//!
//! A query graph's node ids *are* the query's dense relation ids, so a
//! set of nodes is exactly a set of relations: [`NodeSet`] is the
//! `u64`-bitset [`fro_algebra::RelSet`], re-exported under its
//! graph-side name. One representation flows unchanged from graph
//! construction through the optimizer's DP memo to the storage layer.

use crate::graph::{EdgeKind, QueryGraph};

/// A set of graph nodes — the same bitset the rest of the stack uses
/// for relation sets (see [`fro_algebra::RelSet`]).
pub use fro_algebra::RelSet as NodeSet;

/// How a 2-partition `(left, right)` of a connected node set relates to
/// the graph's edges — this decides which operator (if any) an
/// implementing tree may place at that cut (§1.3: "joins without graph
/// edges (i.e. Cartesian products) are excluded"; an outerjoin
/// contributes exactly one directed edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CutKind {
    /// All crossing edges are join edges (at least one): a regular
    /// join whose predicate is the conjunction of the edge labels.
    Joins(Vec<usize>),
    /// Exactly one crossing edge, an outerjoin edge. `forward` is true
    /// when the preserved endpoint lies in `left` (so the operator is
    /// `left → right`).
    SingleOuterjoin {
        /// Index of the crossing edge.
        edge: usize,
        /// Whether the edge points left-to-right.
        forward: bool,
    },
    /// No crossing edges: the split would be a Cartesian product.
    Cartesian,
    /// A mixture (an outerjoin edge together with other crossing
    /// edges): no single operator implements this cut.
    Mixed,
}

/// Indices of edges with one endpoint in `left` and the other in
/// `right`.
#[must_use]
pub fn crossing_edges(g: &QueryGraph, left: NodeSet, right: NodeSet) -> Vec<usize> {
    g.edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            (left.contains(e.a()) && right.contains(e.b()))
                || (left.contains(e.b()) && right.contains(e.a()))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Classify the cut `(left, right)`.
#[must_use]
pub fn classify_cut(g: &QueryGraph, left: NodeSet, right: NodeSet) -> CutKind {
    let crossing = crossing_edges(g, left, right);
    if crossing.is_empty() {
        return CutKind::Cartesian;
    }
    let oj_count = crossing
        .iter()
        .filter(|&&i| g.edges()[i].kind() == EdgeKind::OuterJoin)
        .count();
    match (oj_count, crossing.len()) {
        (0, _) => CutKind::Joins(crossing),
        (1, 1) => {
            let e = &g.edges()[crossing[0]];
            CutKind::SingleOuterjoin {
                edge: crossing[0],
                forward: left.contains(e.a()),
            }
        }
        _ => CutKind::Mixed,
    }
}

impl QueryGraph {
    /// Whether the induced subgraph on `set` is connected (the empty
    /// set is vacuously connected; a singleton is connected).
    #[must_use]
    pub fn connected_in(&self, set: NodeSet) -> bool {
        let Some(start) = set.lowest() else {
            return true;
        };
        let mut seen = NodeSet::singleton(start);
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            for (m, _) in self.neighbors(n) {
                if set.contains(m) && !seen.contains(m) {
                    seen = seen.with(m);
                    stack.push(m);
                }
            }
        }
        seen == set
    }

    /// Whether the whole graph is connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.connected_in(NodeSet::full(self.n_nodes()))
    }

    /// Connected components of the induced subgraph on `set`.
    #[must_use]
    pub fn components_in(&self, set: NodeSet) -> Vec<NodeSet> {
        let mut remaining = set;
        let mut out = Vec::new();
        while let Some(start) = remaining.lowest() {
            let mut comp = NodeSet::singleton(start);
            let mut stack = vec![start];
            while let Some(n) = stack.pop() {
                for (m, _) in self.neighbors(n) {
                    if set.contains(m) && !comp.contains(m) {
                        comp = comp.with(m);
                        stack.push(m);
                    }
                }
            }
            out.push(comp);
            remaining = remaining.minus(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::QueryGraph;
    use fro_algebra::Pred;

    fn chain3() -> QueryGraph {
        // R0 −(join) R1 →(oj) R2
        let mut g = QueryGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_join_edge(0, 1, Pred::eq_attr("R0.a", "R1.b"))
            .unwrap();
        g.add_outerjoin_edge(1, 2, Pred::eq_attr("R1.b", "R2.c"))
            .unwrap();
        g
    }

    #[test]
    fn nodeset_basics() {
        let s = NodeSet::empty().with(1).with(3);
        assert!(s.contains(1) && s.contains(3) && !s.contains(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.lowest(), Some(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(s.without(1).iter().collect::<Vec<_>>(), vec![3]);
        assert!(NodeSet::singleton(2).is_subset_of(NodeSet::full(3)));
        assert_eq!(
            NodeSet::full(3).minus(s).iter().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(s.to_string(), "{1,3}");
        assert_eq!([0usize, 2].into_iter().collect::<NodeSet>().len(), 2);
    }

    #[test]
    fn full_64_does_not_overflow() {
        let s = NodeSet::full(64);
        assert_eq!(s.len(), 64);
        assert!(s.contains(63));
    }

    #[test]
    fn anchored_proper_subsets_enumerate_splits() {
        let s = NodeSet::full(3); // {0,1,2}
        let subs: Vec<NodeSet> = s.anchored_proper_subsets().collect();
        // Subsets containing 0, proper and nonempty: {0}, {0,1}, {0,2}.
        assert_eq!(subs.len(), 3);
        for sub in &subs {
            assert!(sub.contains(0));
            assert!(sub.is_subset_of(s));
            assert_ne!(*sub, s);
        }
        // Singleton set: no proper splits.
        assert_eq!(NodeSet::singleton(4).anchored_proper_subsets().count(), 0);
        // Pair: exactly one.
        let pair = NodeSet::empty().with(1).with(5);
        let subs: Vec<NodeSet> = pair.anchored_proper_subsets().collect();
        assert_eq!(subs, vec![NodeSet::singleton(1)]);
    }

    #[test]
    fn connectivity() {
        let g = chain3();
        assert!(g.is_connected());
        assert!(g.connected_in(NodeSet::full(3)));
        assert!(g.connected_in(NodeSet::empty().with(0).with(1)));
        // {R0, R2} skips the middle node: disconnected.
        assert!(!g.connected_in(NodeSet::empty().with(0).with(2)));
        let comps = g.components_in(NodeSet::empty().with(0).with(2));
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn cut_classification() {
        let g = chain3();
        // Cut {R0} | {R1,R2}: crosses the join edge only.
        let k = classify_cut(&g, NodeSet::singleton(0), NodeSet::empty().with(1).with(2));
        assert!(matches!(k, CutKind::Joins(ref v) if v.len() == 1));
        // Cut {R0,R1} | {R2}: crosses the outerjoin edge, forward.
        let k = classify_cut(&g, NodeSet::empty().with(0).with(1), NodeSet::singleton(2));
        assert!(matches!(k, CutKind::SingleOuterjoin { forward: true, .. }));
        // Reversed orientation.
        let k = classify_cut(&g, NodeSet::singleton(2), NodeSet::empty().with(0).with(1));
        assert!(matches!(k, CutKind::SingleOuterjoin { forward: false, .. }));
        // Cut {R1} | {R0,R2}: crosses both edges — mixed.
        let k = classify_cut(&g, NodeSet::singleton(1), NodeSet::empty().with(0).with(2));
        assert!(matches!(k, CutKind::Mixed));
    }

    #[test]
    fn cartesian_cut_detected() {
        let mut g = QueryGraph::new(vec!["A".into(), "B".into()]);
        // No edges at all.
        let k = classify_cut(&g, NodeSet::singleton(0), NodeSet::singleton(1));
        assert_eq!(k, CutKind::Cartesian);
        g.add_join_edge(0, 1, Pred::eq_attr("A.x", "B.y")).unwrap();
        let k = classify_cut(&g, NodeSet::singleton(0), NodeSet::singleton(1));
        assert!(matches!(k, CutKind::Joins(_)));
    }
}
