//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no registry access, so the workspace
//! provides its own deterministic PRNG behind the same module paths
//! (`rand::rngs::StdRng`, `rand::{Rng, SeedableRng}`). Streams are
//! deterministic per seed but do **not** match upstream `rand`'s
//! ChaCha-based `StdRng` — every consumer in this repo only relies on
//! seed-determinism, never on specific values.
//!
//! Generator: SplitMix64 seeding a 256-bit xoshiro256++ state — a
//! small, well-studied generator with 64-bit output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A deterministic 64-bit PRNG (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Mirror of `rand::SeedableRng`, reduced to the constructor the
/// workspace calls.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// A range a value can be drawn from — mirror of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics when empty.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded rand: bias < 2^-64·span, far
                // below anything a test-suite distribution can detect.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if hi == <$t>::MAX {
                    if lo == 0 {
                        return rng.next_u64() as $t;
                    }
                    // `hi + 1` would overflow; sample the shifted
                    // range `0..=hi-lo` (which cannot be full-width,
                    // since lo > 0) and translate back.
                    return lo + (0..=hi - lo).sample_from(rng);
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_uint!(u64, usize, u32, u16, u8);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi.wrapping_add(1)).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_int!(i64, isize, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Mirror of `rand::Rng`, reduced to the methods the workspace calls.
pub trait Rng {
    /// Draw a uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Return `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool;
    /// Return `true` with probability `numerator/denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator {numerator} > denominator {denominator}"
        );
        self.gen_range(0..denominator) < numerator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
