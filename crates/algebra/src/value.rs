//! Attribute values, including the null value used for outerjoin padding.

use crate::truth::Truth;
use std::fmt;

/// A single attribute value.
///
/// The paper's data model needs nothing beyond atomic comparable values
/// plus the distinguished null used when padding non-matched tuples
/// (§1.2). We provide 64-bit integers, strings and booleans; all
/// comparisons follow SQL semantics: any comparison that touches
/// [`Value::Null`] is [`Truth::Unknown`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The null value (absent / padded).
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// A UTF-8 string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Shorthand for a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Whether this value is the null value.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Three-valued equality: `Unknown` if either side is null,
    /// `False` if the types differ.
    #[must_use]
    pub fn eq3(&self, other: &Value) -> Truth {
        self.cmp3(other).map_or(Truth::Unknown, |o| {
            Truth::from_bool(o == std::cmp::Ordering::Equal)
        })
    }

    /// Three-valued comparison. Returns `None` when either side is
    /// null; comparisons across types order by type tag (Int < Str <
    /// Bool), which keeps mixed-type test databases total without
    /// affecting any paper semantics (predicates in the paper compare
    /// like-typed attributes).
    #[must_use]
    pub fn cmp3(&self, other: &Value) -> Option<std::cmp::Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other))
    }

    /// A short type tag for diagnostics.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Bool(_) => "bool",
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "-"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "'{v}'"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.eq3(&Value::Int(1)), Truth::Unknown);
        assert_eq!(Value::Int(1).eq3(&Value::Null), Truth::Unknown);
        assert_eq!(Value::Null.eq3(&Value::Null), Truth::Unknown);
        assert_eq!(Value::Null.cmp3(&Value::Int(3)), None);
    }

    #[test]
    fn definite_equality() {
        assert_eq!(Value::Int(4).eq3(&Value::Int(4)), Truth::True);
        assert_eq!(Value::Int(4).eq3(&Value::Int(5)), Truth::False);
        assert_eq!(Value::str("a").eq3(&Value::str("a")), Truth::True);
    }

    #[test]
    fn ordering_within_type() {
        assert_eq!(Value::Int(1).cmp3(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::str("b").cmp3(&Value::str("a")),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn cross_type_comparison_is_total_and_definite() {
        // Needed so canonical sorting of mixed test data is stable.
        let t = Value::Int(1).cmp3(&Value::str("a"));
        assert!(t.is_some());
        assert_eq!(Value::Int(1).eq3(&Value::str("a")), Truth::False);
    }

    #[test]
    fn null_sorts_first_in_total_order() {
        // The derived Ord (used for canonicalization only) puts Null first.
        assert!(Value::Null < Value::Int(i64::MIN));
    }

    #[test]
    fn display_uses_paper_dash_for_null() {
        assert_eq!(Value::Null.to_string(), "-");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("x").to_string(), "'x'");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(String::from("t")), Value::Str("t".into()));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Int(0).type_name(), "int");
        assert_eq!(Value::str("").type_name(), "str");
        assert_eq!(Value::Bool(false).type_name(), "bool");
    }
}
