//! Relations: finite sets of tuples on a scheme (§1.2), with the
//! paper's padding/union conventions (§2.1) and set-level equivalence.

use crate::error::AlgebraError;
use crate::schema::{Schema, SchemaRef};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A relation: a scheme plus a finite set of tuples.
///
/// Rows are stored in insertion order for cheap, deterministic
/// iteration; *set* semantics are enforced where the paper's
/// definitions require them — [`Relation::insert`] deduplicates, and
/// [`Relation::set_eq`] compares canonicalized sorted sets after
/// padding both sides to the union scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: SchemaRef,
    rows: Vec<Tuple>,
}

impl Relation {
    /// An empty relation on the given scheme.
    #[must_use]
    pub fn empty(schema: SchemaRef) -> Relation {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build a relation from a scheme and rows, deduplicating (hash
    /// set, not per-row scans — safe for millions of rows).
    ///
    /// # Errors
    /// Returns [`AlgebraError::BadArity`] if any row has the wrong
    /// number of values.
    pub fn new(schema: SchemaRef, rows: Vec<Tuple>) -> Result<Relation, AlgebraError> {
        let mut seen: std::collections::HashSet<Tuple> =
            std::collections::HashSet::with_capacity(rows.len());
        let mut kept = Vec::with_capacity(rows.len());
        for r in rows {
            if r.arity() != schema.len() {
                return Err(AlgebraError::BadArity {
                    expected: schema.len(),
                    got: r.arity(),
                });
            }
            if seen.insert(r.clone()) {
                kept.push(r);
            }
        }
        Ok(Relation { schema, rows: kept })
    }

    /// Convenience: a ground relation of integers.
    ///
    /// ```
    /// use fro_algebra::Relation;
    /// let r = Relation::from_ints("R", &["a", "b"], &[&[1, 2], &[3, 4]]);
    /// assert_eq!(r.len(), 2);
    /// ```
    #[must_use]
    pub fn from_ints(rel: &str, attrs: &[&str], rows: &[&[i64]]) -> Relation {
        let schema = Arc::new(Schema::of_relation(rel, attrs));
        let rows = rows
            .iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect();
        Relation::new(schema, rows).expect("from_ints rows match schema arity")
    }

    /// Convenience: a ground relation from general values.
    #[must_use]
    pub fn from_values(rel: &str, attrs: &[&str], rows: Vec<Vec<Value>>) -> Relation {
        let schema = Arc::new(Schema::of_relation(rel, attrs));
        let rows = rows.into_iter().map(Tuple::new).collect();
        Relation::new(schema, rows).expect("from_values rows match schema arity")
    }

    /// The scheme of this relation.
    #[must_use]
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The tuples, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    /// Append rows the caller guarantees are distinct from each other
    /// and from every stored row — a pre-deduplicated base-table
    /// delta. Skips duplicate detection entirely (O(|delta|));
    /// distinctness and arity are checked in debug builds only, like
    /// [`Relation::from_distinct_rows`].
    pub fn extend_distinct(&mut self, rows: Vec<Tuple>) {
        debug_assert!(
            rows.iter().all(|t| t.arity() == self.schema.len()),
            "extend_distinct rows must match schema arity"
        );
        debug_assert!(
            {
                let mut seen: std::collections::HashSet<&Tuple> = self.rows.iter().collect();
                rows.iter().all(|t| seen.insert(t))
            },
            "extend_distinct rows must be distinct"
        );
        self.rows.extend(rows);
    }

    /// Insert a tuple (set semantics: duplicates are dropped).
    ///
    /// # Errors
    /// Returns [`AlgebraError::BadArity`] on arity mismatch.
    pub fn try_insert(&mut self, t: Tuple) -> Result<bool, AlgebraError> {
        if t.arity() != self.schema.len() {
            return Err(AlgebraError::BadArity {
                expected: self.schema.len(),
                got: t.arity(),
            });
        }
        if self.rows.contains(&t) {
            return Ok(false);
        }
        self.rows.push(t);
        Ok(true)
    }

    /// Insert a tuple, panicking on arity mismatch (builder use).
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.try_insert(t).expect("tuple arity matches schema")
    }

    /// Build a relation from rows the caller guarantees are distinct
    /// (e.g. the output of a join over set-semantics inputs). Skips the
    /// per-row O(n) duplicate scan of [`Relation::insert`]; uniqueness
    /// and arity are checked in debug builds only.
    #[must_use]
    pub fn from_distinct_rows(schema: SchemaRef, rows: Vec<Tuple>) -> Relation {
        debug_assert!(
            rows.iter().all(|t| t.arity() == schema.len()),
            "row arity must match schema"
        );
        debug_assert_eq!(
            rows.iter().collect::<std::collections::HashSet<_>>().len(),
            rows.len(),
            "rows passed to from_distinct_rows must be distinct"
        );
        Relation { schema, rows }
    }

    /// The canonical form: attributes sorted, rows sorted and
    /// deduplicated. Two relations denote the same set of tuples iff
    /// their canonical forms are identical.
    #[must_use]
    pub fn canonical(&self) -> Relation {
        let (canon_schema, perm) = self.schema.canonical_order();
        let mut rows: Vec<Tuple> = self.rows.iter().map(|t| t.project(&perm)).collect();
        rows.sort();
        rows.dedup();
        Relation {
            schema: Arc::new(canon_schema),
            rows,
        }
    }

    /// Set equivalence under the paper's §2.1 comparison convention:
    /// pad both relations to the union of their schemes, then compare
    /// as sets.
    #[must_use]
    pub fn set_eq(&self, other: &Relation) -> bool {
        let union = self.schema.union(&other.schema);
        let a = self.pad_to(&union).canonical();
        let b = other.pad_to(&union).canonical();
        a.schema == b.schema && a.rows == b.rows
    }

    /// Pad every tuple to the larger scheme `to` (paper §1.2/§2.1).
    #[must_use]
    pub fn pad_to(&self, to: &Schema) -> Relation {
        if to == self.schema.as_ref() {
            return self.clone();
        }
        let to_ref = Arc::new(to.clone());
        let rows = self.rows.iter().map(|t| t.pad(&self.schema, to)).collect();
        Relation {
            schema: to_ref,
            rows,
        }
    }

    /// The set of rows as a `BTreeSet` (canonical layout), for diffing.
    #[must_use]
    pub fn row_set(&self) -> BTreeSet<Tuple> {
        self.canonical().rows.into_iter().collect()
    }

    /// Rename the ground-relation qualifier of every attribute
    /// (supports the paper's "several copies of the same relation with
    /// renamed attributes").
    #[must_use]
    pub fn renamed(&self, new_rel: &str) -> Relation {
        let attrs = self
            .schema
            .attrs()
            .iter()
            .map(|a| crate::schema::Attr::new(new_rel, a.name()))
            .collect();
        let schema = Arc::new(Schema::new(attrs).expect("renaming preserves distinctness"));
        Relation {
            schema,
            rows: self.rows.clone(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attr;

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::from_ints("R", &["a"], &[&[1]]);
        assert!(!r.insert(Tuple::new(vec![Value::Int(1)])));
        assert!(r.insert(Tuple::new(vec![Value::Int(2)])));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::from_ints("R", &["a"], &[]);
        let e = r.try_insert(Tuple::new(vec![Value::Int(1), Value::Int(2)]));
        assert!(matches!(
            e,
            Err(AlgebraError::BadArity {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn set_eq_ignores_row_and_column_order() {
        let a = Relation::from_ints("R", &["a", "b"], &[&[1, 2], &[3, 4]]);
        let schema = Arc::new(Schema::new(vec![Attr::parse("R.b"), Attr::parse("R.a")]).unwrap());
        let b = Relation::new(
            schema,
            vec![
                Tuple::new(vec![Value::Int(4), Value::Int(3)]),
                Tuple::new(vec![Value::Int(2), Value::Int(1)]),
            ],
        )
        .unwrap();
        assert!(a.set_eq(&b));
        assert!(b.set_eq(&a));
    }

    #[test]
    fn set_eq_pads_to_union_scheme() {
        // {(1)} over (R.a) equals {(1, null)} over (R.a, S.b) — the
        // paper's union/comparison convention.
        let a = Relation::from_ints("R", &["a"], &[&[1]]);
        let schema = Arc::new(Schema::new(vec![Attr::parse("R.a"), Attr::parse("S.b")]).unwrap());
        let b = Relation::new(schema, vec![Tuple::new(vec![Value::Int(1), Value::Null])]).unwrap();
        assert!(a.set_eq(&b));
    }

    #[test]
    fn set_eq_distinguishes_different_sets() {
        let a = Relation::from_ints("R", &["a"], &[&[1]]);
        let b = Relation::from_ints("R", &["a"], &[&[2]]);
        let c = Relation::from_ints("R", &["a"], &[&[1], &[2]]);
        assert!(!a.set_eq(&b));
        assert!(!a.set_eq(&c));
    }

    #[test]
    fn extend_distinct_appends_in_stored_order() {
        let mut r = Relation::from_ints("R", &["a"], &[&[1], &[2]]);
        r.extend_distinct(vec![
            Tuple::new(vec![Value::Int(3)]),
            Tuple::new(vec![Value::Int(4)]),
        ]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.rows()[2], Tuple::new(vec![Value::Int(3)]));
        assert_eq!(r.rows()[3], Tuple::new(vec![Value::Int(4)]));
    }

    #[test]
    fn canonical_sorts_and_dedups() {
        let r = Relation::from_ints("R", &["a"], &[&[3], &[1], &[2]]);
        let c = r.canonical();
        let vals: Vec<i64> = c
            .rows()
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(v) => *v,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn renamed_changes_qualifier_only() {
        let r = Relation::from_ints("R", &["a"], &[&[1]]);
        let s = r.renamed("R2");
        assert!(s.schema().contains(&Attr::parse("R2.a")));
        assert_eq!(s.len(), 1);
        assert!(!r.set_eq(&s)); // different schemes → different sets
    }

    #[test]
    fn pad_to_same_scheme_is_clone() {
        let r = Relation::from_ints("R", &["a"], &[&[1]]);
        let p = r.pad_to(r.schema());
        assert_eq!(p, r);
    }

    #[test]
    fn display_prints_header_and_rows() {
        let r = Relation::from_ints("R", &["a"], &[&[1]]);
        let s = r.to_string();
        assert!(s.contains("R.a"));
        assert!(s.contains("(1)"));
    }
}
