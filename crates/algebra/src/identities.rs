//! Machine-checkable statements of the paper's algebraic identities
//! (§2.2 identities 1–10, §2.3 identities 11–13, §6.2 identities
//! 15–16), plus the full Fig. 3 derivation of identity 12.
//!
//! Each `identity_N` computes **both sides** of the identity on given
//! relations and returns them as a pair; callers assert
//! [`Relation::set_eq`]. Where the paper's identity has a precondition
//! (a strong predicate, a subset condition), the function documents it
//! — the identity is only guaranteed when the precondition holds, and
//! the test-suite also *witnesses failure* without it (Example 3).
//!
//! The paper's §2.1 conventions are built in: unions pad operands to
//! the union scheme, and antijoin results are padded when they meet a
//! union (identities 7–10) or a subsequent operator (identities 8–9).

use crate::error::AlgebraError;
use crate::ops::{antijoin, join, outerjoin, union};
use crate::predicate::Pred;
use crate::relation::Relation;
use crate::schema::Attr;
use crate::Query;

/// Both sides of an identity, ready for a `set_eq` assertion.
pub type Sides = (Relation, Relation);

/// Antijoin padded to `sch(X) ∪ sch(Y)` — the paper's convention when
/// an antijoin result flows into a union or a further operator.
///
/// # Errors
/// Propagates operator errors.
pub fn padded_antijoin(x: &Relation, y: &Relation, pxy: &Pred) -> Result<Relation, AlgebraError> {
    let aj = antijoin(x, y, pxy)?;
    let target = x.schema().union(y.schema());
    Ok(aj.pad_to(&target))
}

/// Identity 1 (join associativity, with optional cycle conjunct):
/// `(X − Y) −{Pxz ∧ Pyz} Z = X −{Pxy ∧ Pxz} (Y − Z)`.
///
/// When `pxz` is `Some`, the corresponding query graph has a cycle and
/// the conjunct moves between operators on reassociation.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_1(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pxz: Option<&Pred>,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    let outer_l = match pxz {
        Some(p) => p.clone().and(pyz.clone()),
        None => pyz.clone(),
    };
    let lhs = join(&join(x, y, pxy)?, z, &outer_l)?;
    let inner_r = pyz.clone();
    let outer_r = match pxz {
        Some(p) => pxy.clone().and(p.clone()),
        None => pxy.clone(),
    };
    let rhs = join(x, &join(y, z, &inner_r)?, &outer_r)?;
    Ok((lhs, rhs))
}

/// Identity 2: `(X − Y) ▷ Z = X − (Y ▷ Z)` where the antijoin
/// predicate `Pyz` references only `Y` (and `Z`).
///
/// # Errors
/// Propagates operator errors.
pub fn identity_2(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    let lhs = antijoin(&join(x, y, pxy)?, z, pyz)?;
    let rhs = join(x, &antijoin(y, z, pyz)?, pxy)?;
    Ok((lhs, rhs))
}

/// Identity 3: `(X ◁ Y) ▷ Z = X ◁ (Y ▷ Z)`; in left-deep form,
/// antijoins hanging off the same preserved relation commute:
/// `(Y ▷ X) ▷ Z = (Y ▷ Z) ▷ X`.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_3(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    let lhs = antijoin(&antijoin(y, x, pxy)?, z, pyz)?;
    let rhs = antijoin(&antijoin(y, z, pyz)?, x, pxy)?;
    Ok((lhs, rhs))
}

/// Identity 4: `X − (Y ∪ Z) = (X − Y) ∪ (X − Z)`.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_4(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    p: &Pred,
) -> Result<Sides, AlgebraError> {
    let lhs = join(x, &union(y, z)?, p)?;
    let rhs = union(&join(x, y, p)?, &join(x, z, p)?)?;
    Ok((lhs, rhs))
}

/// Identity 5: `(Y ∪ Z) − X = (Y − X) ∪ (Z − X)`.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_5(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    p: &Pred,
) -> Result<Sides, AlgebraError> {
    let lhs = join(&union(y, z)?, x, p)?;
    let rhs = union(&join(y, x, p)?, &join(z, x, p)?)?;
    Ok((lhs, rhs))
}

/// Identity 6: `(Y ∪ Z) ▷ X = (Y ▷ X) ∪ (Z ▷ X)`.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_6(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    p: &Pred,
) -> Result<Sides, AlgebraError> {
    let lhs = antijoin(&union(y, z)?, x, p)?;
    let rhs = union(&antijoin(y, x, p)?, &antijoin(z, x, p)?)?;
    Ok((lhs, rhs))
}

/// Identity 7 (pseudo-distributivity of antijoin):
/// `X ▷ Y = X ▷ (Y − Z ∪ Y ▷ Z)`.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_7(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    let lhs = antijoin(x, y, pxy)?;
    let yz = union(&join(y, z, pyz)?, &padded_antijoin(y, z, pyz)?)?;
    let rhs = antijoin(x, &yz, pxy)?;
    Ok((lhs, rhs))
}

/// Identity 8: `(X ▷ Y) − Z = ∅` when `Pyz` is strong w.r.t. `Y` —
/// the antijoin result (padded to include `Y`'s attributes, per
/// convention) carries nulls on every `Y` attribute, so a strong `Pyz`
/// never matches. Returns `(lhs, empty)`.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_8(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    let padded = padded_antijoin(x, y, pxy)?;
    let lhs = join(&padded, z, pyz)?;
    let rhs = Relation::empty(lhs.schema().clone());
    Ok((lhs, rhs))
}

/// Identity 9: `(X ▷ Y) ▷ Z = X ▷ Y` (padded form) when `Pyz` is
/// strong w.r.t. `Y`.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_9(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    let padded = padded_antijoin(x, y, pxy)?;
    let lhs = antijoin(&padded, z, pyz)?;
    Ok((lhs, padded))
}

/// Identity 10 (outerjoin expansion): `X → Y = (X − Y) ∪ (X ▷ Y)`.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_10(x: &Relation, y: &Relation, pxy: &Pred) -> Result<Sides, AlgebraError> {
    let lhs = outerjoin(x, y, pxy)?;
    let rhs = union(&join(x, y, pxy)?, &antijoin(x, y, pxy)?)?;
    Ok((lhs, rhs))
}

/// Identity 11: `(X − Y) → Z = X − (Y → Z)` — a join and an outerjoin
/// hanging off the join's operand reassociate unconditionally.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_11(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    let lhs = outerjoin(&join(x, y, pxy)?, z, pyz)?;
    let rhs = join(x, &outerjoin(y, z, pyz)?, pxy)?;
    Ok((lhs, rhs))
}

/// Identity 12: `(X → Y) → Z = X → (Y → Z)` **iff `Pyz` is strong
/// w.r.t. `Y`** (Example 3 witnesses failure otherwise).
///
/// # Errors
/// Propagates operator errors.
pub fn identity_12(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    let lhs = outerjoin(&outerjoin(x, y, pxy)?, z, pyz)?;
    let rhs = outerjoin(x, &outerjoin(y, z, pyz)?, pxy)?;
    Ok((lhs, rhs))
}

/// Identity 13: `(X ← Y) → Z = X ← (Y → Z)`; in left-deep form,
/// outerjoins hanging off the same preserved relation commute:
/// `(Y → X) → Z = (Y → Z) → X`. Unconditional.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_13(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    let lhs = outerjoin(&outerjoin(y, x, pxy)?, z, pyz)?;
    let rhs = outerjoin(&outerjoin(y, z, pyz)?, x, pxy)?;
    Ok((lhs, rhs))
}

/// Identity 15 (§6.2): `X → (Y − Z) = (X → Y) GOJ[sch(X)] Z`, assuming
/// duplicate-free relations and strong `Pxy`, `Pyz`.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_15(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    let lhs = outerjoin(x, &join(y, z, pyz)?, pxy)?;
    let xy = outerjoin(x, y, pxy)?;
    let sx: Vec<Attr> = x.schema().attrs().to_vec();
    let rhs = crate::goj::goj(&xy, z, pyz, &sx)?;
    Ok((lhs, rhs))
}

/// Identity 16 (§6.2): `X − (Y GOJ[S] Z) = (X − Y) GOJ[S ∪ sch(X)] Z`,
/// provided `S ⊆ sch(Y)` and `S` contains all the `Y` attributes the
/// `X`–`Y` join references; duplicate-free relations, strong
/// predicates.
///
/// # Errors
/// Propagates operator errors (including a bad subset).
pub fn identity_16(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
    s: &[Attr],
) -> Result<Sides, AlgebraError> {
    let lhs = join(x, &crate::goj::goj(y, z, pyz, s)?, pxy)?;
    let xy = join(x, y, pxy)?;
    let mut s_ext: Vec<Attr> = s.to_vec();
    s_ext.extend(x.schema().attrs().iter().cloned());
    let rhs = crate::goj::goj(&xy, z, pyz, &s_ext)?;
    Ok((lhs, rhs))
}

/// Semijoin analogue of identity 2 (§6.3's fragment):
/// `(X − Y) ⋉ Z = X − (Y ⋉ Z)` where the semijoin predicate
/// references only `Y` (and `Z`).
///
/// # Errors
/// Propagates operator errors.
pub fn identity_sj2(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    use crate::ops::semijoin;
    let lhs = semijoin(&join(x, y, pxy)?, z, pyz)?;
    let rhs = join(x, &semijoin(y, z, pyz)?, pxy)?;
    Ok((lhs, rhs))
}

/// Semijoin analogue of identity 3: semijoins hanging off the same
/// filtered relation commute: `(Y ⋉ X) ⋉ Z = (Y ⋉ Z) ⋉ X`.
///
/// # Errors
/// Propagates operator errors.
pub fn identity_sj3(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    use crate::ops::semijoin;
    let lhs = semijoin(&semijoin(y, x, pxy)?, z, pyz)?;
    let rhs = semijoin(&semijoin(y, z, pyz)?, x, pxy)?;
    Ok((lhs, rhs))
}

/// The *failing* semijoin-in-series shape (§6.3): `X ⋉ (Y ⋉ Z)`
/// versus the naive "reassociation" `(X ⋉ Y) ⋉ Z` — the latter is not
/// even well-typed in general (the `P_yz` predicate references
/// attributes the first semijoin consumed), so we return the only
/// comparable pair: `X ⋉ (Y ⋉ Z)` against `X ⋉ Y` (the result of
/// *dropping* the inner filter), which differ whenever the `Z` filter
/// actually bites — the executable content of "semijoins in series do
/// not reassociate".
///
/// # Errors
/// Propagates operator errors.
pub fn semijoin_series_shape(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Sides, AlgebraError> {
    use crate::ops::semijoin;
    let lhs = semijoin(x, &semijoin(y, z, pyz)?, pxy)?;
    let rhs = semijoin(x, y, pxy)?;
    Ok((lhs, rhs))
}

/// Query-tree pair for identity 11, for use by the transform machinery
/// tests: `((x − y) → z, x − (y → z))`.
#[must_use]
pub fn identity_11_queries(x: Query, y: Query, z: Query, pxy: Pred, pyz: Pred) -> (Query, Query) {
    let lhs = x
        .clone()
        .join(y.clone(), pxy.clone())
        .outerjoin(z.clone(), pyz.clone());
    let rhs = x.join(y.outerjoin(z, pyz), pxy);
    (lhs, rhs)
}

/// Query-tree pair for identity 12: `((x → y) → z, x → (y → z))`.
#[must_use]
pub fn identity_12_queries(x: Query, y: Query, z: Query, pxy: Pred, pyz: Pred) -> (Query, Query) {
    let lhs = x
        .clone()
        .outerjoin(y.clone(), pxy.clone())
        .outerjoin(z.clone(), pyz.clone());
    let rhs = x.outerjoin(y.outerjoin(z, pyz), pxy);
    (lhs, rhs)
}

/// Query-tree pair for identity 13 in left-deep form:
/// `((y → x) → z, (y → z) → x)`.
#[must_use]
pub fn identity_13_queries(x: Query, y: Query, z: Query, pxy: Pred, pyz: Pred) -> (Query, Query) {
    let lhs = y
        .clone()
        .outerjoin(x.clone(), pxy.clone())
        .outerjoin(z.clone(), pyz.clone());
    let rhs = y.outerjoin(z, pyz).outerjoin(x, pxy);
    (lhs, rhs)
}

/// The Fig. 3 derivation of identity 12: returns the sequence of
/// expressions' values, from `(X → Y) → Z` down to `X → (Y → Z)`.
/// Under a strong `Pyz` every consecutive pair must be set-equal.
///
/// Steps (paper's own chain):
/// 1. `(X → Y) → Z`
/// 2. expand outer OJ (eqn 10)
/// 3. expand inner OJ (eqn 10)
/// 4. distribute, kill `(X ▷ Y) − Z` and fix `(X ▷ Y) ▷ Z` (eqns 4–6, 8, 9),
///    reassociate join/antijoin (eqns 1, 2)
/// 5. complete by pseudo-distributivity of antijoin (eqn 7)
/// 6. factor out join from union (eqn 4)
/// 7. rewrite as outerjoin (eqn 10) — `X → (Y → Z)`
///
/// # Errors
/// Propagates operator errors.
pub fn fig3_derivation(
    x: &Relation,
    y: &Relation,
    z: &Relation,
    pxy: &Pred,
    pyz: &Pred,
) -> Result<Vec<Relation>, AlgebraError> {
    let mut steps = Vec::new();

    // Step 1: (X → Y) → Z.
    let xy = outerjoin(x, y, pxy)?;
    steps.push(outerjoin(&xy, z, pyz)?);

    // Step 2: ((X → Y) − Z) ∪ ((X → Y) ▷ Z).
    steps.push(union(&join(&xy, z, pyz)?, &padded_antijoin(&xy, z, pyz)?)?);

    // Step 3: expand the inner outerjoin on both union branches.
    let xy_expanded = union(&join(x, y, pxy)?, &padded_antijoin(x, y, pxy)?)?;
    steps.push(union(
        &join(&xy_expanded, z, pyz)?,
        &padded_antijoin(&xy_expanded, z, pyz)?,
    )?);

    // Step 4: distribute; (X▷Y)−Z = ∅ and (X▷Y)▷Z = X▷Y by strongness;
    // reassociate: X − (Y − Z) ∪ X − (Y ▷ Z) ∪ X ▷ Y.
    let a = join(x, &join(y, z, pyz)?, pxy)?;
    let b = join(x, &padded_antijoin(y, z, pyz)?, pxy)?;
    let c = padded_antijoin(x, y, pxy)?;
    steps.push(union(&union(&a, &b)?, &c)?);

    // Step 5: X ▷ Y = X ▷ (Y − Z ∪ Y ▷ Z) (eqn 7).
    let yz = union(&join(y, z, pyz)?, &padded_antijoin(y, z, pyz)?)?;
    let c5 = {
        let aj = antijoin(x, &yz, pxy)?;
        // Pad to the full output scheme for the union.
        aj
    };
    steps.push(union(&union(&a, &b)?, &c5)?);

    // Step 6: factor the join out of the union: X − (Y−Z ∪ Y▷Z) ∪ X ▷ (…).
    let joined = join(x, &yz, pxy)?;
    steps.push(union(&joined, &c5)?);

    // Step 7: rewrite as outerjoin: X → (Y → Z).
    steps.push(outerjoin(x, &outerjoin(y, z, pyz)?, pxy)?);

    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn x() -> Relation {
        Relation::from_ints("X", &["a"], &[&[1], &[2], &[5]])
    }
    fn y() -> Relation {
        Relation::from_ints("Y", &["b", "b2"], &[&[1, 7], &[3, 8], &[5, 9]])
    }
    fn z() -> Relation {
        Relation::from_ints("Z", &["c"], &[&[7], &[9], &[11]])
    }
    fn pxy() -> Pred {
        Pred::eq_attr("X.a", "Y.b")
    }
    fn pyz() -> Pred {
        Pred::eq_attr("Y.b2", "Z.c")
    }

    fn assert_identity(sides: Sides, name: &str) {
        assert!(
            sides.0.set_eq(&sides.1),
            "{name} failed:\nLHS:\n{}\nRHS:\n{}",
            sides.0,
            sides.1
        );
    }

    #[test]
    fn identity_1_plain_associativity() {
        let s = identity_1(&x(), &y(), &z(), &pxy(), None, &pyz()).unwrap();
        assert_identity(s, "identity 1");
    }

    #[test]
    fn identity_1_with_cycle_conjunct() {
        // Add a direct X–Z conjunct: the graph is a triangle.
        let pxz = Pred::cmp_attr("X.a", crate::CmpOp::Lt, "Z.c");
        let s = identity_1(&x(), &y(), &z(), &pxy(), Some(&pxz), &pyz()).unwrap();
        assert_identity(s, "identity 1 (cycle)");
    }

    #[test]
    fn identities_2_and_3() {
        assert_identity(
            identity_2(&x(), &y(), &z(), &pxy(), &pyz()).unwrap(),
            "identity 2",
        );
        assert_identity(
            identity_3(&x(), &y(), &z(), &pxy(), &pyz()).unwrap(),
            "identity 3",
        );
    }

    #[test]
    fn identities_4_to_6_distributivity() {
        // Y and Z on the same scheme to make the unions natural.
        let y1 = Relation::from_ints("Y", &["b", "b2"], &[&[1, 7], &[3, 8]]);
        let y2 = Relation::from_ints("Y", &["b", "b2"], &[&[5, 9], &[1, 7]]);
        assert_identity(identity_4(&x(), &y1, &y2, &pxy()).unwrap(), "identity 4");
        assert_identity(identity_5(&x(), &y1, &y2, &pxy()).unwrap(), "identity 5");
        assert_identity(identity_6(&x(), &y1, &y2, &pxy()).unwrap(), "identity 6");
    }

    #[test]
    fn identity_7_pseudo_distributivity() {
        assert_identity(
            identity_7(&x(), &y(), &z(), &pxy(), &pyz()).unwrap(),
            "identity 7",
        );
    }

    #[test]
    fn identities_8_and_9_with_strong_predicate() {
        let (lhs, empty) = identity_8(&x(), &y(), &z(), &pxy(), &pyz()).unwrap();
        assert!(lhs.set_eq(&empty), "identity 8: expected empty, got\n{lhs}");
        assert_identity(
            identity_9(&x(), &y(), &z(), &pxy(), &pyz()).unwrap(),
            "identity 9",
        );
    }

    #[test]
    fn identity_10_expansion() {
        assert_identity(identity_10(&x(), &y(), &pxy()).unwrap(), "identity 10");
    }

    #[test]
    fn reassociation_identities_11_to_13() {
        assert_identity(
            identity_11(&x(), &y(), &z(), &pxy(), &pyz()).unwrap(),
            "identity 11",
        );
        assert_identity(
            identity_12(&x(), &y(), &z(), &pxy(), &pyz()).unwrap(),
            "identity 12",
        );
        assert_identity(
            identity_13(&x(), &y(), &z(), &pxy(), &pyz()).unwrap(),
            "identity 13",
        );
    }

    #[test]
    fn identity_12_fails_for_nonstrong_predicate_example_3() {
        // Paper Example 3: A = {(a)}, B = {(b, null)}, C = {(c)};
        // Pab = (A.attr1 = B.attr1), Pbc = (B.attr2 = C.attr1 OR
        // B.attr2 IS NULL). Pbc is NOT strong w.r.t. B.
        let a = Relation::from_values("A", &["attr1"], vec![vec![Value::Int(10)]]);
        let b = Relation::from_values(
            "B",
            &["attr1", "attr2"],
            vec![vec![Value::Int(20), Value::Null]],
        );
        let c = Relation::from_values("C", &["attr1"], vec![vec![Value::Int(30)]]);
        let pab = Pred::eq_attr("A.attr1", "B.attr1");
        let pbc = Pred::eq_attr("B.attr2", "C.attr1").or(Pred::is_null("B.attr2"));
        assert!(!pbc.is_strong_on_rel("B"));

        let (lhs, rhs) = identity_12(&a, &b, &c, &pab, &pbc).unwrap();
        // (A → B) → C: A→B pads B entirely (no match), then B.attr2 is
        // null satisfies Pbc ⇒ (a, -, -, c). A → (B → C): B→C keeps
        // (b,-,c), join with A fails ⇒ (a, -, -, -).
        assert!(!lhs.set_eq(&rhs), "Example 3 should separate the two sides");
        assert_eq!(lhs.len(), 1);
        assert_eq!(rhs.len(), 1);
        // LHS row ends with C value 30; RHS row ends with null.
        let lhs_canon = lhs.canonical();
        let rhs_canon = rhs.canonical();
        assert!(lhs_canon.rows()[0].values().contains(&Value::Int(30)));
        assert!(!rhs_canon.rows()[0].values().contains(&Value::Int(30)));
    }

    #[test]
    fn identity_15_goj_reassociation() {
        assert_identity(
            identity_15(&x(), &y(), &z(), &pxy(), &pyz()).unwrap(),
            "identity 15",
        );
    }

    #[test]
    fn identity_16_goj_reassociation() {
        // S must contain the Y attributes referenced by Pxy: {Y.b}.
        let s = vec![Attr::parse("Y.b"), Attr::parse("Y.b2")];
        assert_identity(
            identity_16(&x(), &y(), &z(), &pxy(), &pyz(), &s).unwrap(),
            "identity 16",
        );
    }

    #[test]
    fn fig3_derivation_all_steps_equal() {
        let steps = fig3_derivation(&x(), &y(), &z(), &pxy(), &pyz()).unwrap();
        assert_eq!(steps.len(), 7);
        for (i, w) in steps.windows(2).enumerate() {
            assert!(
                w[0].set_eq(&w[1]),
                "Fig. 3 step {} → {} not equal:\n{}\nvs\n{}",
                i + 1,
                i + 2,
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn query_pair_builders_agree_with_relation_forms() {
        let mut db = crate::Database::new();
        db.insert(x());
        db.insert(y());
        db.insert(z());
        let (lq, rq) = identity_12_queries(
            Query::rel("X"),
            Query::rel("Y"),
            Query::rel("Z"),
            pxy(),
            pyz(),
        );
        let (lr, rr) = identity_12(&x(), &y(), &z(), &pxy(), &pyz()).unwrap();
        assert!(lq.eval(&db).unwrap().set_eq(&lr));
        assert!(rq.eval(&db).unwrap().set_eq(&rr));

        let (lq, rq) = identity_11_queries(
            Query::rel("X"),
            Query::rel("Y"),
            Query::rel("Z"),
            pxy(),
            pyz(),
        );
        assert!(lq.eval(&db).unwrap().set_eq(&rq.eval(&db).unwrap()));

        let (lq, rq) = identity_13_queries(
            Query::rel("X"),
            Query::rel("Y"),
            Query::rel("Z"),
            Pred::eq_attr("Y.b", "X.a"),
            pyz(),
        );
        assert!(lq.eval(&db).unwrap().set_eq(&rq.eval(&db).unwrap()));
    }
}
