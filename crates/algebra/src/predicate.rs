//! Predicates: simple and join predicates (§1.2) with three-valued
//! evaluation and the paper's *strongness* analysis (§2.1).
//!
//! > *"A predicate `p` is strong with respect to a set `S` of
//! > attributes if, whenever a tuple `t` has a null value for all
//! > attributes in `S`, `p(t) = False`."*
//!
//! Under three-valued logic a tuple passes a filter only when the
//! predicate is [`Truth::True`], so we implement strongness as
//! *never-True-when-all-null*: a sound syntactic analysis
//! ([`Pred::is_strong`]) computed by the mutually recursive pair
//! never-true / never-false (needed to handle `NOT`). The analysis is
//! conservative (it may say "not strong" for an exotic predicate that
//! is semantically strong) but is exact for the comparison/`IS NULL`
//! fragment the paper considers, which the test-suite verifies against
//! brute-force evaluation.

use crate::error::AlgebraError;
use crate::schema::{Attr, Schema};
use crate::truth::Truth;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering.
    #[must_use]
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with operands swapped (`a < b` ⇔ `b > a`).
    #[must_use]
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A scalar term: an attribute reference or a literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scalar {
    /// A qualified attribute reference.
    Attr(Attr),
    /// A literal value.
    Lit(Value),
}

impl Scalar {
    /// Attribute-reference shorthand, parsing `"rel.attr"`.
    #[must_use]
    pub fn attr(qualified: &str) -> Scalar {
        Scalar::Attr(Attr::parse(qualified))
    }

    /// Integer-literal shorthand.
    #[must_use]
    pub fn int(v: i64) -> Scalar {
        Scalar::Lit(Value::Int(v))
    }

    fn eval<'a>(&'a self, t: &'a Tuple, schema: &Schema) -> Result<&'a Value, AlgebraError> {
        match self {
            Scalar::Lit(v) => Ok(v),
            Scalar::Attr(a) => {
                let i = schema
                    .index_of(a)
                    .ok_or_else(|| AlgebraError::UnknownAttr {
                        attr: a.to_string(),
                        schema: schema.to_string(),
                    })?;
                Ok(t.get(i))
            }
        }
    }

    fn attr_ref(&self) -> Option<&Attr> {
        match self {
            Scalar::Attr(a) => Some(a),
            Scalar::Lit(_) => None,
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Attr(a) => write!(f, "{a}"),
            Scalar::Lit(v) => write!(f, "{v}"),
        }
    }
}

/// A predicate over tuples, evaluated in three-valued logic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pred {
    /// A comparison between two scalars.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Scalar,
        /// Right operand.
        rhs: Scalar,
    },
    /// `scalar IS NULL`.
    IsNull(Scalar),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation (Kleene).
    Not(Box<Pred>),
    /// A constant truth value.
    Const(Truth),
}

impl Pred {
    /// `lhs op rhs` from scalars.
    #[must_use]
    pub fn cmp(op: CmpOp, lhs: Scalar, rhs: Scalar) -> Pred {
        Pred::Cmp { op, lhs, rhs }
    }

    /// Equality between two attributes given as `"rel.attr"` strings —
    /// the paper's standard equijoin predicate.
    #[must_use]
    pub fn eq_attr(a: &str, b: &str) -> Pred {
        Pred::cmp(CmpOp::Eq, Scalar::attr(a), Scalar::attr(b))
    }

    /// Comparison between two attributes.
    #[must_use]
    pub fn cmp_attr(a: &str, op: CmpOp, b: &str) -> Pred {
        Pred::cmp(op, Scalar::attr(a), Scalar::attr(b))
    }

    /// `attr op literal` restriction predicate.
    #[must_use]
    pub fn cmp_lit(a: &str, op: CmpOp, v: impl Into<Value>) -> Pred {
        Pred::cmp(op, Scalar::attr(a), Scalar::Lit(v.into()))
    }

    /// `attr IS NULL`.
    #[must_use]
    pub fn is_null(a: &str) -> Pred {
        Pred::IsNull(Scalar::attr(a))
    }

    /// Conjunction with constant folding.
    #[must_use]
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::Const(Truth::True), p) | (p, Pred::Const(Truth::True)) => p,
            (Pred::Const(Truth::False), _) | (_, Pred::Const(Truth::False)) => {
                Pred::Const(Truth::False)
            }
            (a, b) => Pred::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction with constant folding.
    #[must_use]
    pub fn or(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::Const(Truth::False), p) | (p, Pred::Const(Truth::False)) => p,
            (Pred::Const(Truth::True), _) | (_, Pred::Const(Truth::True)) => {
                Pred::Const(Truth::True)
            }
            (a, b) => Pred::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        match self {
            Pred::Const(t) => Pred::Const(t.not()),
            Pred::Not(p) => *p,
            p => Pred::Not(Box::new(p)),
        }
    }

    /// The always-true predicate.
    #[must_use]
    pub fn always() -> Pred {
        Pred::Const(Truth::True)
    }

    /// Evaluate against a tuple on the given scheme.
    ///
    /// # Errors
    /// [`AlgebraError::UnknownAttr`] when the predicate references an
    /// attribute outside the scheme.
    pub fn eval(&self, t: &Tuple, schema: &Schema) -> Result<Truth, AlgebraError> {
        match self {
            Pred::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(t, schema)?;
                let r = rhs.eval(t, schema)?;
                Ok(match l.cmp3(r) {
                    None => Truth::Unknown,
                    Some(ord) => Truth::from_bool(op.test(ord)),
                })
            }
            Pred::IsNull(s) => Ok(Truth::from_bool(s.eval(t, schema)?.is_null())),
            Pred::And(a, b) => Ok(a.eval(t, schema)?.and(b.eval(t, schema)?)),
            Pred::Or(a, b) => Ok(a.eval(t, schema)?.or(b.eval(t, schema)?)),
            Pred::Not(p) => Ok(p.eval(t, schema)?.not()),
            Pred::Const(t) => Ok(*t),
        }
    }

    /// All attributes referenced.
    #[must_use]
    pub fn attrs(&self) -> BTreeSet<Attr> {
        let mut out = BTreeSet::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs(&self, out: &mut BTreeSet<Attr>) {
        match self {
            Pred::Cmp { lhs, rhs, .. } => {
                if let Some(a) = lhs.attr_ref() {
                    out.insert(a.clone());
                }
                if let Some(a) = rhs.attr_ref() {
                    out.insert(a.clone());
                }
            }
            Pred::IsNull(s) => {
                if let Some(a) = s.attr_ref() {
                    out.insert(a.clone());
                }
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Pred::Not(p) => p.collect_attrs(out),
            Pred::Const(_) => {}
        }
    }

    /// The ground relations referenced.
    #[must_use]
    pub fn rels(&self) -> BTreeSet<String> {
        self.attrs().iter().map(|a| a.rel().to_owned()).collect()
    }

    /// Split into top-level conjuncts (flattening nested `AND`s).
    #[must_use]
    pub fn conjuncts(&self) -> Vec<Pred> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts(&self, out: &mut Vec<Pred>) {
        match self {
            Pred::And(a, b) => {
                a.collect_conjuncts(out);
                b.collect_conjuncts(out);
            }
            Pred::Const(Truth::True) => {}
            p => out.push(p.clone()),
        }
    }

    /// Rebuild a predicate from conjuncts (empty list ⇒ `always`).
    #[must_use]
    pub fn from_conjuncts(conjuncts: impl IntoIterator<Item = Pred>) -> Pred {
        conjuncts
            .into_iter()
            .fold(Pred::always(), |acc, c| acc.and(c))
    }

    /// Strongness (§2.1): is this predicate guaranteed never to be
    /// `True` on a tuple whose attributes in `null_set` are **all**
    /// null? Sound (never claims strongness falsely); exact on the
    /// comparison / `IS NULL` / boolean fragment.
    #[must_use]
    pub fn is_strong(&self, null_set: &BTreeSet<Attr>) -> bool {
        self.never_true(null_set)
    }

    /// Strongness with respect to a ground relation: strong on the set
    /// of attributes the predicate references from `rel` (the paper's
    /// "strong with respect to the set of attributes it references
    /// from X"). A predicate referencing nothing from `rel` is not
    /// strong with respect to it (unless it is never satisfiable).
    #[must_use]
    pub fn is_strong_on_rel(&self, rel: &str) -> bool {
        self.is_strong_on_rels(&BTreeSet::from([rel.to_owned()]))
    }

    /// Strongness with respect to a set of ground relations (strong on
    /// all attributes referenced from any of them).
    #[must_use]
    pub fn is_strong_on_rels(&self, rels: &BTreeSet<String>) -> bool {
        let referenced: BTreeSet<Attr> = self
            .attrs()
            .into_iter()
            .filter(|a| rels.contains(a.rel()))
            .collect();
        if referenced.is_empty() {
            // Vacuous case: "all referenced attributes null" holds for
            // every tuple, so only an unsatisfiable predicate is strong.
            return self.never_true(&referenced);
        }
        self.never_true(&referenced)
    }

    /// Never evaluates to `True` when all attributes in `s` are null.
    fn never_true(&self, s: &BTreeSet<Attr>) -> bool {
        match self {
            Pred::Cmp { op, lhs, rhs } => {
                let touches = |x: &Scalar| x.attr_ref().is_some_and(|a| s.contains(a));
                let lit_null = |x: &Scalar| matches!(x, Scalar::Lit(v) if v.is_null());
                if touches(lhs) || touches(rhs) || lit_null(lhs) || lit_null(rhs) {
                    return true; // comparison with a null is Unknown
                }
                match (lhs, rhs) {
                    (Scalar::Lit(a), Scalar::Lit(b)) => match a.cmp3(b) {
                        None => true,
                        Some(ord) => !op.test(ord),
                    },
                    _ => false,
                }
            }
            Pred::IsNull(x) => match x {
                // Whether or not the attribute is in the nulled set,
                // IS NULL may evaluate to True — never strong.
                Scalar::Attr(_) => false,
                Scalar::Lit(v) => !v.is_null(),
            },
            Pred::And(a, b) => a.never_true(s) || b.never_true(s),
            Pred::Or(a, b) => a.never_true(s) && b.never_true(s),
            Pred::Not(p) => p.never_false(s),
            Pred::Const(t) => *t != Truth::True,
        }
    }

    /// Never evaluates to `False` when all attributes in `s` are null.
    fn never_false(&self, s: &BTreeSet<Attr>) -> bool {
        match self {
            Pred::Cmp { op, lhs, rhs } => {
                let touches = |x: &Scalar| x.attr_ref().is_some_and(|a| s.contains(a));
                let lit_null = |x: &Scalar| matches!(x, Scalar::Lit(v) if v.is_null());
                if touches(lhs) || touches(rhs) || lit_null(lhs) || lit_null(rhs) {
                    return true; // Unknown, not False
                }
                match (lhs, rhs) {
                    (Scalar::Lit(a), Scalar::Lit(b)) => match a.cmp3(b) {
                        None => true,
                        Some(ord) => op.test(ord),
                    },
                    _ => false,
                }
            }
            Pred::IsNull(x) => match x {
                Scalar::Attr(a) => s.contains(a), // null attr ⇒ True
                Scalar::Lit(v) => v.is_null(),
            },
            Pred::And(a, b) => a.never_false(s) && b.never_false(s),
            Pred::Or(a, b) => a.never_false(s) || b.never_false(s),
            Pred::Not(p) => p.never_true(s),
            Pred::Const(t) => *t != Truth::False,
        }
    }

    /// Whether every top-level conjunct references attributes from both
    /// relation sets — the paper's `⊙` convention ("any conjunct in the
    /// operator has to reference attributes in both X and Y").
    #[must_use]
    pub fn conjuncts_span(&self, left: &BTreeSet<String>, right: &BTreeSet<String>) -> bool {
        self.conjuncts().iter().all(|c| {
            let rels = c.rels();
            rels.iter().any(|r| left.contains(r)) && rels.iter().any(|r| right.contains(r))
        })
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Pred::IsNull(s) => write!(f, "{s} is null"),
            Pred::And(a, b) => write!(f, "({a} and {b})"),
            Pred::Or(a, b) => write!(f, "({a} or {b})"),
            Pred::Not(p) => write!(f, "not ({p})"),
            Pred::Const(t) => write!(f, "{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Attr::parse("R.a"),
            Attr::parse("R.b"),
            Attr::parse("S.c"),
        ])
        .unwrap()
    }

    fn tup(vals: &[Option<i64>]) -> Tuple {
        vals.iter()
            .map(|v| v.map_or(Value::Null, Value::Int))
            .collect()
    }

    #[test]
    fn eval_comparisons() {
        let s = schema();
        let p = Pred::eq_attr("R.a", "S.c");
        assert_eq!(
            p.eval(&tup(&[Some(1), Some(0), Some(1)]), &s).unwrap(),
            Truth::True
        );
        assert_eq!(
            p.eval(&tup(&[Some(1), Some(0), Some(2)]), &s).unwrap(),
            Truth::False
        );
        assert_eq!(
            p.eval(&tup(&[None, Some(0), Some(2)]), &s).unwrap(),
            Truth::Unknown
        );
        let lt = Pred::cmp_attr("R.a", CmpOp::Lt, "S.c");
        assert_eq!(
            lt.eval(&tup(&[Some(1), None, Some(2)]), &s).unwrap(),
            Truth::True
        );
    }

    #[test]
    fn eval_is_null_and_boolean_ops() {
        let s = schema();
        let p = Pred::is_null("R.a").or(Pred::eq_attr("R.a", "S.c"));
        assert_eq!(
            p.eval(&tup(&[None, None, Some(1)]), &s).unwrap(),
            Truth::True
        );
        let q = Pred::eq_attr("R.a", "S.c").not();
        assert_eq!(
            q.eval(&tup(&[None, None, Some(1)]), &s).unwrap(),
            Truth::Unknown
        );
    }

    #[test]
    fn unknown_attr_errors() {
        let s = schema();
        let p = Pred::eq_attr("T.z", "R.a");
        assert!(matches!(
            p.eval(&tup(&[Some(1), Some(1), Some(1)]), &s),
            Err(AlgebraError::UnknownAttr { .. })
        ));
    }

    #[test]
    fn equality_is_strong_on_both_sides() {
        let p = Pred::eq_attr("R.a", "S.c");
        assert!(p.is_strong_on_rel("R"));
        assert!(p.is_strong_on_rel("S"));
    }

    #[test]
    fn example3_predicate_is_not_strong() {
        // P_bc = (B.attr2 = C.attr1 or B.attr2 is null) — paper Example 3.
        let p = Pred::eq_attr("B.attr2", "C.attr1").or(Pred::is_null("B.attr2"));
        assert!(!p.is_strong_on_rel("B"));
        // Nulling only C.attr1 leaves "B.attr2 is null" free to be True,
        // so the disjunction is not strong on C either.
        assert!(!p.is_strong_on_rel("C"));
    }

    #[test]
    fn not_of_equality_is_strong() {
        // NOT (R.a = S.c) is Unknown when R.a is null ⇒ never True ⇒ strong.
        let p = Pred::eq_attr("R.a", "S.c").not();
        assert!(p.is_strong_on_rel("R"));
    }

    #[test]
    fn not_of_is_null_is_strong() {
        // NOT (R.a IS NULL) is False when R.a is null ⇒ strong on R.
        let p = Pred::is_null("R.a").not();
        assert!(p.is_strong_on_rel("R"));
    }

    #[test]
    fn is_null_is_not_strong() {
        assert!(!Pred::is_null("R.a").is_strong_on_rel("R"));
    }

    #[test]
    fn and_strong_if_either_conjunct_strong() {
        let p = Pred::eq_attr("R.a", "S.c").and(Pred::is_null("R.b"));
        assert!(p.is_strong_on_rel("R"));
        assert!(p.is_strong_on_rel("S"));
        let q = Pred::is_null("R.a").and(Pred::is_null("R.b"));
        assert!(!q.is_strong_on_rel("R"));
    }

    #[test]
    fn strongness_matches_semantics_on_null_tuple() {
        // Brute-force check: for each predicate, nulling all R-attrs
        // must give non-True evaluation iff analysis says strong.
        let s = schema();
        let preds = [
            Pred::eq_attr("R.a", "S.c"),
            Pred::is_null("R.a"),
            Pred::eq_attr("R.a", "S.c").or(Pred::is_null("R.a")),
            Pred::eq_attr("R.a", "S.c").not(),
            Pred::cmp_lit("R.b", CmpOp::Gt, 10),
        ];
        for p in preds {
            let strong = p.is_strong_on_rel("R");
            // Evaluate with all R attrs null, across a few S values.
            let mut can_be_true = false;
            for c in [Some(0), Some(1), None] {
                let t = tup(&[None, None, c]);
                if p.eval(&t, &s).unwrap().is_true() {
                    can_be_true = true;
                }
            }
            assert_eq!(strong, !can_be_true, "predicate {p}");
        }
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let p = Pred::eq_attr("R.a", "S.c").and(Pred::eq_attr("R.b", "S.c").and(Pred::cmp_lit(
            "R.a",
            CmpOp::Gt,
            0,
        )));
        assert_eq!(p.conjuncts().len(), 3);
        let rebuilt = Pred::from_conjuncts(p.conjuncts());
        assert_eq!(rebuilt.conjuncts().len(), 3);
    }

    #[test]
    fn from_conjuncts_empty_is_always() {
        assert_eq!(Pred::from_conjuncts([]), Pred::always());
    }

    #[test]
    fn constant_folding() {
        assert_eq!(
            Pred::always().and(Pred::eq_attr("R.a", "S.c")),
            Pred::eq_attr("R.a", "S.c")
        );
        assert_eq!(
            Pred::Const(Truth::False).or(Pred::eq_attr("R.a", "S.c")),
            Pred::eq_attr("R.a", "S.c")
        );
        assert_eq!(Pred::always().not(), Pred::Const(Truth::False));
        assert_eq!(
            Pred::eq_attr("R.a", "S.c").not().not(),
            Pred::eq_attr("R.a", "S.c")
        );
    }

    #[test]
    fn conjuncts_span_checks_both_sides() {
        let l: BTreeSet<String> = ["R".to_owned()].into();
        let r: BTreeSet<String> = ["S".to_owned()].into();
        assert!(Pred::eq_attr("R.a", "S.c").conjuncts_span(&l, &r));
        assert!(!Pred::cmp_lit("R.a", CmpOp::Gt, 0).conjuncts_span(&l, &r));
        let mixed = Pred::eq_attr("R.a", "S.c").and(Pred::cmp_lit("R.b", CmpOp::Gt, 0));
        assert!(!mixed.conjuncts_span(&l, &r));
    }

    #[test]
    fn attrs_and_rels() {
        let p = Pred::eq_attr("R.a", "S.c").and(Pred::is_null("R.b"));
        assert_eq!(p.attrs().len(), 3);
        let rels = p.rels();
        assert!(rels.contains("R") && rels.contains("S"));
    }

    #[test]
    fn display_round_trippable_by_eye() {
        let p = Pred::eq_attr("R.a", "S.c").and(Pred::is_null("R.b"));
        assert_eq!(p.to_string(), "(R.a = S.c and R.b is null)");
    }

    #[test]
    fn literal_only_predicates() {
        let s = schema();
        let t = tup(&[Some(1), Some(1), Some(1)]);
        let p = Pred::cmp(CmpOp::Lt, Scalar::int(1), Scalar::int(2));
        assert_eq!(p.eval(&t, &s).unwrap(), Truth::True);
        // Unsatisfiable literal comparison is strong w.r.t. anything.
        let q = Pred::cmp(CmpOp::Lt, Scalar::int(2), Scalar::int(1));
        assert!(q.is_strong(&BTreeSet::new()));
    }

    #[test]
    fn flipped_ops() {
        use std::cmp::Ordering::*;
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for ord in [Less, Equal, Greater] {
                assert_eq!(op.test(ord), op.flipped().test(ord.reverse()));
            }
        }
    }
}
