//! Tuples: assignments of values to the attributes of a scheme (§1.2).

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A tuple over some scheme. The scheme itself lives on the enclosing
/// [`crate::Relation`]; a `Tuple` is just the value vector in the
/// scheme's layout order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(values.into_boxed_slice())
    }

    /// The all-null tuple on a scheme of the given width —
    /// `null_S` in the paper.
    #[must_use]
    pub fn nulls(width: usize) -> Tuple {
        Tuple(vec![Value::Null; width].into_boxed_slice())
    }

    /// Number of values.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values in layout order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at column `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Concatenation `(t1, t2)` of tuples on disjoint schemes (§1.2).
    #[must_use]
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple::new(v)
    }

    /// Padding (§1.2): extend this tuple, defined on `from`, to the
    /// larger scheme `to` by assigning null to every attribute of `to`
    /// not present in `from`. Attributes shared by both keep their
    /// value; `to`'s layout order decides the output order.
    #[must_use]
    pub fn pad(&self, from: &Schema, to: &Schema) -> Tuple {
        debug_assert_eq!(self.arity(), from.len());
        let values = to
            .attrs()
            .iter()
            .map(|a| from.index_of(a).map_or(Value::Null, |i| self.0[i].clone()))
            .collect::<Vec<_>>();
        Tuple::new(values)
    }

    /// Project onto the given column positions.
    #[must_use]
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Whether every value is null (a fully padded tuple).
    #[must_use]
    pub fn all_null(&self) -> bool {
        self.0.iter().all(Value::is_null)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attr, Schema};

    fn ints(vs: &[i64]) -> Tuple {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn concat_orders_left_then_right() {
        let t = ints(&[1, 2]).concat(&ints(&[3]));
        assert_eq!(t.values(), &[Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(t.arity(), 3);
    }

    #[test]
    fn nulls_and_all_null() {
        let t = Tuple::nulls(3);
        assert!(t.all_null());
        assert!(!ints(&[1]).all_null());
        assert_eq!(t.to_string(), "(-, -, -)");
    }

    #[test]
    fn pad_fills_missing_attrs_with_null() {
        let from = Schema::of_relation("R", &["a"]);
        let to = Schema::new(vec![Attr::parse("R.a"), Attr::parse("S.b")]).unwrap();
        let t = ints(&[7]).pad(&from, &to);
        assert_eq!(t.values(), &[Value::Int(7), Value::Null]);
    }

    #[test]
    fn pad_reorders_to_target_layout() {
        let from = Schema::new(vec![Attr::parse("S.b"), Attr::parse("R.a")]).unwrap();
        let to = Schema::new(vec![
            Attr::parse("R.a"),
            Attr::parse("S.b"),
            Attr::parse("T.c"),
        ])
        .unwrap();
        let t = ints(&[10, 20]).pad(&from, &to);
        assert_eq!(t.values(), &[Value::Int(20), Value::Int(10), Value::Null]);
    }

    #[test]
    fn pad_to_same_schema_is_identity() {
        let s = Schema::of_relation("R", &["a", "b"]);
        let t = ints(&[1, 2]);
        assert_eq!(t.pad(&s, &s), t);
    }

    #[test]
    fn project_selects_columns() {
        let t = ints(&[1, 2, 3]).project(&[2, 0]);
        assert_eq!(t.values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn get_indexes_values() {
        let t = ints(&[5, 6]);
        assert_eq!(t.get(1), &Value::Int(6));
    }
}
