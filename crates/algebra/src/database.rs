//! A database: a set of ground relations with mutually disjoint
//! schemes (§1.2).

use crate::error::AlgebraError;
use crate::relation::Relation;
use std::collections::BTreeMap;

/// A named collection of ground relations.
///
/// Scheme disjointness is automatic because every attribute carries its
/// ground relation as qualifier; the map is keyed by the relation name
/// a [`crate::Query::Rel`] leaf refers to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    #[must_use]
    pub fn new() -> Database {
        Database::default()
    }

    /// Insert (or replace) a ground relation, keyed by the qualifier of
    /// its first attribute; empty-schema relations are not supported as
    /// ground relations.
    pub fn insert(&mut self, rel: Relation) -> &mut Self {
        let name = rel
            .schema()
            .attrs()
            .first()
            .expect("ground relations must have at least one attribute")
            .rel()
            .to_owned();
        self.relations.insert(name, rel);
        self
    }

    /// Insert a relation under an explicit name.
    pub fn insert_named(&mut self, name: impl Into<String>, rel: Relation) -> &mut Self {
        self.relations.insert(name.into(), rel);
        self
    }

    /// Look up a relation.
    ///
    /// # Errors
    /// [`AlgebraError::UnknownRelation`] if absent.
    pub fn get(&self, name: &str) -> Result<&Relation, AlgebraError> {
        self.relations
            .get(name)
            .ok_or_else(|| AlgebraError::UnknownRelation(name.to_owned()))
    }

    /// Whether a relation with this name exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all relations, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Iterate over `(name, relation)` pairs, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of relations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the database holds no relations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keys_by_qualifier() {
        let mut db = Database::new();
        db.insert(Relation::from_ints("Emp", &["id"], &[&[1]]));
        assert!(db.contains("Emp"));
        assert_eq!(db.get("Emp").unwrap().len(), 1);
        assert!(matches!(
            db.get("Dept"),
            Err(AlgebraError::UnknownRelation(_))
        ));
    }

    #[test]
    fn insert_named_overrides_key() {
        let mut db = Database::new();
        db.insert_named("Alias", Relation::from_ints("R", &["a"], &[]));
        assert!(db.contains("Alias"));
        assert!(!db.contains("R"));
    }

    #[test]
    fn names_sorted() {
        let mut db = Database::new();
        db.insert(Relation::from_ints("B", &["x"], &[]));
        db.insert(Relation::from_ints("A", &["y"], &[]));
        let names: Vec<&str> = db.names().collect();
        assert_eq!(names, vec!["A", "B"]);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
    }

    #[test]
    fn reinsert_replaces() {
        let mut db = Database::new();
        db.insert(Relation::from_ints("R", &["a"], &[&[1]]));
        db.insert(Relation::from_ints("R", &["a"], &[&[1], &[2]]));
        assert_eq!(db.get("R").unwrap().len(), 2);
        assert_eq!(db.len(), 1);
    }
}
