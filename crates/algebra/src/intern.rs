//! Dense identifier interning: [`RelId`], [`AttrId`], [`RelSet`] and
//! the [`Interner`] that owns the string ↔ id mapping.
//!
//! The paper's central object is the query graph over a *set* of
//! relations — Theorem 1 makes the graph alone an unambiguous query
//! representation, and the §6.1 DP enumerates connected *subsets* of
//! its nodes. Everything downstream of parsing therefore wants
//! relations and attributes as small dense integers and relation sets
//! as bitsets, not as strings and `BTreeSet<String>`s.
//!
//! Names are interned **once**, when a query (or a storage/catalog)
//! enters the system; afterwards every lookup is an array index and
//! every set operation a word of bit arithmetic. The strings survive
//! only for rendering, error messages, and `explain()` — the interner
//! is the single place that can translate back.

use crate::schema::{Attr, Schema};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of an interned relation (a table or an alias).
///
/// Ids are assigned contiguously from 0 in interning order, so a
/// `RelId` doubles as an index into `Vec`s that are dense by relation
/// — the representation [`crate::RelSet`] and the storage/catalog
/// layers key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(u32);

impl RelId {
    /// Construct from a raw index (used by the owning interner).
    #[must_use]
    pub fn from_index(i: usize) -> RelId {
        RelId(u32::try_from(i).expect("relation id fits in u32"))
    }

    /// The dense index this id names.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Dense identifier of an interned attribute.
///
/// Each attribute carries its precomputed owner ([`RelId`]) and column
/// offset inside the owner's scheme, so predicate binding and
/// statistics lookups are plain array reads — no per-use name scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(u32);

impl AttrId {
    /// Construct from a raw index (used by the owning interner).
    #[must_use]
    pub fn from_index(i: usize) -> AttrId {
        AttrId(u32::try_from(i).expect("attribute id fits in u32"))
    }

    /// The dense index this id names.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A set of dense relation ids, as a 64-bit bitset.
///
/// This is the one set representation shared by the whole stack:
/// `fro_graph::NodeSet` is a re-export of this type (a query graph's
/// node ids *are* the query's dense relation ids), the optimizer's DP
/// memo keys on it, and the storage layer uses the same indices.
/// Capped at 64 relations — far beyond what exhaustive implementing-
/// tree enumeration can visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RelSet(u64);

impl RelSet {
    /// The largest member count (and largest member index + 1) a
    /// `RelSet` can represent.
    pub const MAX_MEMBERS: usize = 64;

    /// The empty set.
    #[must_use]
    pub fn empty() -> RelSet {
        RelSet(0)
    }

    /// `{0, 1, …, n-1}`.
    ///
    /// # Panics
    /// If `n > 64`.
    #[must_use]
    pub fn full(n: usize) -> RelSet {
        assert!(n <= 64, "relation sets are limited to 64 members");
        if n == 64 {
            RelSet(u64::MAX)
        } else {
            RelSet((1u64 << n) - 1)
        }
    }

    /// The singleton `{i}`.
    #[must_use]
    pub fn singleton(i: usize) -> RelSet {
        RelSet(1u64 << i)
    }

    /// Construct from raw bits.
    #[must_use]
    pub fn from_bits(bits: u64) -> RelSet {
        RelSet(bits)
    }

    /// The raw bits.
    #[must_use]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Insert a member, returning the new set.
    #[must_use]
    pub fn with(self, i: usize) -> RelSet {
        RelSet(self.0 | (1u64 << i))
    }

    /// Remove a member, returning the new set.
    #[must_use]
    pub fn without(self, i: usize) -> RelSet {
        RelSet(self.0 & !(1u64 << i))
    }

    /// Membership test.
    #[must_use]
    pub fn contains(self, i: usize) -> bool {
        self.0 & (1u64 << i) != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    /// Set difference.
    #[must_use]
    pub fn minus(self, other: RelSet) -> RelSet {
        RelSet(self.0 & !other.0)
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of members.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset_of(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// The smallest member, if any.
    #[must_use]
    pub fn lowest(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterate members in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Iterate all non-empty proper subsets of `self` that contain
    /// `self`'s lowest member — exactly the left-hand sides needed to
    /// enumerate unordered 2-partitions of `self` without repeats.
    pub fn anchored_proper_subsets(self) -> impl Iterator<Item = RelSet> {
        let anchor = self.lowest().map_or(0u64, |i| 1u64 << i);
        let rest = self.0 & !anchor;
        // Enumerate subsets of `rest` (including empty, excluding full)
        // and OR in the anchor.
        let mut sub: u64 = 0;
        let mut done = rest == 0; // a 1-element set has no proper split
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let current = sub | anchor;
            // Advance to the next subset of `rest`.
            sub = (sub.wrapping_sub(rest)) & rest;
            if sub == 0 {
                done = true; // wrapped: the last emitted was rest|anchor (full) — guard below
            }
            Some(RelSet(current))
        })
        .filter(move |s| s.0 != self.0) // exclude the full set
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for RelSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        iter.into_iter().fold(RelSet::empty(), |acc, i| acc.with(i))
    }
}

/// One interned attribute: the qualified name plus its precomputed
/// `(relation, column offset)` resolution.
#[derive(Debug, Clone)]
struct AttrEntry {
    attr: Attr,
    rel: RelId,
    col: u32,
}

/// The string ↔ dense-id mapping for relations and attributes.
///
/// Owned by the catalog (and mirrored by storage); built exactly once
/// when relations are registered. Everything after that point hands
/// around [`RelId`]/[`AttrId`]/[`RelSet`] and comes back here only to
/// render a name for an error message or an `explain()` line.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    rel_names: Vec<Arc<str>>,
    rel_ids: HashMap<Arc<str>, RelId>,
    attrs: Vec<AttrEntry>,
    attr_ids: HashMap<Attr, AttrId>,
    /// Per relation, its attribute ids in column order.
    rel_attrs: Vec<Vec<AttrId>>,
}

impl Interner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Number of interned relations.
    #[must_use]
    pub fn n_rels(&self) -> usize {
        self.rel_names.len()
    }

    /// Number of attribute ids ever assigned (including ids staled by
    /// relation re-registration) — the length of any dense
    /// `AttrId`-indexed side table, such as
    /// [`crate::ops::AttrCols`].
    #[must_use]
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Whether nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rel_names.is_empty()
    }

    /// Intern a relation name (idempotent): returns the existing id
    /// when the name is already known.
    pub fn intern_rel(&mut self, name: &str) -> RelId {
        if let Some(&id) = self.rel_ids.get(name) {
            return id;
        }
        let id = RelId::from_index(self.rel_names.len());
        let shared: Arc<str> = Arc::from(name);
        self.rel_names.push(shared.clone());
        self.rel_ids.insert(shared, id);
        self.rel_attrs.push(Vec::new());
        id
    }

    /// Intern a relation together with its scheme: every attribute is
    /// assigned an [`AttrId`] carrying its column offset. Re-registering
    /// a relation replaces its attribute set (the old ids go stale).
    pub fn register_relation(&mut self, name: &str, schema: &Schema) -> RelId {
        let id = self.intern_rel(name);
        // Drop stale attribute ids from a previous registration.
        for old in std::mem::take(&mut self.rel_attrs[id.index()]) {
            let attr = self.attrs[old.index()].attr.clone();
            if self.attr_ids.get(&attr) == Some(&old) {
                self.attr_ids.remove(&attr);
            }
        }
        let mut cols = Vec::with_capacity(schema.len());
        for (c, attr) in schema.attrs().iter().enumerate() {
            let aid = AttrId::from_index(self.attrs.len());
            self.attrs.push(AttrEntry {
                attr: attr.clone(),
                rel: id,
                col: u32::try_from(c).expect("column offset fits in u32"),
            });
            self.attr_ids.insert(attr.clone(), aid);
            cols.push(aid);
        }
        self.rel_attrs[id.index()] = cols;
        id
    }

    /// Look up a relation id by name.
    #[must_use]
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.rel_ids.get(name).copied()
    }

    /// The name of an interned relation.
    ///
    /// # Panics
    /// If the id was not produced by this interner.
    #[must_use]
    pub fn rel_name(&self, id: RelId) -> &str {
        &self.rel_names[id.index()]
    }

    /// All interned relation names in id order.
    pub fn rel_names(&self) -> impl Iterator<Item = &str> {
        self.rel_names.iter().map(|n| n.as_ref())
    }

    /// The name of an interned relation, or `None` for an id this
    /// interner never produced — the non-panicking twin of
    /// [`Interner::rel_name`], for resolving ids read from untrusted
    /// input such as a wire-decoded plan.
    #[must_use]
    pub fn try_rel_name(&self, id: RelId) -> Option<&str> {
        self.rel_names.get(id.index()).map(|n| n.as_ref())
    }

    /// Look up an attribute id.
    #[must_use]
    pub fn attr_id(&self, attr: &Attr) -> Option<AttrId> {
        self.attr_ids.get(attr).copied()
    }

    /// The qualified attribute an id names.
    ///
    /// # Panics
    /// If the id was not produced by this interner.
    #[must_use]
    pub fn attr(&self, id: AttrId) -> &Attr {
        &self.attrs[id.index()].attr
    }

    /// The qualified attribute an id names, or `None` for an id this
    /// interner never produced — the non-panicking twin of
    /// [`Interner::attr`], for resolving ids read from untrusted input
    /// such as a wire-decoded plan.
    #[must_use]
    pub fn try_attr(&self, id: AttrId) -> Option<&Attr> {
        self.attrs.get(id.index()).map(|e| &e.attr)
    }

    /// The owning relation of an attribute (precomputed).
    ///
    /// # Panics
    /// If the id was not produced by this interner.
    #[must_use]
    pub fn attr_rel(&self, id: AttrId) -> RelId {
        self.attrs[id.index()].rel
    }

    /// The column offset of an attribute within its relation's scheme
    /// (precomputed).
    ///
    /// # Panics
    /// If the id was not produced by this interner.
    #[must_use]
    pub fn attr_col(&self, id: AttrId) -> u32 {
        self.attrs[id.index()].col
    }

    /// The attribute ids of a relation, in column order.
    ///
    /// # Panics
    /// If the id was not produced by this interner.
    #[must_use]
    pub fn attrs_of(&self, id: RelId) -> &[AttrId] {
        &self.rel_attrs[id.index()]
    }

    /// The nearest interned relation name to `name` by edit distance —
    /// for "unknown table" error messages. Returns `None` when the
    /// interner is empty or nothing is plausibly close (distance
    /// greater than half the longer name, minimum 2).
    #[must_use]
    pub fn suggest(&self, name: &str) -> Option<&str> {
        let lower = name.to_lowercase();
        let mut best: Option<(usize, &str)> = None;
        for cand in self.rel_names.iter().map(|n| n.as_ref()) {
            // Case-insensitive distance: `report` should find `REPORT`.
            let d = edit_distance(&lower, &cand.to_lowercase());
            let better = match best {
                None => true,
                // Ties break lexicographically for determinism.
                Some((bd, bn)) => d < bd || (d == bd && cand < bn),
            };
            if better {
                best = Some((d, cand));
            }
        }
        let (d, cand) = best?;
        let budget = (name.len().max(cand.len()) / 2).max(2);
        (d <= budget).then_some(cand)
    }
}

/// Levenshtein edit distance (two-row dynamic program) — cheap enough
/// for catalog-sized name lists in error paths.
#[must_use]
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relset_basics() {
        let s = RelSet::empty().with(1).with(3);
        assert!(s.contains(1) && s.contains(3) && !s.contains(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.lowest(), Some(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(s.without(1).iter().collect::<Vec<_>>(), vec![3]);
        assert!(RelSet::singleton(2).is_subset_of(RelSet::full(3)));
        assert_eq!(
            RelSet::full(3).minus(s).iter().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(s.to_string(), "{1,3}");
        assert_eq!([0usize, 2].into_iter().collect::<RelSet>().len(), 2);
        assert_eq!(RelSet::full(64).len(), 64);
    }

    #[test]
    fn anchored_subsets_enumerate_splits() {
        let s = RelSet::full(3);
        let subs: Vec<RelSet> = s.anchored_proper_subsets().collect();
        assert_eq!(subs.len(), 3);
        for sub in &subs {
            assert!(sub.contains(0) && sub.is_subset_of(s));
            assert_ne!(*sub, s);
        }
        assert_eq!(RelSet::singleton(4).anchored_proper_subsets().count(), 0);
    }

    #[test]
    fn interner_assigns_dense_ids() {
        let mut it = Interner::new();
        let r = it.register_relation("R", &Schema::of_relation("R", &["k", "v"]));
        let s = it.register_relation("S", &Schema::of_relation("S", &["k"]));
        assert_eq!(r.index(), 0);
        assert_eq!(s.index(), 1);
        assert_eq!(it.n_rels(), 2);
        assert_eq!(it.rel_id("R"), Some(r));
        assert_eq!(it.rel_id("missing"), None);
        assert_eq!(it.rel_name(s), "S");

        let rv = it.attr_id(&Attr::parse("R.v")).unwrap();
        assert_eq!(it.attr_rel(rv), r);
        assert_eq!(it.attr_col(rv), 1);
        assert_eq!(it.attr(rv), &Attr::parse("R.v"));
        assert_eq!(it.attrs_of(r).len(), 2);
        // Interning the same name again returns the same id.
        assert_eq!(it.intern_rel("R"), r);
    }

    #[test]
    fn reregistration_replaces_attrs() {
        let mut it = Interner::new();
        let r = it.register_relation("R", &Schema::of_relation("R", &["a"]));
        let old = it.attr_id(&Attr::parse("R.a")).unwrap();
        let r2 = it.register_relation("R", &Schema::of_relation("R", &["b", "a"]));
        assert_eq!(r, r2);
        let new = it.attr_id(&Attr::parse("R.a")).unwrap();
        assert_ne!(old, new);
        assert_eq!(it.attr_col(new), 1);
        assert_eq!(it.attrs_of(r).len(), 2);
    }

    #[test]
    fn edit_distance_and_suggest() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
        let mut it = Interner::new();
        for name in ["EMPLOYEE", "DEPARTMENT", "REPORT"] {
            it.intern_rel(name);
        }
        assert_eq!(it.suggest("EMPLOYE"), Some("EMPLOYEE"));
        assert_eq!(it.suggest("Report"), Some("REPORT"));
        // Nothing close: no suggestion.
        assert_eq!(it.suggest("xyz"), None);
        assert_eq!(Interner::new().suggest("R"), None);
    }
}
