//! # fro-algebra — the relational-algebra kernel
//!
//! This crate implements the definitional layer of Rosenthal &
//! Galindo-Legaria, *"Query Graphs, Implementing Trees, and
//! Freely-Reorderable Outerjoins"* (SIGMOD 1990), §1.2 and §2:
//!
//! * [`Value`]s with SQL-style nulls and [`Truth`] (three-valued logic),
//! * [`Attr`]ibutes, [`Schema`]s, [`Tuple`]s and set-semantics
//!   [`Relation`]s with the paper's null-padding conventions,
//! * a [`Pred`]icate language with the paper's *strongness*
//!   (null-rejection) analysis,
//! * the join-like operators: regular join `−`, left outerjoin `→`,
//!   antijoin `▷`, semijoin, union-with-padding, and the §6.2
//!   generalized outerjoin [`ops::goj`],
//! * [`Query`] expression trees with bottom-up [`Query::eval`], and
//! * machine-checkable statements of the paper's identities 1–16 in
//!   [`identities`].
//!
//! Everything downstream (query graphs, implementing trees, the free
//! reorderability theorem, the optimizer, the execution engine) is built
//! on the definitions here; this crate is the semantic ground truth used
//! by every equivalence test in the workspace.
//!
//! ## Example
//!
//! ```
//! use fro_algebra::prelude::*;
//!
//! // Example 1 of the paper: R1 −(keys) (R2 →(keys) R3).
//! let q = Query::rel("R1").join(
//!     Query::rel("R2").outerjoin(Query::rel("R3"), Pred::eq_attr("R2.k2", "R3.k3")),
//!     Pred::eq_attr("R1.k1", "R2.k2"),
//! );
//!
//! let mut db = Database::new();
//! db.insert(Relation::from_ints("R1", &["k1"], &[&[1]]));
//! db.insert(Relation::from_ints("R2", &["k2"], &[&[1], &[2]]));
//! db.insert(Relation::from_ints("R3", &["k3"], &[&[2], &[3]]));
//!
//! let out = q.eval(&db).unwrap();
//! assert_eq!(out.len(), 1); // (1, 1, null): R2=1 matched R1 but found no R3 partner
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod database;
pub mod error;
pub mod expr;
pub mod goj;
pub mod identities;
pub mod intern;
pub mod ops;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod sig;
pub mod truth;
pub mod tuple;
pub mod value;

pub use column::{Bitmap, ColumnSet, Dictionary, SelMask, ZONE_ROWS};
pub use database::Database;
pub use error::AlgebraError;
pub use expr::Query;
pub use intern::{AttrId, Interner, RelId, RelSet};
pub use predicate::{CmpOp, Pred, Scalar};
pub use relation::Relation;
pub use schema::{Attr, Schema};
pub use sig::{sig_hash_of, SigHash, StableHasher};
pub use truth::Truth;
pub use tuple::Tuple;
pub use value::Value;

/// Convenient glob-import surface: `use fro_algebra::prelude::*`.
pub mod prelude {
    pub use crate::database::Database;
    pub use crate::error::AlgebraError;
    pub use crate::expr::Query;
    pub use crate::predicate::{CmpOp, Pred, Scalar};
    pub use crate::relation::Relation;
    pub use crate::schema::{Attr, Schema};
    pub use crate::truth::Truth;
    pub use crate::tuple::Tuple;
    pub use crate::value::Value;
}
