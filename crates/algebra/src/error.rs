//! Error type for the algebra kernel.

use std::fmt;

/// Errors raised by schema construction, expression evaluation and the
/// join-like operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// A schema listed the same attribute twice.
    DuplicateAttr(String),
    /// A generic join was applied to operands with overlapping schemes
    /// (violates the paper's §2.1 convention).
    SchemasOverlap,
    /// A query referenced a relation the database does not contain.
    UnknownRelation(String),
    /// A predicate referenced an attribute absent from the tuple scheme
    /// it was evaluated against.
    UnknownAttr {
        /// The missing attribute (as `rel.attr`).
        attr: String,
        /// The scheme it was resolved against.
        schema: String,
    },
    /// A projection listed an attribute the input does not produce.
    BadProjection(String),
    /// `GOJ[S]` was given a subset `S` not contained in `sch(R1)`.
    BadGojSubset(String),
    /// Union operands could not be reconciled (shared attribute with
    /// conflicting provenance is impossible by construction, but
    /// arity/shape errors funnel here).
    BadUnion(String),
    /// A relation row had the wrong arity for its schema.
    BadArity {
        /// Expected number of columns.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::DuplicateAttr(a) => write!(f, "duplicate attribute `{a}` in schema"),
            AlgebraError::SchemasOverlap => {
                write!(
                    f,
                    "join operands must have disjoint schemes (paper §2.1 convention)"
                )
            }
            AlgebraError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            AlgebraError::UnknownAttr { attr, schema } => {
                write!(f, "attribute `{attr}` not found in scheme {schema}")
            }
            AlgebraError::BadProjection(a) => {
                write!(f, "projection attribute `{a}` not produced by input")
            }
            AlgebraError::BadGojSubset(a) => {
                write!(f, "GOJ subset attribute `{a}` is not in sch(R1)")
            }
            AlgebraError::BadUnion(m) => write!(f, "bad union: {m}"),
            AlgebraError::BadArity { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
        }
    }
}

impl std::error::Error for AlgebraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(AlgebraError::DuplicateAttr("R.a".into())
            .to_string()
            .contains("R.a"));
        assert!(AlgebraError::SchemasOverlap
            .to_string()
            .contains("disjoint"));
        assert!(AlgebraError::UnknownRelation("X".into())
            .to_string()
            .contains("X"));
        let e = AlgebraError::UnknownAttr {
            attr: "R.a".into(),
            schema: "(S.b)".into(),
        };
        assert!(e.to_string().contains("R.a") && e.to_string().contains("(S.b)"));
        let e = AlgebraError::BadArity {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(AlgebraError::SchemasOverlap);
        assert!(!e.to_string().is_empty());
    }
}
