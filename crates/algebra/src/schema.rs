//! Attributes and schemes (§1.2: "a scheme is a finite set of attribute
//! names").
//!
//! Attribute names are *qualified* — `R2.k2` is the attribute `k2` of
//! ground relation `R2` — because the paper's database convention makes
//! all ground-relation schemes mutually disjoint. Qualification gives us
//! that disjointness for free and lets predicates name the ground
//! relations they reference, which is what query-graph construction
//! needs.

use crate::error::AlgebraError;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A qualified attribute name: `relation.attribute`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attr {
    rel: Arc<str>,
    name: Arc<str>,
}

impl Attr {
    /// Create an attribute from relation and attribute names.
    #[must_use]
    pub fn new(rel: impl AsRef<str>, name: impl AsRef<str>) -> Attr {
        Attr {
            rel: Arc::from(rel.as_ref()),
            name: Arc::from(name.as_ref()),
        }
    }

    /// Parse a `"rel.attr"` string. Panics if there is no dot — this is
    /// a test/builder convenience; use [`Attr::new`] in library code.
    #[must_use]
    pub fn parse(qualified: &str) -> Attr {
        let (rel, name) = qualified
            .split_once('.')
            .unwrap_or_else(|| panic!("attribute `{qualified}` must be written rel.attr"));
        Attr::new(rel, name)
    }

    /// The ground relation this attribute belongs to.
    #[must_use]
    pub fn rel(&self) -> &str {
        &self.rel
    }

    /// The unqualified attribute name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.rel, self.name)
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::parse(s)
    }
}

/// An ordered scheme: a sequence of distinct qualified attributes.
///
/// The *order* fixes the physical column layout of [`crate::Tuple`]s;
/// set-level operations (padding, union, equivalence) canonicalize
/// through attribute names so order never affects query semantics.
///
/// A column-offset map is precomputed at construction, making
/// [`Schema::index_of`] (and hence predicate binding) an `O(1)` hash
/// lookup instead of a linear name scan. The map is derived state:
/// equality and hashing consider only the attribute sequence.
#[derive(Debug, Clone)]
pub struct Schema {
    attrs: Vec<Attr>,
    cols: HashMap<Attr, usize>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Schema) -> bool {
        self.attrs == other.attrs
    }
}

impl Eq for Schema {}

impl Hash for Schema {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.attrs.hash(state);
    }
}

impl Schema {
    /// Internal constructor: attrs are already known to be distinct.
    fn from_attrs(attrs: Vec<Attr>) -> Schema {
        let cols = attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), i))
            .collect();
        Schema { attrs, cols }
    }

    /// Build a schema from a list of attributes.
    ///
    /// # Errors
    /// Returns [`AlgebraError::DuplicateAttr`] if an attribute repeats.
    pub fn new(attrs: Vec<Attr>) -> Result<Schema, AlgebraError> {
        let mut cols = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            if cols.insert(a.clone(), i).is_some() {
                return Err(AlgebraError::DuplicateAttr(a.to_string()));
            }
        }
        Ok(Schema { attrs, cols })
    }

    /// Build the schema of a ground relation from unqualified names.
    #[must_use]
    pub fn of_relation(rel: &str, names: &[&str]) -> Schema {
        Schema::from_attrs(names.iter().map(|n| Attr::new(rel, n)).collect())
    }

    /// The empty schema.
    #[must_use]
    pub fn empty() -> Schema {
        Schema::from_attrs(Vec::new())
    }

    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attributes in layout order.
    #[must_use]
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Column position of `attr`, if present — an `O(1)` lookup in the
    /// precomputed offset map.
    #[must_use]
    pub fn index_of(&self, attr: &Attr) -> Option<usize> {
        self.cols.get(attr).copied()
    }

    /// Whether `attr` is part of this schema.
    #[must_use]
    pub fn contains(&self, attr: &Attr) -> bool {
        self.index_of(attr).is_some()
    }

    /// The set of ground relations mentioned by this schema.
    #[must_use]
    pub fn rels(&self) -> BTreeSet<String> {
        self.attrs.iter().map(|a| a.rel().to_owned()).collect()
    }

    /// Whether the attribute sets of `self` and `other` are disjoint.
    #[must_use]
    pub fn disjoint(&self, other: &Schema) -> bool {
        self.attrs.iter().all(|a| !other.contains(a))
    }

    /// Concatenate two disjoint schemas (the scheme of a join result).
    ///
    /// # Errors
    /// Returns [`AlgebraError::SchemasOverlap`] when the operands share
    /// an attribute — the paper's convention (§2.1) requires
    /// `sch(eval(X)) ∩ sch(eval(Y)) = ∅` for every generic join.
    pub fn concat(&self, other: &Schema) -> Result<Schema, AlgebraError> {
        if !self.disjoint(other) {
            return Err(AlgebraError::SchemasOverlap);
        }
        let mut attrs = self.attrs.clone();
        attrs.extend(other.attrs.iter().cloned());
        Ok(Schema::from_attrs(attrs))
    }

    /// The canonical (sorted-attribute) permutation of this schema,
    /// paired with, for each canonical position, the source column.
    #[must_use]
    pub fn canonical_order(&self) -> (Schema, Vec<usize>) {
        let mut idx: Vec<usize> = (0..self.attrs.len()).collect();
        idx.sort_by(|&i, &j| self.attrs[i].cmp(&self.attrs[j]));
        let attrs = idx.iter().map(|&i| self.attrs[i].clone()).collect();
        (Schema::from_attrs(attrs), idx)
    }

    /// Union of attribute sets, in canonical (sorted) order — the
    /// scheme used by the paper's padding convention for `∪`.
    #[must_use]
    pub fn union(&self, other: &Schema) -> Schema {
        let set: BTreeSet<Attr> = self
            .attrs
            .iter()
            .chain(other.attrs.iter())
            .cloned()
            .collect();
        Schema::from_attrs(set.into_iter().collect())
    }
}

/// Shared, immutable schema handle.
pub type SchemaRef = Arc<Schema>;

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_parse_and_display() {
        let a = Attr::parse("R1.x");
        assert_eq!(a.rel(), "R1");
        assert_eq!(a.name(), "x");
        assert_eq!(a.to_string(), "R1.x");
        assert_eq!(Attr::from("R2.y"), Attr::new("R2", "y"));
    }

    #[test]
    #[should_panic(expected = "must be written rel.attr")]
    fn attr_parse_requires_dot() {
        let _ = Attr::parse("nodot");
    }

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new(vec![Attr::parse("R.a"), Attr::parse("R.a")]);
        assert!(matches!(err, Err(AlgebraError::DuplicateAttr(_))));
    }

    #[test]
    fn of_relation_qualifies() {
        let s = Schema::of_relation("Emp", &["id", "dept"]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&Attr::parse("Emp.id")));
        assert_eq!(
            s.rels().into_iter().collect::<Vec<_>>(),
            vec!["Emp".to_owned()]
        );
    }

    #[test]
    fn concat_requires_disjoint() {
        let a = Schema::of_relation("R", &["x"]);
        let b = Schema::of_relation("S", &["y"]);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.index_of(&Attr::parse("S.y")), Some(1));
        assert!(matches!(a.concat(&a), Err(AlgebraError::SchemasOverlap)));
    }

    #[test]
    fn canonical_order_sorts() {
        let s = Schema::new(vec![Attr::parse("S.b"), Attr::parse("R.a")]).unwrap();
        let (canon, perm) = s.canonical_order();
        assert_eq!(canon.attrs()[0], Attr::parse("R.a"));
        assert_eq!(perm, vec![1, 0]);
    }

    #[test]
    fn union_is_sorted_set() {
        let a = Schema::of_relation("R", &["x"]);
        let b = Schema::of_relation("Q", &["y"]);
        let u = a.union(&b);
        assert_eq!(u.attrs()[0], Attr::parse("Q.y"));
        assert_eq!(u.len(), 2);
        // Union with self is idempotent.
        assert_eq!(a.union(&a).len(), 1);
    }

    #[test]
    fn empty_schema() {
        let e = Schema::empty();
        assert!(e.is_empty());
        assert_eq!(e.to_string(), "()");
    }
}
