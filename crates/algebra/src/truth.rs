//! Three-valued logic (3VL).
//!
//! The paper's definitions treat predicates as mapping tuples to
//! {True, False}, with the convention that comparisons against nulls do
//! not match. We model this faithfully with SQL-style three-valued
//! logic: a comparison involving a null yields [`Truth::Unknown`], and a
//! join-like operator keeps a tuple pair only when its predicate
//! evaluates to [`Truth::True`]. "Strongness" analysis
//! ([`crate::Pred::is_strong`]) is phrased in terms of *never-True*,
//! which is exactly the paper's "returns False" under this convention.

use std::fmt;

/// A truth value in Kleene's strong three-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Truth {
    /// Definitely false.
    False,
    /// Unknown (a null was involved).
    Unknown,
    /// Definitely true.
    True,
}

impl Truth {
    /// Logical conjunction (Kleene).
    #[must_use]
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Logical disjunction (Kleene).
    #[must_use]
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Logical negation (Kleene): `¬Unknown = Unknown`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Whether this value satisfies a filter (only `True` does).
    #[must_use]
    pub fn is_true(self) -> bool {
        self == Truth::True
    }

    /// Lift a Boolean into 3VL.
    #[must_use]
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Self {
        Truth::from_bool(b)
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Truth::True => write!(f, "true"),
            Truth::False => write!(f, "false"),
            Truth::Unknown => write!(f, "unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Truth::{self, *};

    const ALL: [Truth; 3] = [False, Unknown, True];

    #[test]
    fn and_truth_table() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(Unknown.or(Unknown), Unknown);
    }

    #[test]
    fn not_involution_on_definite() {
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
        assert_eq!(Unknown.not(), Unknown);
        for t in ALL {
            assert_eq!(t.not().not(), t);
        }
    }

    #[test]
    fn de_morgan_holds_in_kleene_logic() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn and_or_commutative_associative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                for c in ALL {
                    assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                    assert_eq!(a.or(b).or(c), a.or(b.or(c)));
                }
            }
        }
    }

    #[test]
    fn is_true_only_for_true() {
        assert!(True.is_true());
        assert!(!False.is_true());
        assert!(!Unknown.is_true());
    }

    #[test]
    fn from_bool_roundtrip() {
        assert_eq!(Truth::from_bool(true), True);
        assert_eq!(Truth::from(false), False);
    }

    #[test]
    fn display_forms() {
        assert_eq!(True.to_string(), "true");
        assert_eq!(Unknown.to_string(), "unknown");
        assert_eq!(False.to_string(), "false");
    }
}
