//! Query expressions: operator trees with a bottom-up evaluation rule
//! (§1.2: "A query is an expression over operators in a relational
//! algebra ... The result of a query Q is denoted eval(Q)").
//!
//! These trees are exactly the objects the paper calls *implementing
//! trees* when paired with a query graph (`graph(Q) = G`); the
//! `fro-graph` and `fro-trees` crates build on this type.

use crate::database::Database;
use crate::error::AlgebraError;
use crate::ops;
use crate::predicate::Pred;
use crate::relation::Relation;
use crate::schema::Attr;
use std::collections::BTreeSet;
use std::fmt;

/// An algebraic query expression.
///
/// Join-like binary operators follow the paper's orientation: in
/// [`Query::OuterJoin`] the **left** operand is the preserved relation
/// and the right operand is null-supplied (`left → right`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Query {
    /// A ground relation (leaf).
    Rel(String),
    /// Regular join `left − right` on `pred`.
    Join {
        /// Left operand.
        left: Box<Query>,
        /// Right operand.
        right: Box<Query>,
        /// Join predicate.
        pred: Pred,
    },
    /// Left outerjoin `left → right` on `pred` (left preserved).
    OuterJoin {
        /// Preserved operand.
        left: Box<Query>,
        /// Null-supplied operand.
        right: Box<Query>,
        /// Outerjoin predicate.
        pred: Pred,
    },
    /// Two-sided (full) outerjoin `left ↔ right` on `pred`.
    FullOuterJoin {
        /// Left operand.
        left: Box<Query>,
        /// Right operand.
        right: Box<Query>,
        /// Outerjoin predicate.
        pred: Pred,
    },
    /// Antijoin `left ▷ right` on `pred`.
    AntiJoin {
        /// Left operand (result scheme).
        left: Box<Query>,
        /// Right operand.
        right: Box<Query>,
        /// Antijoin predicate.
        pred: Pred,
    },
    /// Semijoin on `pred`.
    SemiJoin {
        /// Left operand (result scheme).
        left: Box<Query>,
        /// Right operand.
        right: Box<Query>,
        /// Semijoin predicate.
        pred: Pred,
    },
    /// Restriction `σ[pred](input)`.
    Restrict {
        /// Input expression.
        input: Box<Query>,
        /// Restriction predicate.
        pred: Pred,
    },
    /// Duplicate-removing projection `π[attrs](input)`.
    Project {
        /// Input expression.
        input: Box<Query>,
        /// Output attributes.
        attrs: Vec<Attr>,
    },
    /// Union with the §2.1 padding convention.
    Union {
        /// Left operand.
        left: Box<Query>,
        /// Right operand.
        right: Box<Query>,
    },
    /// Group by `group_attrs` and count rows with a non-null `counted`
    /// attribute (all rows when `None`) — the \[MURA89\] Count
    /// motivation from §1.1.
    GroupCount {
        /// Input expression.
        input: Box<Query>,
        /// Grouping attributes.
        group_attrs: Vec<Attr>,
        /// Attribute whose non-null occurrences are counted.
        counted: Option<Attr>,
    },
    /// Generalized outerjoin `left GOJ[subset] right` on `pred` (§6.2).
    Goj {
        /// Left operand (`R1`).
        left: Box<Query>,
        /// Right operand (`R2`).
        right: Box<Query>,
        /// Join predicate.
        pred: Pred,
        /// The projection subset `S ⊆ sch(R1)`.
        subset: Vec<Attr>,
    },
}

impl Query {
    /// A ground-relation leaf.
    #[must_use]
    pub fn rel(name: impl Into<String>) -> Query {
        Query::Rel(name.into())
    }

    /// `self − other` (regular join).
    #[must_use]
    pub fn join(self, other: Query, pred: Pred) -> Query {
        Query::Join {
            left: Box::new(self),
            right: Box::new(other),
            pred,
        }
    }

    /// `self → other` (left outerjoin; `self` preserved).
    #[must_use]
    pub fn outerjoin(self, other: Query, pred: Pred) -> Query {
        Query::OuterJoin {
            left: Box::new(self),
            right: Box::new(other),
            pred,
        }
    }

    /// `self ↔ other` (two-sided outerjoin).
    #[must_use]
    pub fn full_outerjoin(self, other: Query, pred: Pred) -> Query {
        Query::FullOuterJoin {
            left: Box::new(self),
            right: Box::new(other),
            pred,
        }
    }

    /// `self ▷ other` (antijoin).
    #[must_use]
    pub fn antijoin(self, other: Query, pred: Pred) -> Query {
        Query::AntiJoin {
            left: Box::new(self),
            right: Box::new(other),
            pred,
        }
    }

    /// Semijoin.
    #[must_use]
    pub fn semijoin(self, other: Query, pred: Pred) -> Query {
        Query::SemiJoin {
            left: Box::new(self),
            right: Box::new(other),
            pred,
        }
    }

    /// `σ[pred](self)`.
    #[must_use]
    pub fn restrict(self, pred: Pred) -> Query {
        Query::Restrict {
            input: Box::new(self),
            pred,
        }
    }

    /// `π[attrs](self)` (duplicates removed).
    #[must_use]
    pub fn project(self, attrs: Vec<Attr>) -> Query {
        Query::Project {
            input: Box::new(self),
            attrs,
        }
    }

    /// `self ∪ other` with padding.
    #[must_use]
    pub fn union(self, other: Query) -> Query {
        Query::Union {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Group-count over `self`.
    #[must_use]
    pub fn group_count(self, group_attrs: Vec<Attr>, counted: Option<Attr>) -> Query {
        Query::GroupCount {
            input: Box::new(self),
            group_attrs,
            counted,
        }
    }

    /// `self GOJ[subset] other` on `pred`.
    #[must_use]
    pub fn goj(self, other: Query, pred: Pred, subset: Vec<Attr>) -> Query {
        Query::Goj {
            left: Box::new(self),
            right: Box::new(other),
            pred,
            subset,
        }
    }

    /// Bottom-up evaluation against a database — the paper's `eval(Q)`.
    ///
    /// # Errors
    /// Any operator/schema error from the algebra kernel.
    pub fn eval(&self, db: &Database) -> Result<Relation, AlgebraError> {
        match self {
            Query::Rel(name) => db.get(name).cloned(),
            Query::Join { left, right, pred } => ops::join(&left.eval(db)?, &right.eval(db)?, pred),
            Query::OuterJoin { left, right, pred } => {
                ops::outerjoin(&left.eval(db)?, &right.eval(db)?, pred)
            }
            Query::FullOuterJoin { left, right, pred } => {
                ops::full_outerjoin(&left.eval(db)?, &right.eval(db)?, pred)
            }
            Query::AntiJoin { left, right, pred } => {
                ops::antijoin(&left.eval(db)?, &right.eval(db)?, pred)
            }
            Query::SemiJoin { left, right, pred } => {
                ops::semijoin(&left.eval(db)?, &right.eval(db)?, pred)
            }
            Query::Restrict { input, pred } => ops::restrict(&input.eval(db)?, pred),
            Query::GroupCount {
                input,
                group_attrs,
                counted,
            } => ops::group_count(&input.eval(db)?, group_attrs, counted.as_ref()),
            Query::Project { input, attrs } => ops::project(&input.eval(db)?, attrs, true),
            Query::Union { left, right } => ops::union(&left.eval(db)?, &right.eval(db)?),
            Query::Goj {
                left,
                right,
                pred,
                subset,
            } => ops::goj(&left.eval(db)?, &right.eval(db)?, pred, subset),
        }
    }

    /// The ground relations mentioned, in leaf order (with repeats, if
    /// any — a well-formed query per §1.2 uses each relation once).
    #[must_use]
    pub fn leaves(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<String>) {
        match self {
            Query::Rel(n) => out.push(n.clone()),
            Query::Join { left, right, .. }
            | Query::OuterJoin { left, right, .. }
            | Query::FullOuterJoin { left, right, .. }
            | Query::AntiJoin { left, right, .. }
            | Query::SemiJoin { left, right, .. }
            | Query::Union { left, right }
            | Query::Goj { left, right, .. } => {
                left.collect_leaves(out);
                right.collect_leaves(out);
            }
            Query::Restrict { input, .. }
            | Query::Project { input, .. }
            | Query::GroupCount { input, .. } => {
                input.collect_leaves(out);
            }
        }
    }

    /// The set of ground relations mentioned.
    #[must_use]
    pub fn rels(&self) -> BTreeSet<String> {
        self.leaves().into_iter().collect()
    }

    /// Whether each ground relation appears exactly once (§1.2
    /// assumption for query graphs).
    #[must_use]
    pub fn relations_distinct(&self) -> bool {
        let leaves = self.leaves();
        leaves.iter().collect::<BTreeSet<_>>().len() == leaves.len()
    }

    /// Whether the expression uses only `Join` / `OuterJoin` internal
    /// nodes — the fragment for which query graphs are defined (§1.2).
    #[must_use]
    pub fn is_join_outerjoin(&self) -> bool {
        match self {
            Query::Rel(_) => true,
            Query::Join { left, right, .. } | Query::OuterJoin { left, right, .. } => {
                left.is_join_outerjoin() && right.is_join_outerjoin()
            }
            _ => false,
        }
    }

    /// Immediate children.
    #[must_use]
    pub fn children(&self) -> Vec<&Query> {
        match self {
            Query::Rel(_) => vec![],
            Query::Join { left, right, .. }
            | Query::OuterJoin { left, right, .. }
            | Query::FullOuterJoin { left, right, .. }
            | Query::AntiJoin { left, right, .. }
            | Query::SemiJoin { left, right, .. }
            | Query::Union { left, right }
            | Query::Goj { left, right, .. } => vec![left, right],
            Query::Restrict { input, .. }
            | Query::Project { input, .. }
            | Query::GroupCount { input, .. } => vec![input],
        }
    }

    /// The predicate at this node, if it is a predicated operator.
    #[must_use]
    pub fn pred(&self) -> Option<&Pred> {
        match self {
            Query::Join { pred, .. }
            | Query::OuterJoin { pred, .. }
            | Query::FullOuterJoin { pred, .. }
            | Query::AntiJoin { pred, .. }
            | Query::SemiJoin { pred, .. }
            | Query::Restrict { pred, .. }
            | Query::Goj { pred, .. } => Some(pred),
            _ => None,
        }
    }

    /// Total number of nodes.
    #[must_use]
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Height of the tree (a leaf has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Paper-style rendering with explicit parentheses, e.g.
    /// `(R1 − (R2 → R3))`.
    #[must_use]
    pub fn paper_notation(&self) -> String {
        fn go(q: &Query, out: &mut String) {
            match q {
                Query::Rel(n) => out.push_str(n),
                Query::Join { left, right, pred } => binop(out, left, right, "−", pred),
                Query::OuterJoin { left, right, pred } => binop(out, left, right, "→", pred),
                Query::FullOuterJoin { left, right, pred } => binop(out, left, right, "↔", pred),
                Query::AntiJoin { left, right, pred } => binop(out, left, right, "▷", pred),
                Query::SemiJoin { left, right, pred } => binop(out, left, right, "⋉", pred),
                Query::Restrict { input, pred } => {
                    out.push_str(&format!("σ[{pred}]("));
                    go(input, out);
                    out.push(')');
                }
                Query::Project { input, attrs } => {
                    let names: Vec<String> = attrs.iter().map(ToString::to_string).collect();
                    out.push_str(&format!("π[{}](", names.join(",")));
                    go(input, out);
                    out.push(')');
                }
                Query::Union { left, right } => {
                    out.push('(');
                    go(left, out);
                    out.push_str(" ∪ ");
                    go(right, out);
                    out.push(')');
                }
                Query::GroupCount {
                    input, group_attrs, ..
                } => {
                    let names: Vec<String> = group_attrs.iter().map(ToString::to_string).collect();
                    out.push_str(&format!("γ[{};count](", names.join(",")));
                    go(input, out);
                    out.push(')');
                }
                Query::Goj {
                    left,
                    right,
                    pred,
                    subset,
                } => {
                    let names: Vec<String> = subset.iter().map(ToString::to_string).collect();
                    out.push('(');
                    go(left, out);
                    out.push_str(&format!(" GOJ[{}]{{{pred}}} ", names.join(",")));
                    go(right, out);
                    out.push(')');
                }
            }
        }
        fn binop(out: &mut String, l: &Query, r: &Query, sym: &str, pred: &Pred) {
            out.push('(');
            go(l, out);
            out.push_str(&format!(" {sym}{{{pred}}} "));
            go(r, out);
            out.push(')');
        }
        let mut s = String::new();
        go(self, &mut s);
        s
    }

    /// Compact structural rendering without predicates, e.g.
    /// `(R1 − (R2 → R3))` — useful in test failure messages.
    #[must_use]
    pub fn shape(&self) -> String {
        fn go(q: &Query, out: &mut String) {
            match q {
                Query::Rel(n) => out.push_str(n),
                Query::Join { left, right, .. } => bin(out, left, right, "−"),
                Query::OuterJoin { left, right, .. } => bin(out, left, right, "→"),
                Query::FullOuterJoin { left, right, .. } => bin(out, left, right, "↔"),
                Query::AntiJoin { left, right, .. } => bin(out, left, right, "▷"),
                Query::SemiJoin { left, right, .. } => bin(out, left, right, "⋉"),
                Query::Union { left, right } => bin(out, left, right, "∪"),
                Query::Goj { left, right, .. } => bin(out, left, right, "GOJ"),
                Query::Restrict { input, .. } => {
                    out.push_str("σ(");
                    go(input, out);
                    out.push(')');
                }
                Query::Project { input, .. } => {
                    out.push_str("π(");
                    go(input, out);
                    out.push(')');
                }
                Query::GroupCount { input, .. } => {
                    out.push_str("γ(");
                    go(input, out);
                    out.push(')');
                }
            }
        }
        fn bin(out: &mut String, l: &Query, r: &Query, sym: &str) {
            out.push('(');
            go(l, out);
            out.push(' ');
            out.push_str(sym);
            out.push(' ');
            go(r, out);
            out.push(')');
        }
        let mut s = String::new();
        go(self, &mut s);
        s
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.paper_notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Pred;
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(Relation::from_ints("R1", &["a"], &[&[1]]));
        db.insert(Relation::from_ints("R2", &["b"], &[&[1], &[2]]));
        db.insert(Relation::from_ints("R3", &["c"], &[&[2]]));
        db
    }

    fn chain_join_oj() -> Query {
        // R1 −(a=b) (R2 →(b=c) R3)
        Query::rel("R1").join(
            Query::rel("R2").outerjoin(Query::rel("R3"), Pred::eq_attr("R2.b", "R3.c")),
            Pred::eq_attr("R1.a", "R2.b"),
        )
    }

    #[test]
    fn eval_bottom_up() {
        let out = chain_join_oj().eval(&db()).unwrap();
        // R2 → R3 = {(1,null), (2,2)}; join with R1(a=1) keeps (1,1,null).
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.rows()[0].values(),
            &[Value::Int(1), Value::Int(1), Value::Null]
        );
    }

    #[test]
    fn example_1_reassociation_is_equivalent_here() {
        // (R1 − R2) → R3 must equal R1 − (R2 → R3) on this database
        // (identity 11 instance with key equijoins).
        let q1 = chain_join_oj();
        let q2 = Query::rel("R1")
            .join(Query::rel("R2"), Pred::eq_attr("R1.a", "R2.b"))
            .outerjoin(Query::rel("R3"), Pred::eq_attr("R2.b", "R3.c"));
        let d = db();
        assert!(q1.eval(&d).unwrap().set_eq(&q2.eval(&d).unwrap()));
    }

    #[test]
    fn example_2_non_associativity() {
        // Paper Example 2: R1 → (R2 − R3)  ≠  (R1 → R2) − R3 when the
        // R2/R3 pair does not satisfy the join predicate.
        let mut db = Database::new();
        db.insert(Relation::from_ints("R1", &["a"], &[&[1]]));
        db.insert(Relation::from_ints("R2", &["b"], &[&[1]]));
        db.insert(Relation::from_ints("R3", &["c"], &[&[99]]));
        let p12 = Pred::eq_attr("R1.a", "R2.b");
        let p23 = Pred::eq_attr("R2.b", "R3.c");
        let q1 = Query::rel("R1").outerjoin(
            Query::rel("R2").join(Query::rel("R3"), p23.clone()),
            p12.clone(),
        );
        let q2 = Query::rel("R1")
            .outerjoin(Query::rel("R2"), p12)
            .join(Query::rel("R3"), p23);
        let r1 = q1.eval(&db).unwrap();
        let r2 = q2.eval(&db).unwrap();
        assert_eq!(r1.len(), 1); // (r1, -, -)
        assert!(r1.rows()[0].get(1).is_null());
        assert_eq!(r2.len(), 0); // empty set
        assert!(!r1.set_eq(&r2));
    }

    #[test]
    fn leaves_and_rels() {
        let q = chain_join_oj();
        assert_eq!(q.leaves(), vec!["R1", "R2", "R3"]);
        assert!(q.relations_distinct());
        assert!(q.rels().contains("R2"));
        let dup = Query::rel("R1").join(Query::rel("R1"), Pred::always());
        assert!(!dup.relations_distinct());
    }

    #[test]
    fn is_join_outerjoin_fragment() {
        assert!(chain_join_oj().is_join_outerjoin());
        let with_restrict = chain_join_oj().restrict(Pred::cmp_lit("R1.a", crate::CmpOp::Gt, 0));
        assert!(!with_restrict.is_join_outerjoin());
    }

    #[test]
    fn size_and_depth() {
        let q = chain_join_oj();
        assert_eq!(q.size(), 5);
        assert_eq!(q.depth(), 3);
        assert_eq!(Query::rel("R").size(), 1);
        assert_eq!(Query::rel("R").depth(), 1);
    }

    #[test]
    fn shape_rendering() {
        assert_eq!(chain_join_oj().shape(), "(R1 − (R2 → R3))");
    }

    #[test]
    fn paper_notation_includes_predicates() {
        let s = chain_join_oj().paper_notation();
        assert!(s.contains("R2.b = R3.c"));
        assert!(s.contains('→'));
    }

    #[test]
    fn restrict_project_union_eval() {
        let d = db();
        let q = Query::rel("R2")
            .restrict(Pred::cmp_lit("R2.b", crate::CmpOp::Gt, 1))
            .project(vec![Attr::parse("R2.b")]);
        let out = q.eval(&d).unwrap();
        assert_eq!(out.len(), 1);
        let u = Query::rel("R1").union(Query::rel("R3")).eval(&d).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.schema().len(), 2);
    }

    #[test]
    fn semijoin_antijoin_eval() {
        let d = db();
        let sj = Query::rel("R2")
            .semijoin(Query::rel("R3"), Pred::eq_attr("R2.b", "R3.c"))
            .eval(&d)
            .unwrap();
        assert_eq!(sj.len(), 1);
        let aj = Query::rel("R2")
            .antijoin(Query::rel("R3"), Pred::eq_attr("R2.b", "R3.c"))
            .eval(&d)
            .unwrap();
        assert_eq!(aj.len(), 1);
    }

    #[test]
    fn goj_eval_through_query() {
        let d = db();
        let q = Query::rel("R2").goj(
            Query::rel("R3"),
            Pred::eq_attr("R2.b", "R3.c"),
            vec![Attr::parse("R2.b")],
        );
        let out = q.eval(&d).unwrap();
        assert_eq!(out.len(), 2); // (2,2) joined; (1,-) padded
    }

    #[test]
    fn group_count_through_query_eval() {
        let d = db();
        let q = Query::rel("R2")
            .outerjoin(Query::rel("R3"), Pred::eq_attr("R2.b", "R3.c"))
            .group_count(vec![Attr::parse("R2.b")], Some(Attr::parse("R3.c")));
        let out = q.eval(&d).unwrap();
        assert_eq!(out.len(), 2); // groups b=1 (count 0) and b=2 (count 1)
        assert_eq!(q.shape(), "γ((R2 → R3))");
        assert!(q.paper_notation().contains("γ["));
    }

    #[test]
    fn unknown_relation_error_propagates() {
        let q = Query::rel("Missing");
        assert!(matches!(
            q.eval(&Database::new()),
            Err(AlgebraError::UnknownRelation(_))
        ));
    }

    #[test]
    fn pred_accessor() {
        assert!(chain_join_oj().pred().is_some());
        assert!(Query::rel("R").pred().is_none());
        assert!(Query::rel("R").union(Query::rel("S")).pred().is_none());
    }
}
