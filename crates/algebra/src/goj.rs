//! The generalized outerjoin `GOJ[S](R1, R2)` of §6.2 (equation 14).
//!
//! ```text
//! GOJ[S](R1,R2) = JN(R1,R2)
//!               ∪ (π[S](R1) − π[S](JN(R1,R2))) × null_{sch(R1)∪sch(R2)−S}
//! ```
//!
//! i.e. the join, plus the `S`-projections of `R1` tuples whose
//! `S`-projection did **not** appear in the join, padded with nulls on
//! all remaining attributes. (`−` here is *set difference*, `π`
//! duplicate-removing projection, `×` concatenation with a null tuple.)
//!
//! `GOJ` refines Dayal's Generalized-Join by omitting unmatched `R1`
//! tuples whose `S`-projection already appeared in the join; it
//! generalizes both regular join and outerjoin (`S = sch(R1)` recovers
//! the outerjoin on duplicate-free inputs — see the unit tests).

use crate::error::AlgebraError;
use crate::ops::BoundPred;
use crate::predicate::Pred;
use crate::relation::Relation;
use crate::schema::{Attr, Schema};
use crate::tuple::Tuple;
use std::collections::HashSet;
use std::sync::Arc;

/// Compute `GOJ[subset](l, r)` with join predicate `p`.
///
/// The paper's identities for GOJ assume duplicate-free relations; our
/// relations are sets by construction so no extra precondition is
/// needed here.
///
/// # Errors
/// [`AlgebraError::BadGojSubset`] if `subset ⊄ sch(l)`; otherwise the
/// same failure modes as [`crate::ops::join`].
pub fn goj(
    l: &Relation,
    r: &Relation,
    p: &Pred,
    subset: &[Attr],
) -> Result<Relation, AlgebraError> {
    // Validate S ⊆ sch(R1) and precompute its column positions in R1
    // and in the join output scheme.
    let mut s_cols_l = Vec::with_capacity(subset.len());
    for a in subset {
        s_cols_l.push(
            l.schema()
                .index_of(a)
                .ok_or_else(|| AlgebraError::BadGojSubset(a.to_string()))?,
        );
    }

    let out_schema = Arc::new(l.schema().concat(r.schema())?);
    let bound = BoundPred::bind(p, &out_schema)?;

    let mut rows = Vec::new();
    let mut row_set: HashSet<Tuple> = HashSet::new();
    // S-projections that appear in the join.
    let mut joined_s: HashSet<Tuple> = HashSet::new();
    for lt in l {
        for rt in r {
            let cat = lt.concat(rt);
            if bound.eval(&cat).is_true() {
                joined_s.insert(lt.project(&s_cols_l));
                if row_set.insert(cat.clone()) {
                    rows.push(cat);
                }
            }
        }
    }

    // π[S](R1) − π[S](JN): pad each missing S-projection with nulls on
    // every non-S attribute of the output scheme.
    let s_schema = Schema::new(subset.to_vec())?;
    let mut emitted: HashSet<Tuple> = HashSet::new();
    for lt in l {
        let s_proj = lt.project(&s_cols_l);
        if joined_s.contains(&s_proj) || !emitted.insert(s_proj.clone()) {
            continue;
        }
        let padded = s_proj.pad(&s_schema, &out_schema);
        if row_set.insert(padded.clone()) {
            rows.push(padded);
        }
    }
    Ok(Relation::from_distinct_rows(out_schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{join, outerjoin};
    use crate::value::Value;

    fn l() -> Relation {
        Relation::from_ints("L", &["k", "x"], &[&[1, 10], &[2, 20], &[2, 21], &[3, 30]])
    }
    fn r() -> Relation {
        Relation::from_ints("R", &["k"], &[&[1], &[2]])
    }
    fn p() -> Pred {
        Pred::eq_attr("L.k", "R.k")
    }

    fn attrs(names: &[&str]) -> Vec<Attr> {
        names.iter().map(|n| Attr::parse(n)).collect()
    }

    #[test]
    fn goj_full_schema_subset_equals_outerjoin() {
        // GOJ[sch(R1)] = outerjoin on duplicate-free inputs.
        let g = goj(&l(), &r(), &p(), &attrs(&["L.k", "L.x"])).unwrap();
        let oj = outerjoin(&l(), &r(), &p()).unwrap();
        assert!(g.set_eq(&oj));
    }

    #[test]
    fn goj_projects_unmatched_to_subset() {
        // S = {L.k}: unmatched tuples (3,30) contribute only their key
        // projection, padded: (3, null, null).
        let g = goj(&l(), &r(), &p(), &attrs(&["L.k"])).unwrap();
        let jn = join(&l(), &r(), &p()).unwrap();
        assert_eq!(g.len(), jn.len() + 1);
        let extra: Vec<_> = g.rows().iter().filter(|t| t.get(1).is_null()).collect();
        assert_eq!(extra.len(), 1);
        assert_eq!(
            extra[0].values(),
            &[Value::Int(3), Value::Null, Value::Null]
        );
    }

    #[test]
    fn goj_omits_unmatched_whose_projection_joined() {
        // L has k=2 twice (x=20, x=21); both join. Add an L tuple with a
        // joined key but make it non-matching via a stricter predicate.
        let l = Relation::from_ints("L", &["k", "x"], &[&[1, 10], &[1, 11]]);
        let r = Relation::from_ints("R", &["k", "y"], &[&[1, 10]]);
        // Join on k and x=y: only (1,10) matches; (1,11) does not, but
        // its S={L.k} projection (1) appeared in the join ⇒ omitted.
        let p = Pred::eq_attr("L.k", "R.k").and(Pred::eq_attr("L.x", "R.y"));
        let g = goj(&l, &r, &p, &attrs(&["L.k"])).unwrap();
        assert_eq!(g.len(), 1);
        assert!(!g.rows()[0].get(0).is_null());
    }

    #[test]
    fn goj_empty_right_degenerates_to_projection_padding() {
        let r = Relation::from_ints("R", &["k"], &[]);
        let g = goj(&l(), &r, &p(), &attrs(&["L.k"])).unwrap();
        // Distinct L.k values: 1, 2, 3 — each padded.
        assert_eq!(g.len(), 3);
        assert!(g
            .rows()
            .iter()
            .all(|t| t.get(1).is_null() && t.get(2).is_null()));
    }

    #[test]
    fn goj_rejects_subset_outside_left_schema() {
        let e = goj(&l(), &r(), &p(), &attrs(&["R.k"]));
        assert!(matches!(e, Err(AlgebraError::BadGojSubset(_))));
    }

    #[test]
    fn goj_dedups_projected_padding() {
        // Two unmatched tuples with the same S-projection produce one
        // padded row (π removes duplicates).
        let l = Relation::from_ints("L", &["k", "x"], &[&[9, 1], &[9, 2]]);
        let g = goj(&l, &r(), &p(), &attrs(&["L.k"])).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.rows()[0].get(0), &Value::Int(9));
    }
}
