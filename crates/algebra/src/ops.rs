//! The join-like operators (§1.2, §2.1) as reference implementations.
//!
//! These are deliberately simple, nested-loop, materializing operators:
//! they define the *semantics* every other component (basic transforms,
//! the optimizer, the hash-based physical engine in `fro-exec`) is
//! tested against. Paper notation:
//!
//! | paper | here |
//! |-------|------|
//! | `JN[p](R1,R2)`, `R1 − R2` | [`join`] |
//! | `OJ[p](R1,R2)`, `R1 → R2` | [`outerjoin`] (left; `R1` preserved) |
//! | `AJ[p](R1,R2)`, `R1 ▷ R2` | [`antijoin`] |
//! | semijoin | [`semijoin`] |
//! | `∪` with padding (§2.1) | [`union`] |
//! | `GOJ[S](R1,R2)` (§6.2)   | [`goj`] |

use crate::error::AlgebraError;
use crate::intern::{AttrId, Interner, RelId};
use crate::predicate::{CmpOp, Pred, Scalar};
use crate::relation::Relation;
use crate::schema::{Attr, Schema};
use crate::truth::Truth;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashSet;
use std::sync::Arc;

pub use crate::goj::goj;

/// A predicate compiled against a fixed scheme: attribute references
/// are resolved to column offsets once, so per-row evaluation does no
/// name lookups.
#[derive(Debug, Clone)]
pub enum BoundPred {
    /// Comparison of two bound scalars.
    Cmp(CmpOp, BoundScalar, BoundScalar),
    /// `IS NULL` test.
    IsNull(BoundScalar),
    /// Conjunction.
    And(Box<BoundPred>, Box<BoundPred>),
    /// Disjunction.
    Or(Box<BoundPred>, Box<BoundPred>),
    /// Negation.
    Not(Box<BoundPred>),
    /// Constant.
    Const(Truth),
}

/// A scalar term bound to a fixed scheme.
#[derive(Debug, Clone)]
pub enum BoundScalar {
    /// A resolved column offset.
    Col(usize),
    /// A literal value.
    Lit(Value),
}

impl BoundScalar {
    fn bind(s: &Scalar, schema: &Schema) -> Result<BoundScalar, AlgebraError> {
        match s {
            Scalar::Lit(v) => Ok(BoundScalar::Lit(v.clone())),
            Scalar::Attr(a) => {
                schema
                    .index_of(a)
                    .map(BoundScalar::Col)
                    .ok_or_else(|| AlgebraError::UnknownAttr {
                        attr: a.to_string(),
                        schema: schema.to_string(),
                    })
            }
        }
    }

    fn eval<'a>(&'a self, t: &'a Tuple) -> &'a Value {
        match self {
            BoundScalar::Col(i) => t.get(*i),
            BoundScalar::Lit(v) => v,
        }
    }

    fn eval_split<'a>(&'a self, left: &'a Tuple, right: &'a Tuple) -> &'a Value {
        match self {
            BoundScalar::Col(i) => {
                if *i < left.arity() {
                    left.get(*i)
                } else {
                    right.get(*i - left.arity())
                }
            }
            BoundScalar::Lit(v) => v,
        }
    }

    fn eval_parts<'a>(&'a self, parts: &[&'a Tuple]) -> &'a Value {
        match self {
            BoundScalar::Col(i) => {
                let mut i = *i;
                for p in parts {
                    if i < p.arity() {
                        return p.get(i);
                    }
                    i -= p.arity();
                }
                panic!("bound column offset past the end of the fragment chain")
            }
            BoundScalar::Lit(v) => v,
        }
    }
}

/// A predicate whose attribute references have been resolved through
/// an [`Interner`]: each reference carries its dense [`AttrId`] plus
/// the precomputed `(owner relation, column offset)` the interner
/// assigned at registration. Interning happens once per predicate;
/// binding an `IPred` against a schema ([`BoundPred::bind_interned`])
/// is then pure integer-indexed lookups — no string hashing, no name
/// resolution.
#[derive(Debug, Clone)]
pub enum IPred {
    /// Comparison of two interned scalars.
    Cmp(CmpOp, IScalar, IScalar),
    /// `IS NULL` test.
    IsNull(IScalar),
    /// Conjunction.
    And(Box<IPred>, Box<IPred>),
    /// Disjunction.
    Or(Box<IPred>, Box<IPred>),
    /// Negation.
    Not(Box<IPred>),
    /// Constant.
    Const(Truth),
}

/// A scalar term of an [`IPred`].
#[derive(Debug, Clone)]
pub enum IScalar {
    /// An interned attribute reference.
    Attr {
        /// The dense attribute id.
        id: AttrId,
        /// The owning base relation (precomputed by the interner).
        rel: RelId,
        /// Column offset within the owner's base scheme (precomputed).
        /// When binding against exactly that base scheme this *is* the
        /// bound column — no per-schema map is needed.
        col: u32,
    },
    /// A literal value.
    Lit(Value),
}

impl IScalar {
    fn from_scalar(s: &Scalar, it: &Interner) -> Option<IScalar> {
        match s {
            Scalar::Lit(v) => Some(IScalar::Lit(v.clone())),
            Scalar::Attr(a) => {
                let id = it.attr_id(a)?;
                Some(IScalar::Attr {
                    id,
                    rel: it.attr_rel(id),
                    col: it.attr_col(id),
                })
            }
        }
    }
}

impl IPred {
    /// Intern every attribute reference of `p`. Returns `None` when
    /// any attribute is unknown to the interner (e.g. a derived
    /// attribute such as an aggregate output) — callers fall back to
    /// name-based [`BoundPred::bind`].
    #[must_use]
    pub fn from_pred(p: &Pred, it: &Interner) -> Option<IPred> {
        Some(match p {
            Pred::Cmp { op, lhs, rhs } => IPred::Cmp(
                *op,
                IScalar::from_scalar(lhs, it)?,
                IScalar::from_scalar(rhs, it)?,
            ),
            Pred::IsNull(s) => IPred::IsNull(IScalar::from_scalar(s, it)?),
            Pred::And(a, b) => IPred::And(
                Box::new(IPred::from_pred(a, it)?),
                Box::new(IPred::from_pred(b, it)?),
            ),
            Pred::Or(a, b) => IPred::Or(
                Box::new(IPred::from_pred(a, it)?),
                Box::new(IPred::from_pred(b, it)?),
            ),
            Pred::Not(x) => IPred::Not(Box::new(IPred::from_pred(x, it)?)),
            Pred::Const(t) => IPred::Const(*t),
        })
    }
}

/// A dense `AttrId → column offset` map for one schema, built in a
/// single pass: slot `id.index()` holds the column where that
/// attribute sits in the schema (or a sentinel when absent). Resolving
/// an interned attribute against the schema is then one array read —
/// the direct-lookup binding the interner's precomputed `attr_col`
/// was groundwork for.
#[derive(Debug, Clone)]
pub struct AttrCols {
    cols: Vec<u32>,
}

impl AttrCols {
    const ABSENT: u32 = u32::MAX;

    /// Map every interned attribute of `schema` to its column offset.
    /// Non-interned schema columns (derived attributes) are simply
    /// absent from the map; duplicate attributes keep the first
    /// occurrence, matching [`Schema::index_of`].
    #[must_use]
    pub fn for_schema(schema: &Schema, it: &Interner) -> AttrCols {
        let mut cols = vec![AttrCols::ABSENT; it.n_attrs()];
        for (c, attr) in schema.attrs().iter().enumerate() {
            if let Some(id) = it.attr_id(attr) {
                let slot = &mut cols[id.index()];
                if *slot == AttrCols::ABSENT {
                    *slot = u32::try_from(c).expect("column offset fits in u32");
                }
            }
        }
        AttrCols { cols }
    }

    /// The column offset of `id` in the mapped schema, if present.
    #[must_use]
    pub fn col_of(&self, id: AttrId) -> Option<usize> {
        match self.cols.get(id.index()) {
            Some(&c) if c != AttrCols::ABSENT => Some(c as usize),
            _ => None,
        }
    }
}

impl BoundPred {
    /// Resolve attribute references against `schema`.
    ///
    /// # Errors
    /// [`AlgebraError::UnknownAttr`] for unresolved attributes.
    pub fn bind(p: &Pred, schema: &Schema) -> Result<BoundPred, AlgebraError> {
        Ok(match p {
            Pred::Cmp { op, lhs, rhs } => BoundPred::Cmp(
                *op,
                BoundScalar::bind(lhs, schema)?,
                BoundScalar::bind(rhs, schema)?,
            ),
            Pred::IsNull(s) => BoundPred::IsNull(BoundScalar::bind(s, schema)?),
            Pred::And(a, b) => BoundPred::And(
                Box::new(BoundPred::bind(a, schema)?),
                Box::new(BoundPred::bind(b, schema)?),
            ),
            Pred::Or(a, b) => BoundPred::Or(
                Box::new(BoundPred::bind(a, schema)?),
                Box::new(BoundPred::bind(b, schema)?),
            ),
            Pred::Not(x) => BoundPred::Not(Box::new(BoundPred::bind(x, schema)?)),
            Pred::Const(t) => BoundPred::Const(*t),
        })
    }

    /// Bind an interned predicate through a per-schema [`AttrCols`]
    /// map: every attribute resolution is a dense-array read keyed on
    /// [`AttrId`] — no name hashing. Returns `None` when any attribute
    /// is absent from the schema; callers fall back to the name-based
    /// [`BoundPred::bind`] for its diagnosable error. Binds to exactly
    /// the columns `bind` would choose, so evaluation is identical.
    #[must_use]
    pub fn bind_interned(p: &IPred, cols: &AttrCols) -> Option<BoundPred> {
        let scalar = |s: &IScalar| -> Option<BoundScalar> {
            match s {
                IScalar::Lit(v) => Some(BoundScalar::Lit(v.clone())),
                IScalar::Attr { id, .. } => cols.col_of(*id).map(BoundScalar::Col),
            }
        };
        Some(match p {
            IPred::Cmp(op, l, r) => BoundPred::Cmp(*op, scalar(l)?, scalar(r)?),
            IPred::IsNull(s) => BoundPred::IsNull(scalar(s)?),
            IPred::And(a, b) => BoundPred::And(
                Box::new(BoundPred::bind_interned(a, cols)?),
                Box::new(BoundPred::bind_interned(b, cols)?),
            ),
            IPred::Or(a, b) => BoundPred::Or(
                Box::new(BoundPred::bind_interned(a, cols)?),
                Box::new(BoundPred::bind_interned(b, cols)?),
            ),
            IPred::Not(x) => BoundPred::Not(Box::new(BoundPred::bind_interned(x, cols)?)),
            IPred::Const(t) => BoundPred::Const(*t),
        })
    }

    /// Evaluate on a tuple laid out per the bound schema.
    #[must_use]
    pub fn eval(&self, t: &Tuple) -> Truth {
        match self {
            BoundPred::Cmp(op, l, r) => match l.eval(t).cmp3(r.eval(t)) {
                None => Truth::Unknown,
                Some(ord) => Truth::from_bool(op.test(ord)),
            },
            BoundPred::IsNull(s) => Truth::from_bool(s.eval(t).is_null()),
            BoundPred::And(a, b) => a.eval(t).and(b.eval(t)),
            BoundPred::Or(a, b) => a.eval(t).or(b.eval(t)),
            BoundPred::Not(p) => p.eval(t).not(),
            BoundPred::Const(c) => *c,
        }
    }

    /// Evaluate on the *virtual* concatenation `(left, right)` without
    /// materializing it: column `i` reads from `left` when
    /// `i < left.arity()`, from `right` at offset `i - left.arity()`
    /// otherwise. Equivalent to `self.eval(&left.concat(right))` when
    /// `self` was bound against the concatenated scheme — the join
    /// kernels use this to reject candidate pairs without allocating.
    #[must_use]
    pub fn eval_split(&self, left: &Tuple, right: &Tuple) -> Truth {
        match self {
            BoundPred::Cmp(op, l, r) => {
                match l.eval_split(left, right).cmp3(r.eval_split(left, right)) {
                    None => Truth::Unknown,
                    Some(ord) => Truth::from_bool(op.test(ord)),
                }
            }
            BoundPred::IsNull(s) => Truth::from_bool(s.eval_split(left, right).is_null()),
            BoundPred::And(a, b) => a.eval_split(left, right).and(b.eval_split(left, right)),
            BoundPred::Or(a, b) => a.eval_split(left, right).or(b.eval_split(left, right)),
            BoundPred::Not(p) => p.eval_split(left, right).not(),
            BoundPred::Const(c) => *c,
        }
    }

    /// Evaluate on the virtual concatenation of an arbitrary fragment
    /// chain: column `i` reads from the first fragment whose arity it
    /// falls inside, after subtracting the arities of the fragments
    /// before it. Generalizes [`BoundPred::eval_split`] from two
    /// fragments to `n`; the pipelined executor keeps each probe row as
    /// a stack of borrowed fragments (source row, then one matched
    /// build row or pad per join) and evaluates residuals without ever
    /// allocating the concatenated tuple.
    #[must_use]
    pub fn eval_parts(&self, parts: &[&Tuple]) -> Truth {
        match self {
            BoundPred::Cmp(op, l, r) => match l.eval_parts(parts).cmp3(r.eval_parts(parts)) {
                None => Truth::Unknown,
                Some(ord) => Truth::from_bool(op.test(ord)),
            },
            BoundPred::IsNull(s) => Truth::from_bool(s.eval_parts(parts).is_null()),
            BoundPred::And(a, b) => a.eval_parts(parts).and(b.eval_parts(parts)),
            BoundPred::Or(a, b) => a.eval_parts(parts).or(b.eval_parts(parts)),
            BoundPred::Not(p) => p.eval_parts(parts).not(),
            BoundPred::Const(c) => *c,
        }
    }
}

/// Restriction: keep the tuples on which `p` is `True`.
///
/// # Errors
/// Propagates attribute-resolution failures.
pub fn restrict(input: &Relation, p: &Pred) -> Result<Relation, AlgebraError> {
    let bound = BoundPred::bind(p, input.schema())?;
    let rows = input
        .iter()
        .filter(|t| bound.eval(t).is_true())
        .cloned()
        .collect();
    Ok(Relation::from_distinct_rows(input.schema().clone(), rows))
}

/// Projection onto `attrs`; duplicates removed when `dedup` (the
/// paper's `π` removes duplicates).
///
/// # Errors
/// [`AlgebraError::BadProjection`] when an attribute is absent.
pub fn project(input: &Relation, attrs: &[Attr], dedup: bool) -> Result<Relation, AlgebraError> {
    let mut cols = Vec::with_capacity(attrs.len());
    for a in attrs {
        cols.push(
            input
                .schema()
                .index_of(a)
                .ok_or_else(|| AlgebraError::BadProjection(a.to_string()))?,
        );
    }
    let schema = Arc::new(Schema::new(attrs.to_vec())?);
    // The paper works with sets, so the `dedup` flag does not change
    // the result today; it exists for API clarity and future bag
    // semantics. Deduplicate via a hash set (not per-row scans).
    let _ = dedup;
    let mut seen: HashSet<Tuple> = HashSet::with_capacity(input.len());
    let mut rows = Vec::new();
    for t in input {
        let projected = t.project(&cols);
        if seen.insert(projected.clone()) {
            rows.push(projected);
        }
    }
    Ok(Relation::from_distinct_rows(schema, rows))
}

fn join_schema(l: &Relation, r: &Relation) -> Result<Arc<Schema>, AlgebraError> {
    Ok(Arc::new(l.schema().concat(r.schema())?))
}

/// Regular join `JN[p](R1, R2)`: concatenations of tuples satisfying
/// `p` (§1.2).
///
/// # Errors
/// [`AlgebraError::SchemasOverlap`] for overlapping schemes, plus
/// attribute-resolution failures.
pub fn join(l: &Relation, r: &Relation, p: &Pred) -> Result<Relation, AlgebraError> {
    let schema = join_schema(l, r)?;
    let bound = BoundPred::bind(p, &schema)?;
    let mut rows = Vec::new();
    for lt in l {
        for rt in r {
            let cat = lt.concat(rt);
            if bound.eval(&cat).is_true() {
                rows.push(cat);
            }
        }
    }
    // Distinct input pairs concatenate to distinct outputs.
    Ok(Relation::from_distinct_rows(schema, rows))
}

/// Left outerjoin `OJ[p](R1, R2) = R1 → R2` (§1.2): the join plus
/// non-matched `R1` tuples padded with nulls on `sch(R2)`. `R1` is the
/// *preserved* relation, `R2` the *null-supplied* relation.
///
/// # Errors
/// Same conditions as [`join`].
pub fn outerjoin(l: &Relation, r: &Relation, p: &Pred) -> Result<Relation, AlgebraError> {
    let schema = join_schema(l, r)?;
    let bound = BoundPred::bind(p, &schema)?;
    let pad = Tuple::nulls(r.schema().len());
    let mut rows = Vec::new();
    for lt in l {
        let mut matched = false;
        for rt in r {
            let cat = lt.concat(rt);
            if bound.eval(&cat).is_true() {
                matched = true;
                rows.push(cat);
            }
        }
        if !matched {
            rows.push(lt.concat(&pad));
        }
    }
    // Matched rows are distinct pairs; each padded row has a distinct
    // preserved prefix and only appears when that prefix matched
    // nothing, so it cannot collide with a matched row either.
    Ok(Relation::from_distinct_rows(schema, rows))
}

/// Two-sided (full) outerjoin: the join plus non-matched tuples of
/// *both* operands, each padded with nulls on the other side. The
/// paper sets it aside ("two-sided outerjoin will not be discussed")
/// but §4 notes that a strong predicate above converts it to the
/// one-sided form — implemented in `fro-core::simplify`, which needs
/// the operator to exist.
///
/// # Errors
/// Same conditions as [`join`].
pub fn full_outerjoin(l: &Relation, r: &Relation, p: &Pred) -> Result<Relation, AlgebraError> {
    let schema = join_schema(l, r)?;
    let bound = BoundPred::bind(p, &schema)?;
    let pad_r = Tuple::nulls(r.schema().len());
    let pad_l = Tuple::nulls(l.schema().len());
    let mut rows = Vec::new();
    let mut right_matched = vec![false; r.len()];
    for lt in l {
        let mut matched = false;
        for (ri, rt) in r.iter().enumerate() {
            let cat = lt.concat(rt);
            if bound.eval(&cat).is_true() {
                matched = true;
                right_matched[ri] = true;
                rows.push(cat);
            }
        }
        if !matched {
            rows.push(lt.concat(&pad_r));
        }
    }
    for (ri, rt) in r.iter().enumerate() {
        if !right_matched[ri] {
            rows.push(pad_l.concat(rt));
        }
    }
    // An all-null unmatched tuple on each side pads to the same
    // all-null wide row; dedup to keep set semantics.
    let mut seen = HashSet::with_capacity(rows.len());
    rows.retain(|t| seen.insert(t.clone()));
    Ok(Relation::from_distinct_rows(schema, rows))
}

/// Antijoin `AJ[p](R1, R2) = R1 ▷ R2` (§2.1): the `R1` tuples with no
/// `p`-partner in `R2`. The result scheme is `sch(R1)`.
///
/// # Errors
/// Same conditions as [`join`].
pub fn antijoin(l: &Relation, r: &Relation, p: &Pred) -> Result<Relation, AlgebraError> {
    let schema = join_schema(l, r)?; // validates disjointness & binds p
    let bound = BoundPred::bind(p, &schema)?;
    let rows = l
        .iter()
        .filter(|lt| !r.iter().any(|rt| bound.eval(&lt.concat(rt)).is_true()))
        .cloned()
        .collect();
    Ok(Relation::from_distinct_rows(l.schema().clone(), rows))
}

/// Semijoin: the `R1` tuples with at least one `p`-partner in `R2`.
///
/// # Errors
/// Same conditions as [`join`].
pub fn semijoin(l: &Relation, r: &Relation, p: &Pred) -> Result<Relation, AlgebraError> {
    let schema = join_schema(l, r)?;
    let bound = BoundPred::bind(p, &schema)?;
    let rows = l
        .iter()
        .filter(|lt| r.iter().any(|rt| bound.eval(&lt.concat(rt)).is_true()))
        .cloned()
        .collect();
    Ok(Relation::from_distinct_rows(l.schema().clone(), rows))
}

/// Grouped counting — the paper's §1.1 motivation via \[MURA89\]
/// ("processing queries with Count operations"): group by the given
/// attributes and count, per group, the rows whose `counted` attribute
/// is non-null (all rows when `counted` is `None`).
///
/// Combined with an outerjoin this yields the classic
/// departments-with-employee-counts query *including zero counts*: the
/// padded tuples of `Dept → Emp` have a null employee key, so they
/// contribute a group with count 0 — exactly why the outerjoin (and
/// not the join) is the right substrate for counting.
///
/// The output scheme is the group attributes plus `agg.count`.
///
/// # Errors
/// [`AlgebraError::BadProjection`] for unknown attributes.
pub fn group_count(
    input: &Relation,
    group_attrs: &[Attr],
    counted: Option<&Attr>,
) -> Result<Relation, AlgebraError> {
    let mut group_cols = Vec::with_capacity(group_attrs.len());
    for a in group_attrs {
        group_cols.push(
            input
                .schema()
                .index_of(a)
                .ok_or_else(|| AlgebraError::BadProjection(a.to_string()))?,
        );
    }
    let counted_col = match counted {
        None => None,
        Some(a) => Some(
            input
                .schema()
                .index_of(a)
                .ok_or_else(|| AlgebraError::BadProjection(a.to_string()))?,
        ),
    };
    let mut attrs = group_attrs.to_vec();
    attrs.push(Attr::new("agg", "count"));
    let schema = Arc::new(Schema::new(attrs)?);

    let mut counts: std::collections::HashMap<Tuple, i64> = std::collections::HashMap::new();
    let mut order: Vec<Tuple> = Vec::new();
    for t in input {
        let key = t.project(&group_cols);
        let contributes = match counted_col {
            None => true,
            Some(c) => !t.get(c).is_null(),
        };
        match counts.entry(key.clone()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i64::from(contributes));
                order.push(key);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() += i64::from(contributes);
            }
        }
    }
    let rows = order
        .into_iter()
        .map(|key| {
            let n = counts[&key];
            key.concat(&Tuple::new(vec![Value::Int(n)]))
        })
        .collect();
    Ok(Relation::from_distinct_rows(schema, rows))
}

/// Union with the paper's §2.1 padding convention: pad both operands
/// to the union of their schemes, then take the set union.
///
/// # Errors
/// Currently infallible in practice; returns `Result` for uniformity.
pub fn union(l: &Relation, r: &Relation) -> Result<Relation, AlgebraError> {
    let target = l.schema().union(r.schema());
    let lp = l.pad_to(&target);
    let rp = r.pad_to(&target);
    let schema = lp.schema().clone();
    let mut seen: HashSet<Tuple> = lp.rows().iter().cloned().collect();
    let mut rows: Vec<Tuple> = lp.rows().to_vec();
    for t in rp.rows() {
        if seen.insert(t.clone()) {
            rows.push(t.clone());
        }
    }
    Ok(Relation::from_distinct_rows(schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Pred;

    fn r1() -> Relation {
        Relation::from_ints("R1", &["a"], &[&[1], &[2]])
    }
    fn r2() -> Relation {
        Relation::from_ints("R2", &["b"], &[&[2], &[3]])
    }
    fn p12() -> Pred {
        Pred::eq_attr("R1.a", "R2.b")
    }

    #[test]
    fn join_keeps_matches_only() {
        let out = join(&r1(), &r2(), &p12()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].values(), &[Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn join_rejects_overlapping_schemes() {
        assert!(matches!(
            join(&r1(), &r1(), &Pred::always()),
            Err(AlgebraError::SchemasOverlap)
        ));
    }

    #[test]
    fn outerjoin_pads_unmatched_preserved_tuples() {
        let out = outerjoin(&r1(), &r2(), &p12()).unwrap();
        assert_eq!(out.len(), 2);
        let padded: Vec<_> = out.rows().iter().filter(|t| t.get(1).is_null()).collect();
        assert_eq!(padded.len(), 1);
        assert_eq!(padded[0].get(0), &Value::Int(1));
    }

    #[test]
    fn outerjoin_definition_identity_10() {
        // X → Y = (X − Y) ∪ (X ▷ Y), identity 10 of the paper.
        let lhs = outerjoin(&r1(), &r2(), &p12()).unwrap();
        let jn = join(&r1(), &r2(), &p12()).unwrap();
        let aj = antijoin(&r1(), &r2(), &p12()).unwrap();
        let rhs = union(&jn, &aj).unwrap();
        assert!(lhs.set_eq(&rhs));
    }

    #[test]
    fn full_outerjoin_preserves_both_sides() {
        let out = full_outerjoin(&r1(), &r2(), &p12()).unwrap();
        // r1 {1,2}, r2 {2,3}: match (2,2); unmatched 1 (right-padded);
        // unmatched 3 (left-padded).
        assert_eq!(out.len(), 3);
        assert!(out.rows().iter().any(|t| t.get(1).is_null()));
        assert!(out.rows().iter().any(|t| t.get(0).is_null()));
        // Equivalent to (R1 → R2) ∪ (R2 → R1) under padding.
        let l = outerjoin(&r1(), &r2(), &p12()).unwrap();
        let r = outerjoin(&r2(), &r1(), &p12()).unwrap();
        let u = union(&l, &r).unwrap();
        assert!(out.set_eq(&u));
    }

    #[test]
    fn full_outerjoin_empty_sides() {
        let empty = Relation::from_ints("R2", &["b"], &[]);
        let out = full_outerjoin(&r1(), &empty, &p12()).unwrap();
        assert_eq!(out.len(), 2); // both r1 rows padded
        let out =
            full_outerjoin(&empty, &r1().renamed("R3"), &Pred::eq_attr("R2.b", "R3.a")).unwrap();
        assert_eq!(out.len(), 2); // both right rows left-padded
        assert!(out.rows().iter().all(|t| t.get(0).is_null()));
    }

    #[test]
    fn antijoin_complement_semijoin() {
        let aj = antijoin(&r1(), &r2(), &p12()).unwrap();
        let sj = semijoin(&r1(), &r2(), &p12()).unwrap();
        assert_eq!(aj.len() + sj.len(), r1().len());
        let both = union(&aj, &sj).unwrap();
        assert!(both.set_eq(&r1()));
    }

    #[test]
    fn antijoin_with_empty_right_keeps_all() {
        let empty = Relation::from_ints("R2", &["b"], &[]);
        let aj = antijoin(&r1(), &empty, &p12()).unwrap();
        assert!(aj.set_eq(&r1()));
        let oj = outerjoin(&r1(), &empty, &p12()).unwrap();
        assert_eq!(oj.len(), 2);
        assert!(oj.rows().iter().all(|t| t.get(1).is_null()));
    }

    #[test]
    fn null_join_keys_do_not_match() {
        let l = Relation::from_values("L", &["k"], vec![vec![Value::Null], vec![Value::Int(1)]]);
        let r = Relation::from_values("R", &["k"], vec![vec![Value::Null], vec![Value::Int(1)]]);
        let out = join(&l, &r, &Pred::eq_attr("L.k", "R.k")).unwrap();
        assert_eq!(out.len(), 1); // only (1,1); null ≠ null
    }

    #[test]
    fn restrict_filters_unknown_as_false() {
        let r = Relation::from_values(
            "R",
            &["a"],
            vec![vec![Value::Int(5)], vec![Value::Null], vec![Value::Int(0)]],
        );
        let out = restrict(&r, &Pred::cmp_lit("R.a", CmpOp::Gt, 1)).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn project_with_dedup() {
        let r = Relation::from_ints("R", &["a", "b"], &[&[1, 10], &[1, 20]]);
        let out = project(&r, &[Attr::parse("R.a")], true).unwrap();
        assert_eq!(out.len(), 1);
        let bad = project(&r, &[Attr::parse("R.zzz")], true);
        assert!(matches!(bad, Err(AlgebraError::BadProjection(_))));
    }

    #[test]
    fn group_count_counts_non_null_occurrences() {
        // Dept → Emp, count employees per dept including empty depts.
        let dept = Relation::from_ints("D", &["id"], &[&[1], &[2], &[3]]);
        let emp = Relation::from_ints("E", &["id", "dept"], &[&[10, 1], &[11, 1], &[12, 2]]);
        let oj = outerjoin(&dept, &emp, &Pred::eq_attr("D.id", "E.dept")).unwrap();
        let counts = group_count(&oj, &[Attr::parse("D.id")], Some(&Attr::parse("E.id"))).unwrap();
        assert_eq!(counts.len(), 3);
        let mut by_dept: Vec<(i64, i64)> = counts
            .rows()
            .iter()
            .map(|t| match (t.get(0), t.get(1)) {
                (Value::Int(d), Value::Int(c)) => (*d, *c),
                other => panic!("{other:?}"),
            })
            .collect();
        by_dept.sort_unstable();
        assert_eq!(by_dept, vec![(1, 2), (2, 1), (3, 0)]);
        // A plain join + count silently loses dept 3 (the paper's
        // motivation for outerjoins in Count queries).
        let jn = join(&dept, &emp, &Pred::eq_attr("D.id", "E.dept")).unwrap();
        let jn_counts =
            group_count(&jn, &[Attr::parse("D.id")], Some(&Attr::parse("E.id"))).unwrap();
        assert_eq!(jn_counts.len(), 2);
    }

    #[test]
    fn group_count_without_counted_counts_rows() {
        let r = Relation::from_ints("R", &["g", "v"], &[&[1, 10], &[1, 11], &[2, 20]]);
        let counts = group_count(&r, &[Attr::parse("R.g")], None).unwrap();
        assert_eq!(counts.len(), 2);
        assert!(counts.schema().contains(&Attr::new("agg", "count")));
        let bad = group_count(&r, &[Attr::parse("R.zzz")], None);
        assert!(matches!(bad, Err(AlgebraError::BadProjection(_))));
    }

    #[test]
    fn union_pads_schemes() {
        let a = Relation::from_ints("R", &["a"], &[&[1]]);
        let b = Relation::from_ints("S", &["b"], &[&[2]]);
        let u = union(&a, &b).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.schema().len(), 2);
        // Row from a has null S.b; row from b has null R.a.
        assert!(u.rows().iter().any(|t| t.values().contains(&Value::Null)));
    }

    #[test]
    fn union_is_set_union() {
        let a = Relation::from_ints("R", &["a"], &[&[1], &[2]]);
        let b = Relation::from_ints("R", &["a"], &[&[2], &[3]]);
        let u = union(&a, &b).unwrap();
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn semijoin_keeps_left_schema() {
        let sj = semijoin(&r1(), &r2(), &p12()).unwrap();
        assert_eq!(sj.schema().as_ref(), r1().schema().as_ref());
        assert_eq!(sj.len(), 1);
    }

    #[test]
    fn eval_split_agrees_with_eval_on_concat() {
        let l = r1();
        let r = r2();
        let schema = Arc::new(l.schema().concat(r.schema()).unwrap());
        let preds = [
            p12(),
            Pred::always(),
            Pred::is_null("R2.b"),
            p12().not(),
            p12().and(Pred::cmp_lit("R1.a", CmpOp::Ge, 2)),
            p12().or(Pred::is_null("R1.a")),
        ];
        for p in &preds {
            let bound = BoundPred::bind(p, &schema).unwrap();
            for lt in &l {
                for rt in &r {
                    assert_eq!(bound.eval_split(lt, rt), bound.eval(&lt.concat(rt)), "{p}");
                    assert_eq!(
                        bound.eval_parts(&[lt, rt]),
                        bound.eval(&lt.concat(rt)),
                        "{p}"
                    );
                }
            }
        }
    }

    #[test]
    fn eval_parts_agrees_with_eval_on_any_fragmentation() {
        let l = r1();
        let r = r2();
        let wide = Arc::new(l.schema().concat(r.schema()).unwrap());
        let p = p12().and(Pred::cmp_lit("R1.a", CmpOp::Ge, 1));
        let bound = BoundPred::bind(&p, &wide).unwrap();
        for lt in &l {
            for rt in &r {
                let cat = lt.concat(rt);
                // Whole row as one fragment must agree with eval.
                assert_eq!(bound.eval_parts(&[&cat]), bound.eval(&cat));
            }
        }
    }

    fn test_interner() -> Interner {
        let mut it = Interner::new();
        it.register_relation("R1", r1().schema());
        it.register_relation("R2", r2().schema());
        it
    }

    #[test]
    fn interned_scalars_carry_precomputed_resolution() {
        let it = test_interner();
        let p = Pred::cmp_lit("R2.b", CmpOp::Ge, 1);
        let Some(IPred::Cmp(_, IScalar::Attr { id, rel, col }, IScalar::Lit(_))) =
            IPred::from_pred(&p, &it)
        else {
            panic!("interning a catalog attribute must succeed");
        };
        assert_eq!(rel, it.attr_rel(id));
        assert_eq!(col, it.attr_col(id));
        assert_eq!(it.attr(id), &Attr::parse("R2.b"));
        // Within the owner's own base scheme the precomputed offset IS
        // the binding.
        assert_eq!(
            col as usize,
            r2().schema().index_of(&Attr::parse("R2.b")).unwrap()
        );
    }

    #[test]
    fn interned_binding_matches_name_binding() {
        let it = test_interner();
        let l = r1();
        let r = r2();
        let schema = Arc::new(l.schema().concat(r.schema()).unwrap());
        let cols = AttrCols::for_schema(&schema, &it);
        let preds = [
            p12(),
            Pred::always(),
            Pred::is_null("R2.b"),
            p12().not(),
            p12().and(Pred::cmp_lit("R1.a", CmpOp::Ge, 2)),
            p12().or(Pred::is_null("R1.a")),
        ];
        for p in &preds {
            let by_name = BoundPred::bind(p, &schema).unwrap();
            let ip = IPred::from_pred(p, &it).expect("catalog attrs intern");
            let by_id = BoundPred::bind_interned(&ip, &cols).expect("present in schema");
            for lt in &l {
                for rt in &r {
                    assert_eq!(by_id.eval_split(lt, rt), by_name.eval_split(lt, rt), "{p}");
                }
            }
        }
    }

    #[test]
    fn interning_unknown_attrs_falls_back() {
        let it = test_interner();
        // Unknown to the interner: interning refuses.
        assert!(IPred::from_pred(&Pred::is_null("Z.q"), &it).is_none());
        // Interned but absent from the schema: binding refuses.
        let ip = IPred::from_pred(&Pred::is_null("R2.b"), &it).unwrap();
        let cols = AttrCols::for_schema(r1().schema(), &it);
        assert!(BoundPred::bind_interned(&ip, &cols).is_none());
    }
}
