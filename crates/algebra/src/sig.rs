//! Stable structural hashing for plan-cache signatures.
//!
//! The cross-query plan cache keys subplans on a *graph signature*: a
//! hash of a query graph's interned structure (relation names, edge
//! kinds, outerjoin directions, predicate shapes) that is identical
//! for alpha-equivalent queries — the same graph written in any
//! association, with its relations listed in any order. Theorem 1 is
//! what makes this sound: for a freely-reorderable query the graph
//! *is* the query, so the signature identifies the full plan space,
//! not one syntactic tree.
//!
//! `std::hash::Hash` is unsuitable for durable keys: `DefaultHasher`
//! is seeded per process and its algorithm is explicitly unspecified.
//! [`StableHasher`] is FNV-1a over explicit byte encodings, so a
//! signature means the same thing across runs (and could be persisted
//! next to serialized plans later). Every domain type that
//! participates in a signature implements [`SigHash`], writing a
//! discriminant tag before its payload so that e.g. `IsNull(x)` and
//! `Not(x)` can never collide structurally.

use crate::intern::{AttrId, RelId, RelSet};
use crate::predicate::{CmpOp, Pred, Scalar};
use crate::schema::Attr;
use crate::truth::Truth;
use crate::value::Value;

/// FNV-1a, 64-bit: deterministic across processes and platforms.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// A hasher in its initial state.
    #[must_use]
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Fold one byte into the state.
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Fold raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Fold a `u32` (little-endian) into the state.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold a `u64` (little-endian) into the state.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold a length-prefixed string into the state (the prefix keeps
    /// `"ab" + "c"` distinct from `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

/// Structural hashing into a [`StableHasher`] — the signature
/// counterpart of `std::hash::Hash`, with a specified encoding.
pub trait SigHash {
    /// Fold this value's structure into the hasher.
    fn sig_hash(&self, h: &mut StableHasher);
}

/// Hash a value standalone and return the digest.
#[must_use]
pub fn sig_hash_of<T: SigHash + ?Sized>(v: &T) -> u64 {
    let mut h = StableHasher::new();
    v.sig_hash(&mut h);
    h.finish()
}

impl SigHash for RelId {
    fn sig_hash(&self, h: &mut StableHasher) {
        h.write_u32(u32::try_from(self.index()).expect("RelId fits in u32"));
    }
}

impl SigHash for AttrId {
    fn sig_hash(&self, h: &mut StableHasher) {
        h.write_u32(u32::try_from(self.index()).expect("AttrId fits in u32"));
    }
}

impl SigHash for RelSet {
    fn sig_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.bits());
    }
}

impl SigHash for Attr {
    fn sig_hash(&self, h: &mut StableHasher) {
        h.write_str(self.rel());
        h.write_str(self.name());
    }
}

impl SigHash for Value {
    fn sig_hash(&self, h: &mut StableHasher) {
        match self {
            Value::Null => h.write_u8(0),
            Value::Int(i) => {
                h.write_u8(1);
                h.write_u64(*i as u64);
            }
            Value::Str(s) => {
                h.write_u8(2);
                h.write_str(s);
            }
            Value::Bool(b) => {
                h.write_u8(3);
                h.write_u8(u8::from(*b));
            }
        }
    }
}

impl SigHash for CmpOp {
    fn sig_hash(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        });
    }
}

impl SigHash for Truth {
    fn sig_hash(&self, h: &mut StableHasher) {
        h.write_u8(match self {
            Truth::False => 0,
            Truth::Unknown => 1,
            Truth::True => 2,
        });
    }
}

impl SigHash for Scalar {
    fn sig_hash(&self, h: &mut StableHasher) {
        match self {
            Scalar::Attr(a) => {
                h.write_u8(0);
                a.sig_hash(h);
            }
            Scalar::Lit(v) => {
                h.write_u8(1);
                v.sig_hash(h);
            }
        }
    }
}

impl SigHash for Pred {
    fn sig_hash(&self, h: &mut StableHasher) {
        match self {
            Pred::Cmp { op, lhs, rhs } => {
                h.write_u8(0);
                op.sig_hash(h);
                lhs.sig_hash(h);
                rhs.sig_hash(h);
            }
            Pred::IsNull(s) => {
                h.write_u8(1);
                s.sig_hash(h);
            }
            Pred::And(a, b) => {
                h.write_u8(2);
                a.sig_hash(h);
                b.sig_hash(h);
            }
            Pred::Or(a, b) => {
                h.write_u8(3);
                a.sig_hash(h);
                b.sig_hash(h);
            }
            Pred::Not(p) => {
                h.write_u8(4);
                p.sig_hash(h);
            }
            Pred::Const(t) => {
                h.write_u8(5);
                t.sig_hash(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let p = Pred::eq_attr("A.k", "B.k").and(Pred::cmp_lit("A.v", CmpOp::Gt, 7));
        assert_eq!(sig_hash_of(&p), sig_hash_of(&p.clone()));
    }

    #[test]
    fn structure_disambiguated_by_tags() {
        // IsNull(x) vs Not(IsNull(x)) vs Const must all differ.
        let x = Pred::IsNull(Scalar::attr("A.k"));
        let not_x = x.clone().not();
        assert_ne!(sig_hash_of(&x), sig_hash_of(&not_x));
        assert_ne!(sig_hash_of(&x), sig_hash_of(&Pred::always()));
        // And vs Or over the same children.
        let a = Pred::eq_attr("A.k", "B.k");
        let b = Pred::eq_attr("A.v", "B.v");
        let and = a.clone().and(b.clone());
        let or = a.or(b);
        assert_ne!(sig_hash_of(&and), sig_hash_of(&or));
    }

    #[test]
    fn literal_values_are_part_of_the_shape() {
        // Cached plans embed their literals, so `v = 1` and `v = 2`
        // must not collide.
        let p1 = Pred::cmp_lit("A.v", CmpOp::Eq, 1);
        let p2 = Pred::cmp_lit("A.v", CmpOp::Eq, 2);
        assert_ne!(sig_hash_of(&p1), sig_hash_of(&p2));
    }

    #[test]
    fn string_prefix_keeps_boundaries() {
        let mut h1 = StableHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = StableHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }
}
