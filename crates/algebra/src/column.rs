//! Columnar mirrors of relations with vectorized predicate and key
//! kernels.
//!
//! A [`ColumnSet`] decomposes a row-major [`Relation`] into one typed
//! vector per attribute — `i64`s, dict-encoded strings (`u32` codes
//! into a per-table [`Dictionary`]), bools, or a generic `Value`
//! fallback for heterogeneous columns — each with a validity [`Bitmap`]
//! for nulls, a null count, an exact distinct count, and per-zone
//! min/max metadata ([`ZONE_ROWS`] rows per zone).
//!
//! On top of the layout sit two kernels the execution engines call:
//!
//! * [`ColumnSet::eval_pred`] evaluates a [`BoundPred`] over the whole
//!   column set as tight per-column loops, producing a [`SelMask`] —
//!   a pair of bitmaps carrying the rows where the predicate is
//!   definitely `True` and definitely `False` (rows in neither are
//!   `Unknown`). The result is bit-for-bit the same selection as
//!   calling [`BoundPred::eval`] on every row. Zones whose min/max
//!   metadata already decides a comparison are skipped without
//!   touching the data.
//! * [`ColumnSet::hash_key_at`] hashes a key-column combination for
//!   one row exactly as the row-major engine hashes assembled tuple
//!   keys (same `DefaultHasher` byte stream), without materializing a
//!   row — string keys hash their dictionary entry, so no `String` is
//!   cloned or assembled on the build path.
//!
//! The layout is a *mirror*: the row-major `Relation` remains the
//! source of truth for output assembly (engines still emit `Tuple`s),
//! which keeps results, order, and work counters bit-identical to the
//! row-at-a-time paths while the scan/filter/build inner loops run
//! over flat vectors.

use crate::ops::{BoundPred, BoundScalar};
use crate::predicate::CmpOp;
use crate::relation::Relation;
use crate::truth::Truth;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Rows per metadata zone: each column keeps min/max and a null count
/// for every [`ZONE_ROWS`]-row chunk, the granularity at which the
/// predicate kernel can skip data entirely.
pub const ZONE_ROWS: usize = 1024;

/// A fixed-length bit vector over `u64` words. Bits past `len` in the
/// last word are kept zero by every operation, so popcounts never see
/// ghost bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zeros bitmap of `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-ones bitmap of `len` bits (tail bits zero).
    #[must_use]
    pub fn ones(len: usize) -> Bitmap {
        let mut b = Bitmap {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Extend the bitmap with `add` zero bits (tail bits of the old
    /// last word are already zero, so existing reads are unaffected).
    pub fn grow(&mut self, add: usize) {
        self.len += add;
        self.words.resize(self.len.div_ceil(64), 0);
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Population count over the whole bitmap.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Population count over bit range `lo..hi`.
    #[must_use]
    pub fn count_ones_range(&self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi && hi <= self.len);
        if lo >= hi {
            return 0;
        }
        let (wl, wh) = (lo / 64, (hi - 1) / 64);
        let mut n = 0usize;
        for w in wl..=wh {
            n += (self.words[w] & Bitmap::range_mask(w, lo, hi)).count_ones() as usize;
        }
        n
    }

    /// The mask selecting the bits of word `w` that fall in `lo..hi`.
    fn range_mask(w: usize, lo: usize, hi: usize) -> u64 {
        let mut mask = !0u64;
        if w == lo / 64 {
            mask &= !0u64 << (lo % 64);
        }
        if w == (hi - 1) / 64 {
            let top = hi - w * 64;
            if top < 64 {
                mask &= (1u64 << top) - 1;
            }
        }
        mask
    }

    /// Call `f(i)` for every set bit `i` in `lo..hi`, in ascending
    /// order.
    pub fn for_each_one_in(&self, lo: usize, hi: usize, mut f: impl FnMut(usize)) {
        debug_assert!(lo <= hi && hi <= self.len);
        if lo >= hi {
            return;
        }
        let (wl, wh) = (lo / 64, (hi - 1) / 64);
        for w in wl..=wh {
            let mut bits = self.words[w] & Bitmap::range_mask(w, lo, hi);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                f(w * 64 + b);
                bits &= bits - 1;
            }
        }
    }

    /// `self &= other` (equal lengths).
    pub fn and_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other` (equal lengths).
    pub fn or_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Flip every bit in place (tail bits stay zero).
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// The bitwise complement.
    #[must_use]
    pub fn negated(&self) -> Bitmap {
        let mut out = self.clone();
        out.negate();
        out
    }

    /// `self[lo..hi] |= src[lo..hi]` — used to bulk-copy validity bits
    /// into a selection for metadata-decided zones.
    pub fn union_range(&mut self, src: &Bitmap, lo: usize, hi: usize) {
        debug_assert!(lo <= hi && hi <= self.len && self.len == src.len);
        if lo >= hi {
            return;
        }
        let (wl, wh) = (lo / 64, (hi - 1) / 64);
        for w in wl..=wh {
            self.words[w] |= src.words[w] & Bitmap::range_mask(w, lo, hi);
        }
    }

    /// `self[lo..hi] |= (a & b)[lo..hi]` — the two-sided validity copy
    /// for metadata-decided column-vs-column zones.
    pub fn union_range_and(&mut self, a: &Bitmap, b: &Bitmap, lo: usize, hi: usize) {
        debug_assert!(lo <= hi && hi <= self.len && self.len == a.len && self.len == b.len);
        if lo >= hi {
            return;
        }
        let (wl, wh) = (lo / 64, (hi - 1) / 64);
        for w in wl..=wh {
            self.words[w] |= a.words[w] & b.words[w] & Bitmap::range_mask(w, lo, hi);
        }
    }
}

/// Per-zone column metadata: min/max over the zone's non-null values
/// (total [`Value`] order) plus the zone's null count. `min_max` is
/// `None` when the zone holds only nulls.
#[derive(Debug, Clone)]
pub struct Zone {
    min_max: Option<(Value, Value)>,
    nulls: usize,
}

impl Zone {
    /// Min and max over the zone's non-null values, if any.
    #[must_use]
    pub fn min_max(&self) -> Option<(&Value, &Value)> {
        self.min_max.as_ref().map(|(a, b)| (a, b))
    }

    /// Nulls in this zone.
    #[must_use]
    pub fn nulls(&self) -> usize {
        self.nulls
    }
}

/// The per-table string dictionary: distinct strings in
/// first-appearance order, so a string column stores `u32` codes.
/// Equality on codes is equality on strings; order comparisons go
/// through the sealed rank permutation (`rank[code]` = position of the
/// code's string in sorted order), so `rank` comparisons agree with
/// `String` order.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<Value>,
    codes: HashMap<String, u32>,
    rank: Vec<u32>,
}

impl Dictionary {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.codes.get(s) {
            return c;
        }
        let c = u32::try_from(self.values.len()).expect("dictionary codes fit in u32");
        self.codes.insert(s.to_owned(), c);
        self.values.push(Value::Str(s.to_owned()));
        c
    }

    /// Freeze the dictionary: compute the rank permutation used for
    /// order comparisons on codes.
    fn seal(&mut self) {
        let mut order: Vec<u32> = (0..self.values.len() as u32).collect();
        order.sort_by(|&a, &b| self.values[a as usize].cmp(&self.values[b as usize]));
        self.rank = vec![0; order.len()];
        for (pos, &code) in order.iter().enumerate() {
            self.rank[code as usize] = u32::try_from(pos).expect("rank fits in u32");
        }
    }

    /// Number of distinct strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary holds no strings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The interned [`Value::Str`] for `code`.
    #[must_use]
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// The code of `s`, if interned.
    #[must_use]
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.codes.get(s).copied()
    }

    /// The sort rank of `code` among all interned strings.
    #[must_use]
    pub fn rank(&self, code: u32) -> u32 {
        self.rank[code as usize]
    }
}

/// The typed payload vector of one column. Invalid (null) slots hold
/// arbitrary placeholders and are never interpreted — the validity
/// bitmap guards every read.
#[derive(Debug, Clone)]
enum ColData {
    /// All non-null values are `Value::Int`.
    Int(Vec<i64>),
    /// All non-null values are `Value::Bool`.
    Bool(Vec<bool>),
    /// All non-null values are `Value::Str`, stored as dictionary codes.
    Str(Vec<u32>),
    /// Heterogeneous column: values stored directly (`Value::Null` at
    /// null slots).
    Mixed(Vec<Value>),
}

/// One attribute of a [`ColumnSet`]: the typed vector plus validity,
/// null count, exact distinct count, and zone metadata.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColData,
    validity: Bitmap,
    null_count: usize,
    distinct: u64,
    zones: Vec<Zone>,
}

impl Column {
    /// Nulls in this column.
    #[must_use]
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Exact distinct count, counting null (when present) as one value
    /// — the convention the optimizer catalog uses.
    #[must_use]
    pub fn distinct(&self) -> u64 {
        self.distinct
    }

    /// The zone metadata ([`ZONE_ROWS`] rows per zone).
    #[must_use]
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Column-wide min/max over non-null values (folds the zones).
    #[must_use]
    pub fn min_max(&self) -> Option<(&Value, &Value)> {
        let mut acc: Option<(&Value, &Value)> = None;
        for z in &self.zones {
            if let Some((lo, hi)) = z.min_max() {
                acc = Some(match acc {
                    None => (lo, hi),
                    Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
                });
            }
        }
        acc
    }

    /// Whether `row` holds a non-null value.
    #[must_use]
    pub fn is_valid(&self, row: usize) -> bool {
        self.validity.get(row)
    }

    /// The validity bitmap (bit set = non-null).
    #[must_use]
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Push the values of `rows` at column `c` onto this column's
    /// vectors, starting at row id `old_rows`. Values were already
    /// validated against the layout by [`ColumnSet::append_rows`]. The
    /// trailing partial zone extends in place — min/max only widen
    /// under appends — and fresh zones open at `ZONE_ROWS` boundaries.
    fn append(
        &mut self,
        rows: &[crate::tuple::Tuple],
        c: usize,
        old_rows: usize,
        dict: &Dictionary,
    ) {
        self.validity.grow(rows.len());
        for (i, t) in rows.iter().enumerate() {
            let slot = old_rows + i;
            let v = t.get(c);
            if v.is_null() {
                self.null_count += 1;
            } else {
                self.validity.set(slot);
            }
            match &mut self.data {
                ColData::Int(xs) => xs.push(if let Value::Int(x) = v { *x } else { 0 }),
                ColData::Bool(xs) => xs.push(if let Value::Bool(b) = v { *b } else { false }),
                ColData::Str(xs) => xs.push(match v {
                    Value::Str(s) => dict.code_of(s).expect("validated against dictionary"),
                    _ => 0,
                }),
                ColData::Mixed(xs) => xs.push(v.clone()),
            }
            if slot.is_multiple_of(ZONE_ROWS) {
                self.zones.push(Zone {
                    min_max: None,
                    nulls: 0,
                });
            }
            let z = self.zones.last_mut().expect("zone opened above");
            if v.is_null() {
                z.nulls += 1;
            } else {
                z.min_max = Some(match z.min_max.take() {
                    None => (v.clone(), v.clone()),
                    Some((lo, hi)) => (
                        if *v < lo { v.clone() } else { lo },
                        if *v > hi { v.clone() } else { hi },
                    ),
                });
            }
        }
    }
}

/// A vectorized three-valued selection: bit `i` of `trues` is set
/// where the predicate is definitely `True` on row `i`, bit `i` of
/// `falses` where it is definitely `False`; rows in neither bitmap
/// evaluated to `Unknown`. The two bitmaps are disjoint.
#[derive(Debug, Clone)]
pub struct SelMask {
    t: Bitmap,
    f: Bitmap,
}

impl SelMask {
    fn constant(truth: Truth, len: usize) -> SelMask {
        match truth {
            Truth::True => SelMask {
                t: Bitmap::ones(len),
                f: Bitmap::zeros(len),
            },
            Truth::False => SelMask {
                t: Bitmap::zeros(len),
                f: Bitmap::ones(len),
            },
            Truth::Unknown => SelMask {
                t: Bitmap::zeros(len),
                f: Bitmap::zeros(len),
            },
        }
    }

    /// Rows where the predicate is definitely `True` — the filter
    /// selection under SQL `WHERE` semantics.
    #[must_use]
    pub fn trues(&self) -> &Bitmap {
        &self.t
    }

    /// Rows where the predicate is definitely `False`.
    #[must_use]
    pub fn falses(&self) -> &Bitmap {
        &self.f
    }

    /// Number of selected (`True`) rows.
    #[must_use]
    pub fn true_count(&self) -> usize {
        self.t.count_ones()
    }

    /// Consume the mask, keeping only the definitely-`True` bitmap —
    /// what a `WHERE` filter drives its output from.
    #[must_use]
    pub fn into_trues(self) -> Bitmap {
        self.t
    }
}

/// The per-row view of a typed non-null cell, ordered exactly like the
/// non-null [`Value`] variants (`Int < Str < Bool`, payload order
/// within a variant).
enum TypedRef<'a> {
    Int(i64),
    Str(&'a Value),
    Bool(bool),
}

impl TypedRef<'_> {
    fn tag(&self) -> u8 {
        match self {
            TypedRef::Int(_) => 0,
            TypedRef::Str(_) => 1,
            TypedRef::Bool(_) => 2,
        }
    }

    fn cmp_ref(&self, other: &TypedRef<'_>) -> Ordering {
        match (self, other) {
            (TypedRef::Int(a), TypedRef::Int(b)) => a.cmp(b),
            (TypedRef::Str(a), TypedRef::Str(b)) => a.cmp(b),
            (TypedRef::Bool(a), TypedRef::Bool(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

/// The columnar mirror of one relation: a typed [`Column`] per
/// attribute plus the shared per-table string [`Dictionary`].
#[derive(Debug, Clone)]
pub struct ColumnSet {
    rows: usize,
    dict: Dictionary,
    cols: Vec<Column>,
}

impl ColumnSet {
    /// Decompose `rel` into typed columns. Each column picks the
    /// narrowest layout its non-null values admit (`Int`/`Bool`/dict
    /// `Str`, falling back to direct `Value` storage for heterogeneous
    /// columns); all string columns share one per-table dictionary.
    #[must_use]
    pub fn build(rel: &Relation) -> ColumnSet {
        let n = rel.len();
        let width = rel.schema().len();
        let mut dict = Dictionary::default();
        let mut cols = Vec::with_capacity(width);
        for c in 0..width {
            cols.push(ColumnSet::build_column(rel, c, &mut dict));
        }
        dict.seal();
        ColumnSet {
            rows: n,
            dict,
            cols,
        }
    }

    fn build_column(rel: &Relation, c: usize, dict: &mut Dictionary) -> Column {
        #[derive(Clone, Copy, PartialEq)]
        enum Kind {
            Unknown,
            Int,
            Str,
            Bool,
            Mixed,
        }
        let n = rel.len();
        let mut kind = Kind::Unknown;
        for t in rel.rows() {
            let vk = match t.get(c) {
                Value::Null => continue,
                Value::Int(_) => Kind::Int,
                Value::Str(_) => Kind::Str,
                Value::Bool(_) => Kind::Bool,
            };
            if kind == Kind::Unknown {
                kind = vk;
            } else if kind != vk {
                kind = Kind::Mixed;
                break;
            }
        }

        let mut validity = Bitmap::zeros(n);
        let mut null_count = 0usize;
        let data = match kind {
            Kind::Unknown | Kind::Int => {
                let mut xs = vec![0i64; n];
                for (i, t) in rel.rows().iter().enumerate() {
                    match t.get(c) {
                        Value::Int(v) => {
                            xs[i] = *v;
                            validity.set(i);
                        }
                        _ => null_count += 1,
                    }
                }
                ColData::Int(xs)
            }
            Kind::Bool => {
                let mut xs = vec![false; n];
                for (i, t) in rel.rows().iter().enumerate() {
                    match t.get(c) {
                        Value::Bool(v) => {
                            xs[i] = *v;
                            validity.set(i);
                        }
                        _ => null_count += 1,
                    }
                }
                ColData::Bool(xs)
            }
            Kind::Str => {
                let mut xs = vec![0u32; n];
                for (i, t) in rel.rows().iter().enumerate() {
                    match t.get(c) {
                        Value::Str(s) => {
                            xs[i] = dict.intern(s);
                            validity.set(i);
                        }
                        _ => null_count += 1,
                    }
                }
                ColData::Str(xs)
            }
            Kind::Mixed => {
                let mut xs = Vec::with_capacity(n);
                for (i, t) in rel.rows().iter().enumerate() {
                    let v = t.get(c);
                    if v.is_null() {
                        null_count += 1;
                    } else {
                        validity.set(i);
                    }
                    xs.push(v.clone());
                }
                ColData::Mixed(xs)
            }
        };

        // Zone metadata pass: min/max over non-null values plus a null
        // count per ZONE_ROWS chunk.
        let mut zones = Vec::with_capacity(n.div_ceil(ZONE_ROWS));
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + ZONE_ROWS).min(n);
            let mut min_max: Option<(Value, Value)> = None;
            let mut nulls = 0usize;
            for t in &rel.rows()[lo..hi] {
                let v = t.get(c);
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                min_max = Some(match min_max {
                    None => (v.clone(), v.clone()),
                    Some((zmin, zmax)) => {
                        let zmin = if *v < zmin { v.clone() } else { zmin };
                        let zmax = if *v > zmax { v.clone() } else { zmax };
                        (zmin, zmax)
                    }
                });
            }
            zones.push(Zone { min_max, nulls });
            lo = hi;
        }

        // Exact distinct count with the catalog's convention: null, if
        // present, counts as one value.
        let distinct = rel
            .rows()
            .iter()
            .map(|t| t.get(c))
            .collect::<HashSet<_>>()
            .len() as u64;

        Column {
            data,
            validity,
            null_count,
            distinct,
            zones,
        }
    }

    /// Append pre-deduplicated rows in place, extending every column's
    /// typed vector, validity bitmap, null count, and zone metadata —
    /// the O(|delta|) layout-maintenance path behind base-table
    /// appends. `distinct` supplies each column's new exact distinct
    /// count (the caller tracks the value sets; this structure only
    /// stores the result, under the same null-counts-as-one convention
    /// as [`ColumnSet::build`]).
    ///
    /// Returns `false` without modifying anything when some value
    /// cannot join its column's existing layout — a new type in a
    /// typed column, or a string absent from the sealed dictionary —
    /// in which case the caller rebuilds with [`ColumnSet::build`].
    pub fn append_rows(&mut self, rows: &[crate::tuple::Tuple], distinct: &[u64]) -> bool {
        debug_assert_eq!(distinct.len(), self.cols.len());
        // Validation pass first: nothing mutates unless every value of
        // every row fits its column's layout.
        for (c, col) in self.cols.iter().enumerate() {
            for t in rows {
                let fits = match (t.get(c), &col.data) {
                    (Value::Null, _) => true,
                    (Value::Int(_), ColData::Int(_)) => true,
                    (Value::Bool(_), ColData::Bool(_)) => true,
                    (Value::Str(s), ColData::Str(_)) => self.dict.code_of(s).is_some(),
                    (_, ColData::Mixed(_)) => true,
                    _ => false,
                };
                if !fits {
                    return false;
                }
            }
        }
        let old_rows = self.rows;
        for (c, col) in self.cols.iter_mut().enumerate() {
            col.append(rows, c, old_rows, &self.dict);
            col.distinct = distinct[c];
        }
        self.rows += rows.len();
        true
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The column at offset `c`.
    #[must_use]
    pub fn column(&self, c: usize) -> &Column {
        &self.cols[c]
    }

    /// The shared per-table string dictionary.
    #[must_use]
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The cell at `(row, col)`, reassembled as an owned [`Value`]
    /// (oracle/testing convenience — engines read columns directly).
    #[must_use]
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        let c = &self.cols[col];
        if !c.validity.get(row) {
            return Value::Null;
        }
        match &c.data {
            ColData::Int(xs) => Value::Int(xs[row]),
            ColData::Bool(xs) => Value::Bool(xs[row]),
            ColData::Str(xs) => self.dict.value(xs[row]).clone(),
            ColData::Mixed(xs) => xs[row].clone(),
        }
    }

    fn typed_at<'a>(&'a self, col: &'a Column, row: usize) -> Option<TypedRef<'a>> {
        if !col.validity.get(row) {
            return None;
        }
        Some(match &col.data {
            ColData::Int(xs) => TypedRef::Int(xs[row]),
            ColData::Bool(xs) => TypedRef::Bool(xs[row]),
            ColData::Str(xs) => TypedRef::Str(self.dict.value(xs[row])),
            ColData::Mixed(xs) => match &xs[row] {
                Value::Int(v) => TypedRef::Int(*v),
                Value::Bool(v) => TypedRef::Bool(*v),
                s @ Value::Str(_) => TypedRef::Str(s),
                Value::Null => unreachable!("validity bit set on a null slot"),
            },
        })
    }

    /// Vectorized [`BoundPred`] evaluation (`pred` bound against this
    /// relation's own scheme): produces the same per-row [`Truth`] as
    /// [`BoundPred::eval`] on every row, as a [`SelMask`]. Comparison
    /// leaves consult zone min/max metadata first; zones the metadata
    /// already proves can contain no `True` row are resolved without
    /// touching the data, and each such zone bumps `skipped`.
    #[must_use]
    pub fn eval_pred(&self, pred: &BoundPred, skipped: &mut u64) -> SelMask {
        let n = self.rows;
        match pred {
            BoundPred::Const(truth) => SelMask::constant(*truth, n),
            BoundPred::IsNull(s) => match s {
                BoundScalar::Lit(v) => SelMask::constant(Truth::from_bool(v.is_null()), n),
                BoundScalar::Col(i) => {
                    let validity = &self.cols[*i].validity;
                    SelMask {
                        t: validity.negated(),
                        f: validity.clone(),
                    }
                }
            },
            BoundPred::Not(p) => {
                let m = self.eval_pred(p, skipped);
                SelMask { t: m.f, f: m.t }
            }
            BoundPred::And(a, b) => {
                let mut ma = self.eval_pred(a, skipped);
                let mb = self.eval_pred(b, skipped);
                ma.t.and_assign(&mb.t);
                ma.f.or_assign(&mb.f);
                ma
            }
            BoundPred::Or(a, b) => {
                let mut ma = self.eval_pred(a, skipped);
                let mb = self.eval_pred(b, skipped);
                ma.t.or_assign(&mb.t);
                ma.f.and_assign(&mb.f);
                ma
            }
            BoundPred::Cmp(op, l, r) => match (l, r) {
                (BoundScalar::Lit(a), BoundScalar::Lit(b)) => {
                    let truth = match a.cmp3(b) {
                        None => Truth::Unknown,
                        Some(ord) => Truth::from_bool(op.test(ord)),
                    };
                    SelMask::constant(truth, n)
                }
                (BoundScalar::Col(i), BoundScalar::Lit(v)) => self.cmp_col_lit(*op, *i, v, skipped),
                (BoundScalar::Lit(v), BoundScalar::Col(i)) => {
                    self.cmp_col_lit(op.flipped(), *i, v, skipped)
                }
                (BoundScalar::Col(i), BoundScalar::Col(j)) => {
                    self.cmp_col_col(*op, *i, *j, skipped)
                }
            },
        }
    }

    /// Over the orderings attainable in `[ord_lo, ord_hi]`
    /// (`Less < Equal < Greater`): does `op` hold for any / for all?
    fn interval_test(op: CmpOp, ord_lo: Ordering, ord_hi: Ordering) -> (bool, bool) {
        let mut any = false;
        let mut all = true;
        for ord in [Ordering::Less, Ordering::Equal, Ordering::Greater] {
            if ord >= ord_lo && ord <= ord_hi {
                if op.test(ord) {
                    any = true;
                } else {
                    all = false;
                }
            }
        }
        (any, all)
    }

    fn cmp_col_lit(&self, op: CmpOp, ci: usize, lit: &Value, skipped: &mut u64) -> SelMask {
        let n = self.rows;
        let col = &self.cols[ci];
        let mut t = Bitmap::zeros(n);
        let mut f = Bitmap::zeros(n);
        if lit.is_null() {
            // Every comparison is Unknown; no zone needs its data.
            *skipped += col.zones.len() as u64;
            return SelMask { t, f };
        }
        // Per-code truth table for dict-encoded string columns, built
        // lazily on the first zone that actually needs the data.
        let mut code_table: Option<Vec<bool>> = None;
        for (zi, zone) in col.zones.iter().enumerate() {
            let lo = zi * ZONE_ROWS;
            let hi = (lo + ZONE_ROWS).min(n);
            let Some((zmin, zmax)) = zone.min_max() else {
                *skipped += 1; // all-null zone: all Unknown
                continue;
            };
            let (any, all) = ColumnSet::interval_test(op, zmin.cmp(lit), zmax.cmp(lit));
            if !any {
                // No row in the zone can satisfy op: every non-null row
                // is definitely False, without reading the data.
                f.union_range(&col.validity, lo, hi);
                *skipped += 1;
            } else if all {
                // Every non-null row satisfies op — still metadata-only.
                t.union_range(&col.validity, lo, hi);
            } else {
                self.cmp_lit_zone(op, col, lit, lo, hi, &mut t, &mut f, &mut code_table);
            }
        }
        SelMask { t, f }
    }

    /// The ambiguous-zone tight loop of [`ColumnSet::cmp_col_lit`]. An
    /// ambiguous zone implies the literal's type tag lies within the
    /// zone's min/max type range, so a typed column sees a like-typed
    /// literal here; the `else` arms are unreachable but kept total.
    #[allow(clippy::too_many_arguments)]
    fn cmp_lit_zone(
        &self,
        op: CmpOp,
        col: &Column,
        lit: &Value,
        lo: usize,
        hi: usize,
        t: &mut Bitmap,
        f: &mut Bitmap,
        code_table: &mut Option<Vec<bool>>,
    ) {
        match (&col.data, lit) {
            (ColData::Int(xs), Value::Int(lv)) => {
                for (i, x) in xs.iter().enumerate().take(hi).skip(lo) {
                    if col.validity.get(i) {
                        if op.test(x.cmp(lv)) {
                            t.set(i);
                        } else {
                            f.set(i);
                        }
                    }
                }
            }
            (ColData::Bool(xs), Value::Bool(lv)) => {
                for (i, x) in xs.iter().enumerate().take(hi).skip(lo) {
                    if col.validity.get(i) {
                        if op.test(x.cmp(lv)) {
                            t.set(i);
                        } else {
                            f.set(i);
                        }
                    }
                }
            }
            (ColData::Str(xs), Value::Str(_)) => {
                let table = code_table.get_or_insert_with(|| {
                    self.dict
                        .values
                        .iter()
                        .map(|v| op.test(v.cmp(lit)))
                        .collect()
                });
                for (i, code) in xs.iter().enumerate().take(hi).skip(lo) {
                    if col.validity.get(i) {
                        if table[*code as usize] {
                            t.set(i);
                        } else {
                            f.set(i);
                        }
                    }
                }
            }
            (ColData::Mixed(xs), _) => {
                for (i, x) in xs.iter().enumerate().take(hi).skip(lo) {
                    if let Some(ord) = x.cmp3(lit) {
                        if op.test(ord) {
                            t.set(i);
                        } else {
                            f.set(i);
                        }
                    }
                }
            }
            // Cross-type fallback: the comparison reduces to the type
            // tags, the same for every non-null row.
            _ => {
                let sample = match &col.data {
                    ColData::Int(_) => Value::Int(0),
                    ColData::Bool(_) => Value::Bool(false),
                    ColData::Str(_) => Value::Str(String::new()),
                    ColData::Mixed(_) => unreachable!("handled above"),
                };
                if op.test(sample.cmp(lit)) {
                    t.union_range(&col.validity, lo, hi);
                } else {
                    f.union_range(&col.validity, lo, hi);
                }
            }
        }
    }

    fn cmp_col_col(&self, op: CmpOp, ci: usize, cj: usize, skipped: &mut u64) -> SelMask {
        let n = self.rows;
        let a = &self.cols[ci];
        let b = &self.cols[cj];
        let mut t = Bitmap::zeros(n);
        let mut f = Bitmap::zeros(n);
        let n_zones = a.zones.len();
        for zi in 0..n_zones {
            let lo = zi * ZONE_ROWS;
            let hi = (lo + ZONE_ROWS).min(n);
            let (Some((amin, amax)), Some((bmin, bmax))) =
                (a.zones[zi].min_max(), b.zones[zi].min_max())
            else {
                *skipped += 1; // one side all-null: all Unknown
                continue;
            };
            // a.cmp(b) over the zone lies within [amin.cmp(bmax),
            // amax.cmp(bmin)] — a conservative ordering interval.
            let (any, all) = ColumnSet::interval_test(op, amin.cmp(bmax), amax.cmp(bmin));
            if !any {
                f.union_range_and(&a.validity, &b.validity, lo, hi);
                *skipped += 1;
            } else if all {
                t.union_range_and(&a.validity, &b.validity, lo, hi);
            } else {
                self.cmp_col_zone(op, a, b, lo, hi, &mut t, &mut f);
            }
        }
        SelMask { t, f }
    }

    #[allow(clippy::too_many_arguments)]
    fn cmp_col_zone(
        &self,
        op: CmpOp,
        a: &Column,
        b: &Column,
        lo: usize,
        hi: usize,
        t: &mut Bitmap,
        f: &mut Bitmap,
    ) {
        match (&a.data, &b.data) {
            (ColData::Int(xs), ColData::Int(ys)) => {
                for i in lo..hi {
                    if a.validity.get(i) && b.validity.get(i) {
                        if op.test(xs[i].cmp(&ys[i])) {
                            t.set(i);
                        } else {
                            f.set(i);
                        }
                    }
                }
            }
            (ColData::Bool(xs), ColData::Bool(ys)) => {
                for i in lo..hi {
                    if a.validity.get(i) && b.validity.get(i) {
                        if op.test(xs[i].cmp(&ys[i])) {
                            t.set(i);
                        } else {
                            f.set(i);
                        }
                    }
                }
            }
            (ColData::Str(xs), ColData::Str(ys)) => {
                // Shared dictionary: rank order is string order.
                for i in lo..hi {
                    if a.validity.get(i) && b.validity.get(i) {
                        let ord = self.dict.rank(xs[i]).cmp(&self.dict.rank(ys[i]));
                        if op.test(ord) {
                            t.set(i);
                        } else {
                            f.set(i);
                        }
                    }
                }
            }
            _ => {
                for i in lo..hi {
                    if let (Some(va), Some(vb)) = (self.typed_at(a, i), self.typed_at(b, i)) {
                        if op.test(va.cmp_ref(&vb)) {
                            t.set(i);
                        } else {
                            f.set(i);
                        }
                    }
                }
            }
        }
    }

    /// Hash the key columns of one row exactly as the row-major engine
    /// hashes an assembled tuple key: each key [`Value`] fed in column
    /// order into one `DefaultHasher`. Returns `None` when any key
    /// value is null (null keys never match). String keys hash their
    /// interned dictionary entry — no row assembly, no `String` clone.
    #[must_use]
    pub fn hash_key_at(&self, key_cols: &[usize], row: usize) -> Option<u64> {
        let mut h = DefaultHasher::new();
        for &c in key_cols {
            let col = &self.cols[c];
            if !col.validity.get(row) {
                return None;
            }
            match &col.data {
                ColData::Int(xs) => Value::Int(xs[row]).hash(&mut h),
                ColData::Bool(xs) => Value::Bool(xs[row]).hash(&mut h),
                ColData::Str(xs) => self.dict.value(xs[row]).hash(&mut h),
                ColData::Mixed(xs) => xs[row].hash(&mut h),
            }
        }
        Some(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    /// Deterministic xorshift generator (no external deps, no clock).
    struct Rng(u64);
    impl Rng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    fn mixed_relation(rows: usize, seed: u64) -> Relation {
        let mut rng = Rng(seed | 1);
        let mut data = Vec::with_capacity(rows);
        for _ in 0..rows {
            let int_v = match rng.below(10) {
                0 => Value::Null,
                d => Value::Int(rng.below(40) as i64 - 20 + i64::from(d == 1)),
            };
            let str_v = match rng.below(8) {
                0 => Value::Null,
                _ => Value::str(format!("s{}", rng.below(6))),
            };
            let bool_v = match rng.below(6) {
                0 => Value::Null,
                _ => Value::Bool(rng.below(2) == 1),
            };
            let any_v = match rng.below(4) {
                0 => Value::Null,
                1 => Value::Int(rng.below(5) as i64),
                2 => Value::str(format!("m{}", rng.below(3))),
                _ => Value::Bool(rng.below(2) == 0),
            };
            data.push(vec![int_v, str_v, bool_v, any_v]);
        }
        Relation::from_values("R", &["a", "b", "c", "d"], data)
    }

    fn pred_suite() -> Vec<BoundPred> {
        use BoundPred as P;
        use BoundScalar as S;
        let lit = |v: Value| S::Lit(v);
        vec![
            P::Cmp(CmpOp::Ge, S::Col(0), lit(Value::Int(0))),
            P::Cmp(CmpOp::Eq, S::Col(0), lit(Value::Int(3))),
            P::Cmp(CmpOp::Lt, lit(Value::Int(-5)), S::Col(0)),
            P::Cmp(CmpOp::Eq, S::Col(1), lit(Value::str("s2"))),
            P::Cmp(CmpOp::Gt, S::Col(1), lit(Value::str("s3"))),
            P::Cmp(CmpOp::Eq, S::Col(1), lit(Value::str("absent"))),
            P::Cmp(CmpOp::Eq, S::Col(2), lit(Value::Bool(true))),
            P::Cmp(CmpOp::Ne, S::Col(3), lit(Value::Int(2))),
            P::Cmp(CmpOp::Le, S::Col(3), lit(Value::str("m1"))),
            P::Cmp(CmpOp::Eq, S::Col(0), lit(Value::Null)),
            P::Cmp(CmpOp::Gt, S::Col(0), lit(Value::str("zz"))),
            P::Cmp(CmpOp::Lt, S::Col(1), lit(Value::Bool(false))),
            P::Cmp(CmpOp::Eq, S::Col(0), S::Col(3)),
            P::Cmp(CmpOp::Le, S::Col(0), S::Col(0)),
            P::Cmp(CmpOp::Gt, S::Col(1), S::Col(3)),
            P::IsNull(S::Col(0)),
            P::IsNull(S::Lit(Value::Null)),
            P::Const(Truth::Unknown),
            P::Not(Box::new(P::Cmp(CmpOp::Ge, S::Col(0), lit(Value::Int(0))))),
            P::And(
                Box::new(P::Cmp(CmpOp::Ge, S::Col(0), lit(Value::Int(-10)))),
                Box::new(P::Cmp(CmpOp::Eq, S::Col(2), lit(Value::Bool(false)))),
            ),
            P::Or(
                Box::new(P::IsNull(S::Col(1))),
                Box::new(P::Cmp(CmpOp::Lt, S::Col(0), S::Col(3))),
            ),
            P::Not(Box::new(P::Or(
                Box::new(P::Cmp(CmpOp::Eq, S::Col(1), lit(Value::str("s0")))),
                Box::new(P::IsNull(S::Col(3))),
            ))),
        ]
    }

    fn assert_mask_matches(rel: &Relation, cs: &ColumnSet, p: &BoundPred) {
        let mut skipped = 0u64;
        let m = cs.eval_pred(p, &mut skipped);
        for (i, t) in rel.rows().iter().enumerate() {
            let truth = p.eval(t);
            assert_eq!(m.trues().get(i), truth == Truth::True, "{p:?} row {i}");
            assert_eq!(m.falses().get(i), truth == Truth::False, "{p:?} row {i}");
        }
    }

    #[test]
    fn append_rows_matches_full_rebuild() {
        let full = mixed_relation(2200, 99);
        let split = full.len() * 2 / 3; // crosses ZONE_ROWS boundaries
        let prefix =
            Relation::from_distinct_rows(full.schema().clone(), full.rows()[..split].to_vec());
        let mut cs = ColumnSet::build(&prefix);
        let suffix: Vec<Tuple> = full.rows()[split..].to_vec();
        let distinct: Vec<u64> = (0..full.schema().len())
            .map(|c| {
                full.rows()
                    .iter()
                    .map(|t| t.get(c))
                    .collect::<HashSet<_>>()
                    .len() as u64
            })
            .collect();
        assert!(
            cs.append_rows(&suffix, &distinct),
            "suffix values all fit the prefix layout"
        );
        let rebuilt = ColumnSet::build(&full);
        assert_eq!(cs.rows(), rebuilt.rows());
        for c in 0..cs.width() {
            let (a, b) = (cs.column(c), rebuilt.column(c));
            assert_eq!(a.null_count(), b.null_count(), "col {c}");
            assert_eq!(a.distinct(), b.distinct(), "col {c}");
            assert_eq!(a.min_max(), b.min_max(), "col {c}");
            assert_eq!(a.zones().len(), b.zones().len(), "col {c}");
            for (z, (za, zb)) in a.zones().iter().zip(b.zones()).enumerate() {
                assert_eq!(za.min_max(), zb.min_max(), "col {c} zone {z}");
                assert_eq!(za.nulls(), zb.nulls(), "col {c} zone {z}");
            }
            for r in 0..cs.rows() {
                assert_eq!(cs.value_at(r, c), rebuilt.value_at(r, c), "cell {r},{c}");
            }
        }
        // The predicate kernel over the appended mirror matches the
        // row-at-a-time oracle, zones included.
        for p in pred_suite() {
            assert_mask_matches(&full, &cs, &p);
        }
    }

    #[test]
    fn append_rows_refuses_layout_breaks_without_mutating() {
        let rel = Relation::from_ints("R", &["k", "v"], &[&[1, 10], &[2, 20]]);
        let mut cs = ColumnSet::build(&rel);
        // A new type in a typed column is refused whole.
        let bad = Tuple::new(vec![Value::Bool(true), Value::Int(1)]);
        assert!(!cs.append_rows(&[bad], &[3, 3]));
        assert_eq!(cs.rows(), 2);
        assert_eq!(cs.column(0).distinct(), 2);
        // A string the sealed dictionary has never seen is refused;
        // nulls always fit.
        let strs = Relation::from_values("S", &["s"], vec![vec![Value::str("a")]]);
        let mut cs = ColumnSet::build(&strs);
        assert!(!cs.append_rows(&[Tuple::new(vec![Value::str("b")])], &[2]));
        assert_eq!(cs.rows(), 1);
        assert!(cs.append_rows(&[Tuple::new(vec![Value::Null])], &[2]));
        assert_eq!(cs.rows(), 2);
        assert_eq!(cs.column(0).null_count(), 1);
        assert_eq!(cs.value_at(1, 0), Value::Null);
    }

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::zeros(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129) && !b.get(1));
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.count_ones_range(0, 65), 2);
        assert_eq!(b.count_ones_range(1, 64), 0);
        assert_eq!(b.count_ones_range(64, 130), 2);
        let mut seen = Vec::new();
        b.for_each_one_in(1, 130, |i| seen.push(i));
        assert_eq!(seen, vec![64, 129]);
        let inv = b.negated();
        assert_eq!(inv.count_ones(), 130 - 3);
        assert_eq!(Bitmap::ones(130).count_ones(), 130);
        let mut dst = Bitmap::zeros(130);
        dst.union_range(&b, 0, 65);
        assert_eq!(dst.count_ones(), 2);
        let mut both = Bitmap::zeros(130);
        both.union_range_and(&b, &Bitmap::ones(130), 60, 130);
        assert_eq!(both.count_ones(), 2);
    }

    #[test]
    fn typed_columns_and_metadata() {
        let rel = Relation::from_values(
            "R",
            &["i", "s", "n"],
            vec![
                vec![Value::Int(5), Value::str("b"), Value::Null],
                vec![Value::Int(-2), Value::Null, Value::Null],
                vec![Value::Int(5), Value::str("a"), Value::Null],
            ],
        );
        let cs = ColumnSet::build(&rel);
        assert_eq!(cs.rows(), 3);
        assert_eq!(cs.width(), 3);
        let i = cs.column(0);
        assert_eq!(i.null_count(), 0);
        assert_eq!(i.distinct(), 2);
        assert_eq!(
            i.min_max(),
            Some((&Value::Int(-2), &Value::Int(5))),
            "column min/max folds zones"
        );
        let s = cs.column(1);
        assert_eq!(s.null_count(), 1);
        assert_eq!(s.distinct(), 3, "null counts as one distinct value");
        let n = cs.column(2);
        assert_eq!(n.null_count(), 3);
        assert_eq!(n.distinct(), 1);
        assert_eq!(n.min_max(), None);
        // Cells reassemble exactly.
        for (r, t) in rel.rows().iter().enumerate() {
            for c in 0..3 {
                assert_eq!(&cs.value_at(r, c), t.get(c));
            }
        }
        // Dictionary: shared codes, rank order = string order.
        let d = cs.dict();
        assert_eq!(d.len(), 2);
        let (cb, ca) = (d.code_of("b").unwrap(), d.code_of("a").unwrap());
        assert!(d.rank(ca) < d.rank(cb));
        assert_eq!(d.code_of("zzz"), None);
        assert_eq!(d.value(ca), &Value::str("a"));
    }

    #[test]
    fn eval_matches_row_oracle_on_random_data() {
        for seed in [3, 99, 4096] {
            let rel = mixed_relation(700, seed);
            let cs = ColumnSet::build(&rel);
            for p in &pred_suite() {
                assert_mask_matches(&rel, &cs, p);
            }
        }
    }

    #[test]
    fn eval_matches_row_oracle_across_many_zones() {
        // > 2 zones, sorted keys: exercises both metadata-decided and
        // ambiguous zones.
        let rows: Vec<Vec<Value>> = (0..3000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    if i % 97 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i % 7)
                    },
                ]
            })
            .collect();
        let rel = Relation::from_values("R", &["k", "m"], rows);
        let cs = ColumnSet::build(&rel);
        let preds = [
            BoundPred::Cmp(
                CmpOp::Lt,
                BoundScalar::Col(0),
                BoundScalar::Lit(Value::Int(1500)),
            ),
            BoundPred::Cmp(
                CmpOp::Eq,
                BoundScalar::Col(0),
                BoundScalar::Lit(Value::Int(2048)),
            ),
            BoundPred::Cmp(CmpOp::Ge, BoundScalar::Col(0), BoundScalar::Col(1)),
            BoundPred::Not(Box::new(BoundPred::Cmp(
                CmpOp::Gt,
                BoundScalar::Col(0),
                BoundScalar::Lit(Value::Int(2999)),
            ))),
        ];
        for p in &preds {
            assert_mask_matches(&rel, &cs, p);
        }
        // Sorted keys: an out-of-range equality resolves every zone
        // from metadata alone.
        let mut skipped = 0u64;
        let never = BoundPred::Cmp(
            CmpOp::Eq,
            BoundScalar::Col(0),
            BoundScalar::Lit(Value::Int(1 << 40)),
        );
        let m = cs.eval_pred(&never, &mut skipped);
        assert_eq!(m.true_count(), 0);
        assert_eq!(skipped, cs.column(0).zones().len() as u64);
        // A selective range predicate skips the zones outside it.
        skipped = 0;
        let range = BoundPred::Cmp(
            CmpOp::Lt,
            BoundScalar::Col(0),
            BoundScalar::Lit(Value::Int(100)),
        );
        let m = cs.eval_pred(&range, &mut skipped);
        assert_eq!(m.true_count(), 100);
        assert!(skipped >= 1, "upper zones prune via min/max");
    }

    #[test]
    fn eval_on_empty_and_all_null_relations() {
        let empty = Relation::from_values("R", &["a"], vec![]);
        let cs = ColumnSet::build(&empty);
        let p = BoundPred::Cmp(
            CmpOp::Eq,
            BoundScalar::Col(0),
            BoundScalar::Lit(Value::Int(1)),
        );
        let mut sk = 0;
        assert_eq!(cs.eval_pred(&p, &mut sk).true_count(), 0);

        let nulls = Relation::from_values("R", &["a"], vec![vec![Value::Null], vec![Value::Null]]);
        let cs = ColumnSet::build(&nulls);
        assert_mask_matches(&nulls, &cs, &p);
        assert_mask_matches(&nulls, &cs, &BoundPred::IsNull(BoundScalar::Col(0)));
    }

    #[test]
    fn hash_matches_row_major_tuple_hash() {
        let rel = mixed_relation(300, 7);
        let cs = ColumnSet::build(&rel);
        let hash_row = |t: &Tuple, cols: &[usize]| -> Option<u64> {
            let mut h = DefaultHasher::new();
            for &c in cols {
                let v = t.get(c);
                if v.is_null() {
                    return None;
                }
                v.hash(&mut h);
            }
            Some(h.finish())
        };
        for cols in [vec![0], vec![1], vec![3], vec![0, 1], vec![2, 3, 0]] {
            for (i, t) in rel.rows().iter().enumerate() {
                assert_eq!(
                    cs.hash_key_at(&cols, i),
                    hash_row(t, &cols),
                    "key {cols:?} row {i}"
                );
            }
        }
    }
}
