//! §6.2: reassociating *non*-freely-reorderable queries with the
//! generalized outerjoin.
//!
//! The result-preserving basic transforms cannot reassociate
//! `X → (Y − Z)` (Example 2). Identities 15 and 16 recover the lost
//! orders by switching operators instead of refusing the move:
//!
//! * identity 15: `X OJ (Y JN Z) = (X OJ Y) GOJ[sch(X)] Z`
//! * identity 16: `X JN (Y GOJ[S] Z) = (X JN Y) GOJ[S ∪ sch(X)] Z`
//!   when `S ⊆ sch(Y)` and `S` contains all `X`–`Y` join attributes
//!
//! Both assume duplicate-free relations and strong predicates of the
//! forms `P_xy`, `P_yz` (checked here before rewriting).

use crate::optimizer::Catalog;
use fro_algebra::{Attr, Query};
use std::collections::BTreeSet;

/// Attributes produced by a join/outerjoin subtree, from the catalog
/// (assumes no interior projections, which holds for the OJ/J fragment).
fn subtree_attrs(q: &Query, catalog: &Catalog) -> Vec<Attr> {
    let rels: Vec<String> = q.leaves();
    catalog.attrs_of_rels(rels.iter())
}

fn strong_between(pred: &fro_algebra::Pred, left: &Query, right: &Query) -> bool {
    let lrels: BTreeSet<String> = left.rels();
    let rrels: BTreeSet<String> = right.rels();
    lrels.iter().any(|r| pred.is_strong_on_rel(r)) && rrels.iter().any(|r| pred.is_strong_on_rel(r))
}

/// Identity 15, left to right: rewrite `X → (Y − Z)` into
/// `(X → Y) GOJ[sch(X)] Z`. Returns `None` when the root is not of
/// that shape or the predicate preconditions fail.
#[must_use]
pub fn oj_of_join_to_goj(q: &Query, catalog: &Catalog) -> Option<Query> {
    let Query::OuterJoin {
        left: x,
        right,
        pred: pxy,
    } = q
    else {
        return None;
    };
    let Query::Join {
        left: y,
        right: z,
        pred: pyz,
    } = right.as_ref()
    else {
        return None;
    };
    // Predicate shape: Pxy between X and Y (not Z); Pyz between Y and Z
    // (not X); both strong on the relations they reference.
    let pxy_rels = pxy.rels();
    if pxy_rels.iter().any(|r| z.rels().contains(r)) {
        return None;
    }
    let pyz_rels = pyz.rels();
    if pyz_rels.iter().any(|r| x.rels().contains(r)) {
        return None;
    }
    if !strong_between(pxy, x, y) || !strong_between(pyz, y, z) {
        return None;
    }
    let sx = subtree_attrs(x, catalog);
    if sx.is_empty() {
        return None;
    }
    Some(Query::Goj {
        left: Box::new(
            x.as_ref()
                .clone()
                .outerjoin(y.as_ref().clone(), pxy.clone()),
        ),
        right: z.clone(),
        pred: pyz.clone(),
        subset: sx,
    })
}

/// Identity 16, left to right: rewrite `X − (Y GOJ[S] Z)` into
/// `(X − Y) GOJ[S ∪ sch(X)] Z`, provided `S ⊆ sch(Y)` and `S`
/// contains every `Y` attribute the `X`–`Y` predicate references.
#[must_use]
pub fn join_of_goj_pullup(q: &Query, catalog: &Catalog) -> Option<Query> {
    let Query::Join {
        left: x,
        right,
        pred: pxy,
    } = q
    else {
        return None;
    };
    let Query::Goj {
        left: y,
        right: z,
        pred: pyz,
        subset,
    } = right.as_ref()
    else {
        return None;
    };
    let y_rels = y.rels();
    // S ⊆ sch(Y).
    if !subset.iter().all(|a| y_rels.contains(a.rel())) {
        return None;
    }
    // S must contain the Y-side attributes referenced by Pxy.
    let needed: Vec<Attr> = pxy
        .attrs()
        .into_iter()
        .filter(|a| y_rels.contains(a.rel()))
        .collect();
    if !needed.iter().all(|a| subset.contains(a)) {
        return None;
    }
    if pxy.rels().iter().any(|r| z.rels().contains(r))
        || pyz.rels().iter().any(|r| x.rels().contains(r))
    {
        return None;
    }
    if !strong_between(pxy, x, y) {
        return None;
    }
    let mut s_ext = subset.clone();
    for a in subtree_attrs(x, catalog) {
        if !s_ext.contains(&a) {
            s_ext.push(a);
        }
    }
    Some(Query::Goj {
        left: Box::new(x.as_ref().clone().join(y.as_ref().clone(), pxy.clone())),
        right: z.clone(),
        pred: pyz.clone(),
        subset: s_ext,
    })
}

/// All GOJ-based reassociations of `q` obtainable by one application
/// of identity 15 or 16 at any node.
#[must_use]
pub fn goj_alternatives(q: &Query, catalog: &Catalog) -> Vec<Query> {
    let mut out = Vec::new();
    collect(q, catalog, &mut out);
    out
}

fn collect(q: &Query, catalog: &Catalog, out: &mut Vec<Query>) {
    if let Some(rw) = oj_of_join_to_goj(q, catalog) {
        out.push(rw);
    }
    if let Some(rw) = join_of_goj_pullup(q, catalog) {
        out.push(rw);
    }
    // Recurse: rewrite children in place.
    match q {
        Query::Join { left, right, pred } => {
            let mut l_alts = Vec::new();
            collect(left, catalog, &mut l_alts);
            for la in l_alts {
                out.push(Query::Join {
                    left: Box::new(la),
                    right: right.clone(),
                    pred: pred.clone(),
                });
            }
            let mut r_alts = Vec::new();
            collect(right, catalog, &mut r_alts);
            for ra in r_alts {
                out.push(Query::Join {
                    left: left.clone(),
                    right: Box::new(ra),
                    pred: pred.clone(),
                });
            }
        }
        Query::OuterJoin { left, right, pred } => {
            let mut l_alts = Vec::new();
            collect(left, catalog, &mut l_alts);
            for la in l_alts {
                out.push(Query::OuterJoin {
                    left: Box::new(la),
                    right: right.clone(),
                    pred: pred.clone(),
                });
            }
            let mut r_alts = Vec::new();
            collect(right, catalog, &mut r_alts);
            for ra in r_alts {
                out.push(Query::OuterJoin {
                    left: left.clone(),
                    right: Box::new(ra),
                    pred: pred.clone(),
                });
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::{Database, Pred, Relation, Schema};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table("X", Arc::new(Schema::of_relation("X", &["a"])), 10);
        cat.add_table("Y", Arc::new(Schema::of_relation("Y", &["b", "b2"])), 10);
        cat.add_table("Z", Arc::new(Schema::of_relation("Z", &["c"])), 10);
        cat
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(Relation::from_ints("X", &["a"], &[&[1], &[2], &[5]]));
        db.insert(Relation::from_ints(
            "Y",
            &["b", "b2"],
            &[&[1, 7], &[3, 8], &[5, 9]],
        ));
        db.insert(Relation::from_ints("Z", &["c"], &[&[7], &[9], &[11]]));
        db
    }

    fn example2_query() -> Query {
        Query::rel("X").outerjoin(
            Query::rel("Y").join(Query::rel("Z"), Pred::eq_attr("Y.b2", "Z.c")),
            Pred::eq_attr("X.a", "Y.b"),
        )
    }

    #[test]
    fn identity_15_rewrite_preserves_semantics() {
        let q = example2_query();
        let rw = oj_of_join_to_goj(&q, &catalog()).expect("rewrite applies");
        let d = db();
        let a = q.eval(&d).unwrap();
        let b = rw.eval(&d).unwrap();
        assert!(a.set_eq(&b), "\n{}\nvs\n{}", a, b);
        assert!(matches!(rw, Query::Goj { .. }));
    }

    #[test]
    fn identity_15_requires_strong_predicates() {
        let weak = Query::rel("X").outerjoin(
            Query::rel("Y").join(Query::rel("Z"), Pred::eq_attr("Y.b2", "Z.c")),
            Pred::eq_attr("X.a", "Y.b").or(Pred::is_null("Y.b")),
        );
        assert!(oj_of_join_to_goj(&weak, &catalog()).is_none());
    }

    #[test]
    fn identity_15_shape_mismatch_returns_none() {
        let q = Query::rel("X").join(Query::rel("Y"), Pred::eq_attr("X.a", "Y.b"));
        assert!(oj_of_join_to_goj(&q, &catalog()).is_none());
        // OJ over OJ is not the identity's shape either.
        let q = Query::rel("X").outerjoin(
            Query::rel("Y").outerjoin(Query::rel("Z"), Pred::eq_attr("Y.b2", "Z.c")),
            Pred::eq_attr("X.a", "Y.b"),
        );
        assert!(oj_of_join_to_goj(&q, &catalog()).is_none());
    }

    #[test]
    fn identity_16_rewrite_preserves_semantics() {
        // X − (Y GOJ[{Y.b, Y.b2}] Z).
        let inner = Query::rel("Y").goj(
            Query::rel("Z"),
            Pred::eq_attr("Y.b2", "Z.c"),
            vec![Attr::parse("Y.b"), Attr::parse("Y.b2")],
        );
        let q = Query::rel("X").join(inner, Pred::eq_attr("X.a", "Y.b"));
        let rw = join_of_goj_pullup(&q, &catalog()).expect("rewrite applies");
        let d = db();
        assert!(q.eval(&d).unwrap().set_eq(&rw.eval(&d).unwrap()));
        if let Query::Goj { subset, .. } = &rw {
            assert!(subset.contains(&Attr::parse("X.a")));
        } else {
            panic!("expected GOJ root");
        }
    }

    #[test]
    fn identity_16_requires_join_attrs_in_subset() {
        // Subset {Y.b2} misses the X–Y join attribute Y.b.
        let inner = Query::rel("Y").goj(
            Query::rel("Z"),
            Pred::eq_attr("Y.b2", "Z.c"),
            vec![Attr::parse("Y.b2")],
        );
        let q = Query::rel("X").join(inner, Pred::eq_attr("X.a", "Y.b"));
        assert!(join_of_goj_pullup(&q, &catalog()).is_none());
    }

    #[test]
    fn composed_15_then_16_reorders_example2_fully() {
        // W − (X → (Y − Z)): identity 15 inside, then identity 16 pulls
        // W into the join — the full §6.2 pipeline.
        let mut cat = catalog();
        cat.add_table("W", Arc::new(Schema::of_relation("W", &["w"])), 10);
        let q = Query::rel("W").join(example2_query(), Pred::eq_attr("W.w", "X.a"));
        let step1 = {
            let mut alts = goj_alternatives(&q, &cat);
            alts.retain(|a| matches!(a, Query::Join { right, .. } if matches!(right.as_ref(), Query::Goj { .. })));
            alts.pop().expect("identity 15 applied under the join")
        };
        let step2 = join_of_goj_pullup(&step1, &cat).expect("identity 16 applies");
        let mut d = db();
        d.insert(Relation::from_ints("W", &["w"], &[&[1], &[2], &[9]]));
        let expect = q.eval(&d).unwrap();
        assert!(step1.eval(&d).unwrap().set_eq(&expect));
        assert!(step2.eval(&d).unwrap().set_eq(&expect));
    }

    #[test]
    fn alternatives_enumeration_finds_nested_sites() {
        let cat = catalog();
        let q = example2_query();
        let alts = goj_alternatives(&q, &cat);
        assert_eq!(alts.len(), 1);
        let d = db();
        for a in &alts {
            assert!(a.eval(&d).unwrap().set_eq(&q.eval(&d).unwrap()));
        }
    }
}
