//! Theorem 1: free reorderability of join/outerjoin queries.
//!
//! > **Theorem 1.** If `graph(Q)` is "nice" and outerjoin predicates
//! > are strong then `Q` is freely reorderable: every implementing
//! > tree of `graph(Q)` evaluates to the same result.
//!
//! The *niceness* half is purely structural ([`fro_graph::nice`]).
//! The *strongness* half has two phrasings in the paper — Lemma 2 says
//! "strong with respect to the null-supplied relation", the §1.3
//! statement says "return False when all attributes of the preserved
//! relation are null" — and the identity that consumes strongness
//! (identity 12) needs `P_yz` strong w.r.t. `Y`, the **preserved**
//! endpoint of its own edge. [`Policy`] exposes the design space; all
//! three policies make Theorem 1 hold (validated against exhaustive IT
//! enumeration in the test-suite), differing only in how many queries
//! they admit.

use fro_algebra::Query;
use fro_graph::{check_nice, EdgeKind, GraphError, NiceViolation, QueryGraph};
use std::fmt;

/// Which strongness condition to require of outerjoin predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// The theorem's stated condition: every outerjoin predicate must
    /// be strong w.r.t. (the attributes it references from) its
    /// **preserved** endpoint.
    #[default]
    Paper,
    /// Strong w.r.t. *both* endpoints — the belt-and-braces reading
    /// that also satisfies Lemma 2's "null-supplied" phrasing. Admits
    /// fewer queries; every equijoin qualifies anyway.
    Strict,
    /// The minimal condition identity 12 exercises: strongness w.r.t.
    /// the preserved endpoint is required **only** when that endpoint
    /// is itself null-supplied by another outerjoin edge (an outerjoin
    /// chain). Admits the most queries.
    MinimalChain,
}

impl Policy {
    /// The stable single-byte tag this policy carries in the plan-cache
    /// wire format ([`fro_wire`]'s snapshot entries). Tags are append-
    /// only: existing values never change meaning.
    #[must_use]
    pub fn wire_tag(self) -> u8 {
        match self {
            Policy::Paper => 0,
            Policy::Strict => 1,
            Policy::MinimalChain => 2,
        }
    }

    /// Inverse of [`Policy::wire_tag`]; `None` for a tag this build
    /// does not know.
    #[must_use]
    pub fn from_wire_tag(tag: u8) -> Option<Policy> {
        match tag {
            0 => Some(Policy::Paper),
            1 => Some(Policy::Strict),
            2 => Some(Policy::MinimalChain),
            _ => None,
        }
    }
}

/// A reason a query is not (known to be) freely reorderable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `graph(Q)` is undefined (§1.2 conditions failed).
    GraphUndefined(GraphError),
    /// The graph is not nice (Lemma 1 pattern present).
    NotNice(NiceViolation),
    /// An outerjoin predicate fails the policy's strongness condition.
    WeakOuterjoinPredicate {
        /// Preserved relation of the offending edge.
        preserved: String,
        /// Null-supplied relation of the offending edge.
        null_supplied: String,
        /// The relation on whose attributes strongness was required
        /// but not established.
        needed_on: String,
        /// The predicate, rendered.
        pred: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::GraphUndefined(e) => write!(f, "query graph undefined: {e}"),
            Violation::NotNice(v) => write!(f, "graph is not nice: {v}"),
            Violation::WeakOuterjoinPredicate {
                preserved,
                null_supplied,
                needed_on,
                pred,
            } => write!(
                f,
                "outerjoin {preserved} → {null_supplied}: predicate `{pred}` is not strong w.r.t. {needed_on}"
            ),
        }
    }
}

/// The result of a reorderability analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The query graph, when defined.
    pub graph: Option<QueryGraph>,
    /// All violations found (empty ⇒ freely reorderable under the
    /// chosen policy).
    pub violations: Vec<Violation>,
    /// The policy used.
    pub policy: Policy,
}

impl Analysis {
    /// Whether the query is freely reorderable under the policy.
    #[must_use]
    pub fn is_freely_reorderable(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_freely_reorderable() {
            write!(f, "freely reorderable (policy {:?})", self.policy)
        } else {
            writeln!(f, "NOT freely reorderable (policy {:?}):", self.policy)?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// Analyze a query graph directly.
#[must_use]
pub fn analyze_graph(g: &QueryGraph, policy: Policy) -> Analysis {
    let mut violations = Vec::new();

    let nice = check_nice(g);
    for v in nice.violations {
        violations.push(Violation::NotNice(v));
    }

    for e in g.edges() {
        if e.kind() != EdgeKind::OuterJoin {
            continue;
        }
        let preserved = g.node_name(e.a()).to_owned();
        let null_supplied = g.node_name(e.b()).to_owned();
        let mut required: Vec<String> = Vec::new();
        match policy {
            Policy::Paper => required.push(preserved.clone()),
            Policy::Strict => {
                required.push(preserved.clone());
                required.push(null_supplied.clone());
            }
            Policy::MinimalChain => {
                if g.oj_in_degree(e.a()) > 0 {
                    required.push(preserved.clone());
                }
            }
        }
        for rel in required {
            if !e.pred().is_strong_on_rel(&rel) {
                violations.push(Violation::WeakOuterjoinPredicate {
                    preserved: preserved.clone(),
                    null_supplied: null_supplied.clone(),
                    needed_on: rel,
                    pred: e.pred().to_string(),
                });
            }
        }
    }

    Analysis {
        graph: Some(g.clone()),
        violations,
        policy,
    }
}

/// Analyze a query expression: build `graph(Q)` and check Theorem 1's
/// conditions under the given policy.
#[must_use]
pub fn analyze(q: &Query, policy: Policy) -> Analysis {
    match fro_graph::graph_of(q) {
        Ok(g) => analyze_graph(&g, policy),
        Err(e) => Analysis {
            graph: None,
            violations: vec![Violation::GraphUndefined(e)],
            policy,
        },
    }
}

/// Shorthand: is `q` freely reorderable under the default (`Paper`)
/// policy?
#[must_use]
pub fn is_freely_reorderable(q: &Query) -> bool {
    analyze(q, Policy::Paper).is_freely_reorderable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Pred;

    fn p(a: &str, b: &str) -> Pred {
        Pred::eq_attr(&format!("{a}.k{a}"), &format!("{b}.k{b}"))
    }

    fn example1() -> Query {
        Query::rel("R1").join(
            Query::rel("R2").outerjoin(Query::rel("R3"), p("R2", "R3")),
            p("R1", "R2"),
        )
    }

    #[test]
    fn example1_is_freely_reorderable() {
        assert!(is_freely_reorderable(&example1()));
        for policy in [Policy::Paper, Policy::Strict, Policy::MinimalChain] {
            let a = analyze(&example1(), policy);
            assert!(a.is_freely_reorderable(), "{a}");
            assert!(a.graph.is_some());
        }
    }

    #[test]
    fn example2_is_not() {
        let q = Query::rel("R1").outerjoin(
            Query::rel("R2").join(Query::rel("R3"), p("R2", "R3")),
            p("R1", "R2"),
        );
        let a = analyze(&q, Policy::Paper);
        assert!(!a.is_freely_reorderable());
        assert!(a
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NotNice(_))));
    }

    #[test]
    fn weak_predicate_detected_per_policy() {
        // A → B → C with the second predicate not strong w.r.t. B
        // (Example 3's P_bc). B is null-supplied by A → B, so ALL
        // policies must reject.
        let pbc = Pred::eq_attr("B.x", "C.x").or(Pred::is_null("B.x"));
        let q = Query::rel("A")
            .outerjoin(Query::rel("B"), p("A", "B"))
            .outerjoin(Query::rel("C"), pbc);
        for policy in [Policy::Paper, Policy::Strict, Policy::MinimalChain] {
            let a = analyze(&q, policy);
            assert!(
                !a.is_freely_reorderable(),
                "policy {policy:?} wrongly accepted Example 3's shape"
            );
            assert!(a.violations.iter().any(|v| matches!(
                v,
                Violation::WeakOuterjoinPredicate { needed_on, .. } if needed_on == "B"
            )));
        }
    }

    #[test]
    fn minimal_chain_admits_weak_pred_on_core_edge() {
        // Single outerjoin A → B with a predicate weak on A (the
        // preserved side). Identity 12 is never exercised (no chain),
        // so MinimalChain accepts; Paper and Strict reject.
        let pab = Pred::eq_attr("A.x", "B.x").or(Pred::is_null("A.x"));
        let q = Query::rel("A").outerjoin(Query::rel("B"), pab);
        assert!(analyze(&q, Policy::MinimalChain).is_freely_reorderable());
        assert!(!analyze(&q, Policy::Paper).is_freely_reorderable());
        assert!(!analyze(&q, Policy::Strict).is_freely_reorderable());
    }

    #[test]
    fn strict_requires_both_sides() {
        // Predicate strong on preserved A but weak on null-supplied B.
        let pab = Pred::cmp_lit("A.x", fro_algebra::CmpOp::Gt, 0)
            .and(Pred::eq_attr("A.x", "B.x").or(Pred::is_null("B.x")));
        // strong on A via first conjunct; OR makes B weak.
        let q = Query::rel("A").outerjoin(Query::rel("B"), pab);
        // Note: this predicate references only A in its first conjunct,
        // which makes graph construction reject it (conjunct not
        // binary)? No: outerjoin predicates are taken whole. Graph ok.
        let a_paper = analyze(&q, Policy::Paper);
        assert!(a_paper.is_freely_reorderable(), "{a_paper}");
        let a_strict = analyze(&q, Policy::Strict);
        assert!(!a_strict.is_freely_reorderable());
    }

    #[test]
    fn graph_undefined_reported() {
        let q = Query::rel("A").join(Query::rel("A"), Pred::eq_attr("A.x", "A.y"));
        let a = analyze(&q, Policy::Paper);
        assert!(!a.is_freely_reorderable());
        assert!(matches!(a.violations[0], Violation::GraphUndefined(_)));
        assert!(a.graph.is_none());
    }

    #[test]
    fn display_forms() {
        let a = analyze(&example1(), Policy::Paper);
        assert!(a.to_string().contains("freely reorderable"));
        let q = Query::rel("R1").outerjoin(
            Query::rel("R2").join(Query::rel("R3"), p("R2", "R3")),
            p("R1", "R2"),
        );
        let a = analyze(&q, Policy::Paper);
        assert!(a.to_string().contains("NOT freely reorderable"));
    }

    #[test]
    fn fig2_topology_accepted() {
        // Join core {A,B} with outerjoin trees off both.
        let q = Query::rel("A")
            .join(Query::rel("B"), p("A", "B"))
            .outerjoin(Query::rel("C"), p("A", "C"))
            .outerjoin(Query::rel("D"), p("B", "D"));
        // Note: builder associates left-deep; graph is what matters.
        assert!(is_freely_reorderable(&q));
    }

    #[test]
    fn oj_into_core_rejected() {
        // C → A where A also has a join edge: X → Y − Z pattern.
        let q = Query::rel("C")
            .outerjoin(Query::rel("A"), p("C", "A"))
            .join(Query::rel("B"), p("A", "B"));
        let a = analyze(&q, Policy::MinimalChain);
        assert!(!a.is_freely_reorderable());
    }
}
