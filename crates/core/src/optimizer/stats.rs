//! The optimizer's catalog: per-table cardinalities, per-attribute
//! distinct counts, available indexes, and selectivity estimation.
//!
//! The catalog owns an [`Interner`]: table names are interned exactly
//! once when a table is registered, and [`TableInfo`] records live in
//! a `Vec` dense by [`RelId`]. Statistics are stored by *column
//! offset*, so an id-keyed lookup ([`Catalog::distinct_of_id`],
//! [`Catalog::rows_of_id`], [`Catalog::has_index_cols`]) is pure array
//! arithmetic. The name-keyed API survives as a thin shim over the
//! interner for construction-time and display-time callers.

use super::plancache::{CacheLoad, CacheStats, PlanCache};
use fro_algebra::{Attr, AttrId, CmpOp, Interner, Pred, RelId, Scalar, Schema};
use fro_exec::Storage;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Statistics and physical metadata for one base table.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// The table's scheme.
    pub schema: Arc<Schema>,
    /// Row count.
    pub rows: u64,
    /// Distinct-value counts per column (missing ⇒ assume `rows`).
    distinct: Vec<Option<u64>>,
    /// Column-offset sets with a hash index (each sorted).
    indexes: BTreeSet<Vec<u32>>,
}

impl TableInfo {
    fn new(schema: Arc<Schema>, rows: u64) -> TableInfo {
        let distinct = vec![None; schema.len()];
        TableInfo {
            schema,
            rows,
            distinct,
            indexes: BTreeSet::new(),
        }
    }

    /// Distinct count of an attribute (defaults to the row count,
    /// i.e. key-like).
    #[must_use]
    pub fn distinct_of(&self, a: &Attr) -> u64 {
        self.schema
            .index_of(a)
            .map_or_else(|| self.rows.max(1), |c| self.distinct_col(c))
    }

    /// Distinct count of a column offset (defaults to the row count).
    #[must_use]
    pub fn distinct_col(&self, col: usize) -> u64 {
        self.distinct
            .get(col)
            .copied()
            .flatten()
            .unwrap_or(self.rows.max(1))
    }

    /// Whether the attributes (in any order) carry an index.
    #[must_use]
    pub fn has_index(&self, attrs: &[Attr]) -> bool {
        let mut cols = Vec::with_capacity(attrs.len());
        for a in attrs {
            match self.schema.index_of(a) {
                Some(c) => cols.push(u32::try_from(c).expect("column offset fits in u32")),
                None => return false,
            }
        }
        cols.sort_unstable();
        self.indexes.contains(&cols)
    }

    /// Whether the column offsets (pre-sorted) carry an index.
    #[must_use]
    pub fn has_index_cols(&self, cols: &[u32]) -> bool {
        self.indexes.contains(cols)
    }
}

/// The optimizer catalog: an interner plus [`TableInfo`] records dense
/// by [`RelId`], an epoch counter that versions the statistics, and the
/// catalog-owned cross-query [`PlanCache`].
///
/// Every statistics mutation ([`Catalog::add_table`],
/// [`Catalog::set_distinct`], [`Catalog::add_index`]) bumps the epoch;
/// cached plans remember the epoch they were costed under and are
/// evicted lazily when it no longer matches — a stats change silently
/// invalidates every plan without walking the cache.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    interner: Interner,
    tables: Vec<TableInfo>,
    epoch: u64,
    /// Per-relation row-content versions, dense by [`RelId`]. Row
    /// appends/deletes bump only the touched relation's entry (see
    /// [`Catalog::bump_row_epoch`]), so plans and standing views over
    /// *other* relations stay valid — the catalog epoch is reserved
    /// for structural/statistics changes of global scope.
    row_epochs: Vec<u64>,
    plan_cache: PlanCache,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Exact statistics from in-memory storage (row counts, true
    /// distinct counts, registered indexes).
    #[must_use]
    pub fn from_storage(storage: &Storage) -> Catalog {
        let mut cat = Catalog::new();
        for (name, table) in storage.iter() {
            let rel = table.relation();
            let schema = rel.schema().clone();
            let id = cat.register(name, schema.clone(), rel.len() as u64);
            let info = &mut cat.tables[id.index()];
            // Distinct counts come off the columnar mirror's per-column
            // metadata — computed once at table load, no row scan here.
            // Same convention as the old per-column set scan: null
            // counts as one distinct value.
            for c in 0..schema.len() {
                info.distinct[c] = Some(table.columns().column(c).distinct());
            }
            for ix in table.indexes() {
                let cols: Vec<u32> = ix
                    .key_cols()
                    .iter()
                    .map(|&c| u32::try_from(c).expect("column offset fits in u32"))
                    .collect();
                // `key_cols` are already sorted by construction.
                info.indexes.insert(cols);
            }
        }
        cat
    }

    /// Register a table by hand (for synthetic what-if experiments).
    /// Re-registering a name replaces its statistics and indexes.
    pub fn add_table(&mut self, name: impl Into<String>, schema: Arc<Schema>, rows: u64) {
        let name = name.into();
        self.register(&name, schema, rows);
    }

    fn register(&mut self, name: &str, schema: Arc<Schema>, rows: u64) -> RelId {
        let id = self.interner.register_relation(name, &schema);
        let info = TableInfo::new(schema, rows);
        if id.index() == self.tables.len() {
            self.tables.push(info);
            self.row_epochs.push(0);
        } else {
            self.tables[id.index()] = info;
        }
        self.epoch += 1;
        id
    }

    /// Refresh one table's row count *quietly*: no epoch bump, no
    /// schema/index change. Pair with [`Catalog::bump_row_epoch`] so
    /// only plans reading this relation are invalidated. Returns
    /// `false` when the table is unknown.
    pub fn set_rows_quiet(&mut self, name: &str, rows: u64) -> bool {
        match self.table_mut(name) {
            Some(t) => {
                t.rows = rows;
                true
            }
            None => false,
        }
    }

    /// Refresh one column's distinct count *quietly* (no epoch bump;
    /// see [`Catalog::set_rows_quiet`]). Ignored when the table or
    /// attribute is unknown.
    pub fn set_distinct_quiet(&mut self, attr: &Attr, distinct: u64) {
        if let Some(t) = self.table_mut(attr.rel()) {
            if let Some(c) = t.schema.index_of(attr) {
                t.distinct[c] = Some(distinct);
            }
        }
    }

    /// Bump one relation's row-content version: its rows changed but
    /// the catalog's structure did not. Plans are invalidated at
    /// per-relation granularity through [`Catalog::epoch_for_rels`].
    pub fn bump_row_epoch(&mut self, name: &str) {
        if let Some(id) = self.interner.rel_id(name) {
            if let Some(e) = self.row_epochs.get_mut(id.index()) {
                *e += 1;
            }
        }
    }

    /// The row-content version of one relation (0 when unknown).
    #[must_use]
    pub fn row_epoch(&self, id: RelId) -> u64 {
        self.row_epochs.get(id.index()).copied().unwrap_or(0)
    }

    /// The *effective* epoch for a plan reading exactly `rels`: the
    /// catalog epoch plus the row-content versions of those relations.
    /// Monotone per relation set, so a cached plan keyed under it is
    /// invalidated by any structural change (epoch) or by a row change
    /// to a relation it actually reads — and by nothing else.
    #[must_use]
    pub fn epoch_for_rels(&self, rels: impl IntoIterator<Item = RelId>) -> u64 {
        let mut e = self.epoch;
        for id in rels {
            e += self.row_epoch(id);
        }
        e
    }

    /// [`Catalog::epoch_for_rels`] over the relations of a query graph
    /// — the epoch the optimizer keys this graph's cached plans under.
    #[must_use]
    pub fn epoch_for_graph(&self, g: &fro_graph::QueryGraph) -> u64 {
        self.epoch_for_rels((0..g.n_nodes()).filter_map(|i| self.rel_id(g.node_name(i))))
    }

    /// Set a distinct count (ignored when the table or attribute is
    /// unknown).
    pub fn set_distinct(&mut self, attr: &Attr, distinct: u64) {
        let mut changed = false;
        if let Some(t) = self.table_mut(attr.rel()) {
            if let Some(c) = t.schema.index_of(attr) {
                t.distinct[c] = Some(distinct);
                changed = true;
            }
        }
        if changed {
            self.epoch += 1;
        }
    }

    /// Declare an index (ignored when the table is unknown or any
    /// attribute is missing from its scheme).
    pub fn add_index(&mut self, rel: &str, attrs: &[Attr]) {
        let Some(t) = self.table_mut(rel) else {
            return;
        };
        let mut cols = Vec::with_capacity(attrs.len());
        for a in attrs {
            match t.schema.index_of(a) {
                Some(c) => cols.push(u32::try_from(c).expect("column offset fits in u32")),
                None => return,
            }
        }
        cols.sort_unstable();
        t.indexes.insert(cols);
        self.epoch += 1;
    }

    /// The statistics epoch: incremented by every mutation. Plans
    /// cached under an older epoch are stale.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The catalog-owned cross-query plan cache.
    #[must_use]
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// A stable digest of the catalog's *identity*: the interner's
    /// name⇄id mapping (relation names and their attributes in id
    /// order) and each table's available indexes. Two catalogs with
    /// the same fingerprint assign the same ids to the same names and
    /// can run the same physical plans — the precondition for trusting
    /// an id-only snapshot written by one of them in the other.
    ///
    /// Deliberately excludes statistics (row and distinct counts):
    /// stats drift is the [epoch](Catalog::epoch)'s job, so a snapshot
    /// from the same catalog at older stats loads as
    /// [`CacheLoad::StaleEpoch`], not [`CacheLoad::Foreign`].
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = fro_algebra::StableHasher::new();
        h.write_u64(self.interner.n_rels() as u64);
        for name in self.interner.rel_names() {
            h.write_str(name);
        }
        h.write_u64(self.interner.n_attrs() as u64);
        for i in 0..self.interner.n_rels() {
            let id = RelId::from_index(i);
            let attr_ids = self.interner.attrs_of(id);
            h.write_u64(attr_ids.len() as u64);
            for &aid in attr_ids {
                let a = self.interner.attr(aid);
                h.write_u64(aid.index() as u64);
                h.write_str(a.rel());
                h.write_str(a.name());
            }
        }
        h.write_u64(self.tables.len() as u64);
        for t in &self.tables {
            h.write_u64(t.indexes.len() as u64);
            for ix in &t.indexes {
                h.write_u64(ix.len() as u64);
                for &c in ix {
                    h.write_u64(u64::from(c));
                }
            }
        }
        h.finish()
    }

    /// Persist the plan cache's current-epoch entries to `path` (see
    /// [`PlanCache::save`]); the snapshot header carries this catalog's
    /// epoch and [`Catalog::fingerprint`]. Returns the entry count
    /// written.
    ///
    /// # Errors
    /// [`fro_wire::WireError::Io`] on filesystem failure.
    pub fn save_cache(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<usize, fro_wire::WireError> {
        self.plan_cache
            .save(path, &self.interner, self.epoch, self.fingerprint())
    }

    /// Load a plan-cache snapshot saved by [`Catalog::save_cache`],
    /// revalidating its header against this catalog's current epoch
    /// and fingerprint. A stale or foreign snapshot loads nothing and
    /// reports which check failed — the cache stays cold, which is
    /// always correct; a matching snapshot installs its entries as
    /// warm hits.
    ///
    /// # Errors
    /// [`fro_wire::WireError::Io`] when the file cannot be read, or a
    /// decode error when a fingerprint-matching snapshot is corrupt.
    pub fn load_cache(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<CacheLoad, fro_wire::WireError> {
        self.plan_cache
            .load(path, &self.interner, self.epoch, self.fingerprint())
    }

    /// Cumulative plan-cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// Drop every cached plan (statistics and epoch are untouched).
    pub fn clear_plan_cache(&self) {
        self.plan_cache.clear();
    }

    /// The interner owning this catalog's name ↔ id mapping.
    #[must_use]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Resolve a table name to its dense id.
    #[must_use]
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.interner.rel_id(name)
    }

    /// Resolve an attribute to its dense id.
    #[must_use]
    pub fn attr_id(&self, attr: &Attr) -> Option<AttrId> {
        self.interner.attr_id(attr)
    }

    /// Look up a table by name (shim over the interner).
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.rel_id(name).and_then(|id| self.table_by_id(id))
    }

    fn table_mut(&mut self, name: &str) -> Option<&mut TableInfo> {
        let id = self.interner.rel_id(name)?;
        self.tables.get_mut(id.index())
    }

    /// Look up a table by dense id — one bounds-checked array read.
    #[must_use]
    pub fn table_by_id(&self, id: RelId) -> Option<&TableInfo> {
        self.tables.get(id.index())
    }

    /// All attributes of the given ground relations, in catalog order.
    #[must_use]
    pub fn attrs_of_rels<'a>(&self, rels: impl IntoIterator<Item = &'a String>) -> Vec<Attr> {
        let mut out = Vec::new();
        for r in rels {
            if let Some(t) = self.table(r) {
                out.extend(t.schema.attrs().iter().cloned());
            }
        }
        out
    }

    /// Distinct count for an attribute (row count of its table when
    /// unknown; 1000 when even the table is unknown).
    #[must_use]
    pub fn distinct_of(&self, a: &Attr) -> u64 {
        self.table(a.rel()).map_or(1000, |t| t.distinct_of(a))
    }

    /// Distinct count for an interned attribute: two array reads via
    /// its precomputed `(relation, column)` resolution.
    #[must_use]
    pub fn distinct_of_id(&self, id: AttrId) -> u64 {
        let rel = self.interner.attr_rel(id);
        let col = self.interner.attr_col(id) as usize;
        self.table_by_id(rel).map_or(1000, |t| t.distinct_col(col))
    }

    /// Row count of a table (1000 when unknown).
    #[must_use]
    pub fn rows_of(&self, rel: &str) -> u64 {
        self.table(rel).map_or(1000, |t| t.rows)
    }

    /// Row count of a table by dense id (1000 when unknown).
    #[must_use]
    pub fn rows_of_id(&self, id: RelId) -> u64 {
        self.table_by_id(id).map_or(1000, |t| t.rows)
    }

    /// Whether a table carries an index on exactly the given column
    /// offsets (pre-sorted).
    #[must_use]
    pub fn has_index_cols(&self, id: RelId, cols: &[u32]) -> bool {
        self.table_by_id(id).is_some_and(|t| t.has_index_cols(cols))
    }

    /// Independence-assumption selectivity of a predicate: equality
    /// between attributes `a = b` contributes `1 / max(d(a), d(b))`,
    /// other attribute comparisons 1/3, literal equality `1 / d(a)`,
    /// literal inequalities 1/3, `IS NULL` 1/10; conjuncts multiply,
    /// disjuncts add (capped), negation complements.
    #[must_use]
    pub fn selectivity(&self, pred: &Pred) -> f64 {
        match pred {
            Pred::Cmp { op, lhs, rhs } => match (lhs, rhs) {
                (Scalar::Attr(a), Scalar::Attr(b)) => match op {
                    CmpOp::Eq => 1.0 / (self.distinct_of(a).max(self.distinct_of(b)).max(1) as f64),
                    CmpOp::Ne => 1.0,
                    _ => 1.0 / 3.0,
                },
                (Scalar::Attr(a), Scalar::Lit(_)) | (Scalar::Lit(_), Scalar::Attr(a)) => match op {
                    CmpOp::Eq => 1.0 / (self.distinct_of(a).max(1) as f64),
                    CmpOp::Ne => 0.9,
                    _ => 1.0 / 3.0,
                },
                (Scalar::Lit(_), Scalar::Lit(_)) => 1.0,
            },
            Pred::IsNull(_) => 0.1,
            Pred::And(a, b) => self.selectivity(a) * self.selectivity(b),
            Pred::Or(a, b) => (self.selectivity(a) + self.selectivity(b)).min(1.0),
            Pred::Not(p) => (1.0 - self.selectivity(p)).max(0.0),
            Pred::Const(t) => {
                if t.is_true() {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Relation;

    fn storage() -> Storage {
        let mut s = Storage::new();
        s.insert(
            "R",
            Relation::from_ints("R", &["k", "v"], &[&[1, 10], &[2, 10], &[3, 20]]),
        );
        s.create_index("R", &[Attr::parse("R.k")]);
        s
    }

    #[test]
    fn from_storage_captures_stats() {
        let cat = Catalog::from_storage(&storage());
        let t = cat.table("R").unwrap();
        assert_eq!(t.rows, 3);
        assert_eq!(t.distinct_of(&Attr::parse("R.k")), 3);
        assert_eq!(t.distinct_of(&Attr::parse("R.v")), 2);
        assert!(t.has_index(&[Attr::parse("R.k")]));
        assert!(!t.has_index(&[Attr::parse("R.v")]));
    }

    #[test]
    fn id_keyed_lookups_agree_with_names() {
        let cat = Catalog::from_storage(&storage());
        let rid = cat.rel_id("R").unwrap();
        assert_eq!(cat.rows_of_id(rid), cat.rows_of("R"));
        for a in ["R.k", "R.v"] {
            let attr = Attr::parse(a);
            let aid = cat.attr_id(&attr).unwrap();
            assert_eq!(cat.distinct_of_id(aid), cat.distinct_of(&attr));
            assert_eq!(cat.interner().attr_rel(aid), rid);
        }
        assert!(cat.has_index_cols(rid, &[0]));
        assert!(!cat.has_index_cols(rid, &[1]));
        assert_eq!(cat.rel_id("missing"), None);
    }

    #[test]
    fn selectivity_equality_uses_distincts() {
        let cat = Catalog::from_storage(&storage());
        let p = Pred::eq_attr("R.k", "R.v");
        let s = cat.selectivity(&p);
        assert!((s - 1.0 / 3.0).abs() < 1e-9);
        let lit = Pred::cmp_lit("R.v", CmpOp::Eq, 10);
        assert!((cat.selectivity(&lit) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn selectivity_boolean_combinators() {
        let cat = Catalog::from_storage(&storage());
        let p = Pred::cmp_lit("R.k", CmpOp::Eq, 1);
        let and = p.clone().and(p.clone());
        assert!(cat.selectivity(&and) < cat.selectivity(&p));
        let or = p.clone().or(p.clone());
        assert!(cat.selectivity(&or) > cat.selectivity(&p));
        let not = p.clone().not();
        assert!((cat.selectivity(&not) + cat.selectivity(&p) - 1.0).abs() < 1e-9);
        assert!((cat.selectivity(&Pred::always()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_tables_get_defaults() {
        let cat = Catalog::new();
        assert_eq!(cat.rows_of("missing"), 1000);
        assert_eq!(cat.distinct_of(&Attr::parse("missing.a")), 1000);
    }

    #[test]
    fn manual_catalog_construction() {
        let mut cat = Catalog::new();
        let schema = Arc::new(Schema::of_relation("T", &["id"]));
        cat.add_table("T", schema, 1_000_000);
        cat.set_distinct(&Attr::parse("T.id"), 1_000_000);
        cat.add_index("T", &[Attr::parse("T.id")]);
        assert_eq!(cat.rows_of("T"), 1_000_000);
        assert!(cat.table("T").unwrap().has_index(&[Attr::parse("T.id")]));
        let attrs = cat.attrs_of_rels(&["T".to_owned()]);
        assert_eq!(attrs.len(), 1);
    }

    #[test]
    fn epoch_bumps_on_every_stats_mutation() {
        let mut cat = Catalog::new();
        let e0 = cat.epoch();
        cat.add_table("T", Arc::new(Schema::of_relation("T", &["id"])), 10);
        let e1 = cat.epoch();
        assert!(e1 > e0);
        cat.set_distinct(&Attr::parse("T.id"), 10);
        let e2 = cat.epoch();
        assert!(e2 > e1);
        cat.add_index("T", &[Attr::parse("T.id")]);
        let e3 = cat.epoch();
        assert!(e3 > e2);
        // No-op mutations (unknown table/attr) leave the epoch alone.
        cat.set_distinct(&Attr::parse("missing.x"), 1);
        cat.add_index("missing", &[Attr::parse("missing.x")]);
        cat.set_distinct(&Attr::parse("T.nope"), 1);
        cat.add_index("T", &[Attr::parse("T.nope")]);
        assert_eq!(cat.epoch(), e3);
    }

    #[test]
    fn row_epochs_are_per_relation_and_quiet() {
        let mut cat = Catalog::new();
        cat.add_table("R", Arc::new(Schema::of_relation("R", &["k"])), 10);
        cat.add_table("S", Arc::new(Schema::of_relation("S", &["k"])), 10);
        let e = cat.epoch();
        let r = cat.rel_id("R").unwrap();
        let s = cat.rel_id("S").unwrap();
        // Quiet stats refresh + row-epoch bump: catalog epoch untouched.
        assert!(cat.set_rows_quiet("R", 12));
        cat.set_distinct_quiet(&Attr::parse("R.k"), 12);
        cat.bump_row_epoch("R");
        assert_eq!(cat.epoch(), e, "row changes never bump the epoch");
        assert_eq!(cat.rows_of("R"), 12);
        assert_eq!(cat.row_epoch(r), 1);
        assert_eq!(cat.row_epoch(s), 0);
        // Effective epochs move only for sets containing R.
        assert_eq!(cat.epoch_for_rels([s]), e);
        assert_eq!(cat.epoch_for_rels([r]), e + 1);
        assert_eq!(cat.epoch_for_rels([r, s]), e + 1);
        // Unknown names are no-ops.
        assert!(!cat.set_rows_quiet("missing", 1));
        cat.bump_row_epoch("missing");
        assert_eq!(cat.epoch(), e);
    }

    #[test]
    fn reregistration_replaces_stats_under_same_id() {
        let mut cat = Catalog::new();
        cat.add_table("T", Arc::new(Schema::of_relation("T", &["id"])), 10);
        cat.add_index("T", &[Attr::parse("T.id")]);
        let id = cat.rel_id("T").unwrap();
        cat.add_table("T", Arc::new(Schema::of_relation("T", &["id"])), 20);
        assert_eq!(cat.rel_id("T"), Some(id));
        assert_eq!(cat.rows_of("T"), 20);
        // Indexes do not survive re-registration.
        assert!(!cat.table("T").unwrap().has_index(&[Attr::parse("T.id")]));
    }
}
