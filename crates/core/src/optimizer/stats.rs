//! The optimizer's catalog: per-table cardinalities, per-attribute
//! distinct counts, available indexes, and selectivity estimation.

use fro_algebra::{Attr, CmpOp, Pred, Scalar, Schema};
use fro_exec::Storage;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Statistics and physical metadata for one base table.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// The table's scheme.
    pub schema: Arc<Schema>,
    /// Row count.
    pub rows: u64,
    /// Distinct-value counts per attribute (missing ⇒ assume `rows`).
    pub distinct: BTreeMap<Attr, u64>,
    /// Attribute sets with a hash index (each sorted).
    pub indexes: BTreeSet<Vec<Attr>>,
}

impl TableInfo {
    /// Distinct count of an attribute (defaults to the row count,
    /// i.e. key-like).
    #[must_use]
    pub fn distinct_of(&self, a: &Attr) -> u64 {
        self.distinct.get(a).copied().unwrap_or(self.rows.max(1))
    }

    /// Whether the attributes (in any order) carry an index.
    #[must_use]
    pub fn has_index(&self, attrs: &[Attr]) -> bool {
        let mut key: Vec<Attr> = attrs.to_vec();
        key.sort();
        self.indexes.contains(&key)
    }
}

/// The optimizer catalog: a name → [`TableInfo`] map.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableInfo>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Exact statistics from in-memory storage (row counts, true
    /// distinct counts, registered indexes).
    #[must_use]
    pub fn from_storage(storage: &Storage) -> Catalog {
        let mut cat = Catalog::new();
        for (name, table) in storage.iter() {
            let rel = table.relation();
            let schema = rel.schema().clone();
            let mut distinct = BTreeMap::new();
            for (c, attr) in schema.attrs().iter().enumerate() {
                let set: std::collections::HashSet<_> =
                    rel.rows().iter().map(|t| t.get(c)).collect();
                distinct.insert(attr.clone(), set.len() as u64);
            }
            let mut indexes = BTreeSet::new();
            for ix in table.indexes() {
                let mut key: Vec<Attr> = ix
                    .key_cols()
                    .iter()
                    .map(|&c| schema.attrs()[c].clone())
                    .collect();
                key.sort();
                indexes.insert(key);
            }
            cat.tables.insert(
                name.to_owned(),
                TableInfo {
                    schema,
                    rows: rel.len() as u64,
                    distinct,
                    indexes,
                },
            );
        }
        cat
    }

    /// Register a table by hand (for synthetic what-if experiments).
    pub fn add_table(&mut self, name: impl Into<String>, schema: Arc<Schema>, rows: u64) {
        self.tables.insert(
            name.into(),
            TableInfo {
                schema,
                rows,
                distinct: BTreeMap::new(),
                indexes: BTreeSet::new(),
            },
        );
    }

    /// Set a distinct count.
    pub fn set_distinct(&mut self, attr: &Attr, distinct: u64) {
        if let Some(t) = self.tables.get_mut(attr.rel()) {
            t.distinct.insert(attr.clone(), distinct);
        }
    }

    /// Declare an index.
    pub fn add_index(&mut self, rel: &str, attrs: &[Attr]) {
        if let Some(t) = self.tables.get_mut(rel) {
            let mut key = attrs.to_vec();
            key.sort();
            t.indexes.insert(key);
        }
    }

    /// Look up a table.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.tables.get(name)
    }

    /// All attributes of the given ground relations, in catalog order.
    #[must_use]
    pub fn attrs_of_rels<'a>(&self, rels: impl IntoIterator<Item = &'a String>) -> Vec<Attr> {
        let mut out = Vec::new();
        for r in rels {
            if let Some(t) = self.tables.get(r) {
                out.extend(t.schema.attrs().iter().cloned());
            }
        }
        out
    }

    /// Distinct count for an attribute (row count of its table when
    /// unknown; 1000 when even the table is unknown).
    #[must_use]
    pub fn distinct_of(&self, a: &Attr) -> u64 {
        self.tables.get(a.rel()).map_or(1000, |t| t.distinct_of(a))
    }

    /// Row count of a table (1000 when unknown).
    #[must_use]
    pub fn rows_of(&self, rel: &str) -> u64 {
        self.tables.get(rel).map_or(1000, |t| t.rows)
    }

    /// Independence-assumption selectivity of a predicate: equality
    /// between attributes `a = b` contributes `1 / max(d(a), d(b))`,
    /// other attribute comparisons 1/3, literal equality `1 / d(a)`,
    /// literal inequalities 1/3, `IS NULL` 1/10; conjuncts multiply,
    /// disjuncts add (capped), negation complements.
    #[must_use]
    pub fn selectivity(&self, pred: &Pred) -> f64 {
        match pred {
            Pred::Cmp { op, lhs, rhs } => match (lhs, rhs) {
                (Scalar::Attr(a), Scalar::Attr(b)) => match op {
                    CmpOp::Eq => 1.0 / (self.distinct_of(a).max(self.distinct_of(b)).max(1) as f64),
                    CmpOp::Ne => 1.0,
                    _ => 1.0 / 3.0,
                },
                (Scalar::Attr(a), Scalar::Lit(_)) | (Scalar::Lit(_), Scalar::Attr(a)) => match op {
                    CmpOp::Eq => 1.0 / (self.distinct_of(a).max(1) as f64),
                    CmpOp::Ne => 0.9,
                    _ => 1.0 / 3.0,
                },
                (Scalar::Lit(_), Scalar::Lit(_)) => 1.0,
            },
            Pred::IsNull(_) => 0.1,
            Pred::And(a, b) => self.selectivity(a) * self.selectivity(b),
            Pred::Or(a, b) => (self.selectivity(a) + self.selectivity(b)).min(1.0),
            Pred::Not(p) => (1.0 - self.selectivity(p)).max(0.0),
            Pred::Const(t) => {
                if t.is_true() {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Relation;

    fn storage() -> Storage {
        let mut s = Storage::new();
        s.insert(
            "R",
            Relation::from_ints("R", &["k", "v"], &[&[1, 10], &[2, 10], &[3, 20]]),
        );
        s.create_index("R", &[Attr::parse("R.k")]);
        s
    }

    #[test]
    fn from_storage_captures_stats() {
        let cat = Catalog::from_storage(&storage());
        let t = cat.table("R").unwrap();
        assert_eq!(t.rows, 3);
        assert_eq!(t.distinct_of(&Attr::parse("R.k")), 3);
        assert_eq!(t.distinct_of(&Attr::parse("R.v")), 2);
        assert!(t.has_index(&[Attr::parse("R.k")]));
        assert!(!t.has_index(&[Attr::parse("R.v")]));
    }

    #[test]
    fn selectivity_equality_uses_distincts() {
        let cat = Catalog::from_storage(&storage());
        let p = Pred::eq_attr("R.k", "R.v");
        let s = cat.selectivity(&p);
        assert!((s - 1.0 / 3.0).abs() < 1e-9);
        let lit = Pred::cmp_lit("R.v", CmpOp::Eq, 10);
        assert!((cat.selectivity(&lit) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn selectivity_boolean_combinators() {
        let cat = Catalog::from_storage(&storage());
        let p = Pred::cmp_lit("R.k", CmpOp::Eq, 1);
        let and = p.clone().and(p.clone());
        assert!(cat.selectivity(&and) < cat.selectivity(&p));
        let or = p.clone().or(p.clone());
        assert!(cat.selectivity(&or) > cat.selectivity(&p));
        let not = p.clone().not();
        assert!((cat.selectivity(&not) + cat.selectivity(&p) - 1.0).abs() < 1e-9);
        assert!((cat.selectivity(&Pred::always()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_tables_get_defaults() {
        let cat = Catalog::new();
        assert_eq!(cat.rows_of("missing"), 1000);
        assert_eq!(cat.distinct_of(&Attr::parse("missing.a")), 1000);
    }

    #[test]
    fn manual_catalog_construction() {
        let mut cat = Catalog::new();
        let schema = Arc::new(Schema::of_relation("T", &["id"]));
        cat.add_table("T", schema, 1_000_000);
        cat.set_distinct(&Attr::parse("T.id"), 1_000_000);
        cat.add_index("T", &[Attr::parse("T.id")]);
        assert_eq!(cat.rows_of("T"), 1_000_000);
        assert!(cat.table("T").unwrap().has_index(&[Attr::parse("T.id")]));
        let attrs = cat.attrs_of_rels(&["T".to_owned()]);
        assert_eq!(attrs.len(), 1);
    }
}
