//! The catalog-owned, cross-query plan cache.
//!
//! Theorem 1 turns a nice, strong query graph into an unambiguous plan
//! key: every implementing tree of the graph is equivalent, so a
//! memoized subplan for a connected [`RelSet`] is reusable by *any*
//! query whose graph matches — not just a repeat of the same SQL
//! string, but any alpha-equivalent phrasing (different association,
//! different From-List order). The cache therefore keys on
//! `(`[`GraphSignature`]`, canonical RelSet, `[`Policy`]`)` and is
//! owned by the [`Catalog`](super::stats::Catalog), whose `epoch`
//! counter ties cached plans to the statistics they were costed
//! against: every stats mutation bumps the epoch, and entries from
//! older epochs are evicted lazily on their next lookup.
//!
//! ## Canonical node numbering
//!
//! A query graph numbers its nodes in From-List order, so the same
//! graph written with relations in a different order would produce
//! different `RelSet` bits. [`CacheCtx::for_graph`] computes the
//! canonical permutation (nodes sorted by relation name) once per
//! optimization; both the signature and every cached set are expressed
//! in canonical numbering, so alpha-equivalent queries collide — which
//! is the point.

use super::dp::Entry;
use crate::reorder::Policy;
use fro_algebra::{Interner, RelId, RelSet, SigHash, StableHasher};
use fro_exec::PhysPlan;
use fro_graph::{EdgeKind, QueryGraph};
use fro_wire::{
    decode_snapshot, encode_snapshot, peek_snapshot_header, SnapshotEntry, SnapshotHeader,
    WireError,
};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A stable structural hash of a query graph: interned relation names
/// in canonical order, edge kinds, outerjoin directions, and predicate
/// shapes (including literals — cached plans embed them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphSignature(u64);

impl GraphSignature {
    /// The raw 64-bit digest.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuild a signature from its raw digest — for loading persisted
    /// cache snapshots, where the digest is the stored key.
    #[must_use]
    pub fn from_u64(raw: u64) -> GraphSignature {
        GraphSignature(raw)
    }
}

impl fmt::Display for GraphSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Compute a graph's signature together with the canonical node
/// permutation `perm[node] = canonical rank` (nodes sorted by name).
#[must_use]
pub fn graph_signature(g: &QueryGraph) -> (GraphSignature, Vec<usize>) {
    let n = g.n_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| g.node_name(i));
    let mut perm = vec![0usize; n];
    for (rank, &i) in order.iter().enumerate() {
        perm[i] = rank;
    }

    let mut h = StableHasher::new();
    h.write_u64(n as u64);
    for &i in &order {
        h.write_str(g.node_name(i));
    }
    // Edges in a canonical order: join edges are undirected (endpoints
    // sorted), outerjoin edges keep their preserved-endpoint-first
    // direction. Sorting the encoded tuples makes the signature
    // independent of edge insertion order.
    let mut edges: Vec<(u8, usize, usize, u64)> = g
        .edges()
        .iter()
        .map(|e| {
            let (ca, cb) = (perm[e.a()], perm[e.b()]);
            let (tag, x, y) = match e.kind() {
                EdgeKind::Join => (0u8, ca.min(cb), ca.max(cb)),
                EdgeKind::OuterJoin => (1u8, ca, cb),
            };
            let mut ph = StableHasher::new();
            e.pred().sig_hash(&mut ph);
            (tag, x, y, ph.finish())
        })
        .collect();
    edges.sort_unstable();
    h.write_u64(edges.len() as u64);
    for (tag, x, y, pred_hash) in edges {
        h.write_u8(tag);
        h.write_u64(x as u64);
        h.write_u64(y as u64);
        h.write_u64(pred_hash);
    }
    (GraphSignature(h.finish()), perm)
}

/// Per-optimization cache context: the graph's signature, the
/// canonical node permutation, and the policy the plan was produced
/// under — everything a [`RelSet`] needs to become a cache key.
#[derive(Debug, Clone)]
pub struct CacheCtx {
    /// The graph's signature.
    pub sig: GraphSignature,
    /// `perm[node] = canonical rank`.
    pub perm: Vec<usize>,
    /// The reorderability policy in force.
    pub policy: Policy,
}

impl CacheCtx {
    /// Build the context for one graph (one signature computation).
    #[must_use]
    pub fn for_graph(g: &QueryGraph, policy: Policy) -> CacheCtx {
        let (sig, perm) = graph_signature(g);
        CacheCtx { sig, perm, policy }
    }

    /// Remap a query-numbered set into canonical numbering.
    #[must_use]
    pub fn canon(&self, s: RelSet) -> RelSet {
        s.iter()
            .fold(RelSet::empty(), |acc, i| acc.with(self.perm[i]))
    }

    fn key(&self, s: RelSet) -> CacheKey {
        CacheKey {
            sig: self.sig,
            set: self.canon(s).bits(),
            policy: self.policy,
        }
    }
}

/// A memoized per-subset winner: the materialized plan subtree and the
/// arithmetic the DP needs to splice it back in.
#[derive(Debug, Clone)]
pub struct CachedEntry {
    /// The winning physical subplan for the subset.
    pub plan: PhysPlan,
    /// Its estimated cost (tuples touched).
    pub cost: f64,
    /// Its estimated output cardinality.
    pub rows: f64,
    /// `Some(id)` when the plan is a bare scan of a catalog base table
    /// (the index-join inner-side precondition).
    pub base: Option<RelId>,
    /// Catalog epoch the entry was costed under.
    epoch: u64,
}

impl CachedEntry {
    pub(crate) fn from_entry(e: &Entry, epoch: u64) -> CachedEntry {
        CachedEntry {
            plan: e.plan.clone(),
            cost: e.cost,
            rows: e.rows,
            base: e.base,
            epoch,
        }
    }

    pub(crate) fn to_entry(&self) -> Entry {
        Entry {
            plan: self.plan.clone(),
            cost: self.cost,
            rows: self.rows,
            base: self.base,
        }
    }
}

/// Hit/miss accounting, both per-optimization (in
/// [`Optimized`](super::Optimized)) and cumulative (in the cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing (stale entries count here too).
    pub misses: u64,
    /// Entries dropped by the capacity bound.
    pub evictions: u64,
    /// Entries dropped lazily because their epoch was stale.
    pub stale: u64,
}

impl CacheStats {
    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.stale += other.stale;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} stale={}",
            self.hits, self.misses, self.evictions, self.stale
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    sig: GraphSignature,
    set: u64,
    policy: Policy,
}

#[derive(Debug)]
struct Slot {
    entry: Arc<CachedEntry>,
    /// Global recency tick at last touch. Atomic so the hit path can
    /// refresh it under a shard *read* lock.
    last_used: AtomicU64,
}

impl Clone for Slot {
    fn clone(&self) -> Slot {
        Slot {
            entry: Arc::clone(&self.entry),
            last_used: AtomicU64::new(self.last_used.load(Ordering::Relaxed)),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Shard {
    map: HashMap<CacheKey, Slot>,
}

/// Default capacity: plenty for thousands of distinct subplans while
/// bounding a long-lived session's footprint.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 4096;

/// Most shards a cache will spread across.
const MAX_SHARDS: usize = 16;

/// Don't bother sharding below this many entries per shard — a tiny
/// cache behaves exactly like the old single-lock one (which the
/// eviction tests rely on).
const MIN_ENTRIES_PER_SHARD: usize = 64;

/// The bounded, epoch-aware subplan cache. Interior-mutable so the
/// optimizer can consult it through the `&Catalog` it already holds —
/// and shared-state so *concurrent* sessions can, too: the key space
/// is split across `RwLock`-per-shard maps (shard count fixed at
/// construction, scaled to capacity), the recency tick and the
/// cumulative counters are atomics, and a warm hit touches nothing but
/// one shard's read lock. Write locks are taken only for inserts and
/// stale-entry removal, and never held across user code.
#[derive(Debug)]
pub struct PlanCache {
    shards: Box<[RwLock<Shard>]>,
    /// Per-shard entry bound (total capacity ÷ shard count).
    shard_capacity: AtomicUsize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale: AtomicU64,
}

impl PlanCache {
    /// An empty cache with the default capacity.
    #[must_use]
    pub fn new() -> PlanCache {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// An empty cache holding at most `capacity` entries, spread over
    /// `min(16, capacity/64)` (next power of two, at least 1) shards.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> PlanCache {
        let capacity = capacity.max(1);
        let n_shards = (capacity / MIN_ENTRIES_PER_SHARD)
            .next_power_of_two()
            .clamp(1, MAX_SHARDS);
        let shards: Vec<RwLock<Shard>> = (0..n_shards).map(|_| RwLock::default()).collect();
        PlanCache {
            shards: shards.into_boxed_slice(),
            shard_capacity: AtomicUsize::new(capacity.div_ceil(n_shards).max(1)),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        // sig is already a 64-bit hash; fold in the set and policy so
        // one graph's subplans spread across shards.
        let mix = key
            .sig
            .as_u64()
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(17)
            ^ key.set
            ^ u64::from(key.policy.wire_tag());
        // Shard count is a power of two.
        (mix as usize) & (self.shards.len() - 1)
    }

    fn read_shard(&self, i: usize) -> RwLockReadGuard<'_, Shard> {
        self.shards[i]
            .read()
            .expect("plan cache lock never poisoned")
    }

    fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, Shard> {
        self.shards[i]
            .write()
            .expect("plan cache lock never poisoned")
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Look up the subplan for `set` under `ctx`, against the current
    /// catalog `epoch`. A stale entry (older epoch) is removed and
    /// reported as a miss; `local` receives the per-call accounting.
    /// Hits and clean misses resolve under the shard's read lock; only
    /// a stale entry escalates to the write lock for removal.
    pub(crate) fn lookup(
        &self,
        ctx: &CacheCtx,
        set: RelSet,
        epoch: u64,
        local: &mut CacheStats,
    ) -> Option<Arc<CachedEntry>> {
        let key = ctx.key(set);
        let tick = self.next_tick();
        let shard = self.shard_of(&key);
        {
            let guard = self.read_shard(shard);
            match guard.map.get(&key) {
                Some(slot) if slot.entry.epoch == epoch => {
                    slot.last_used.store(tick, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    local.hits += 1;
                    return Some(Arc::clone(&slot.entry));
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    local.misses += 1;
                    return None;
                }
                Some(_) => {} // stale: escalate to the write lock
            }
        }
        let mut guard = self.write_shard(shard);
        // Re-check: the entry may have been refreshed or removed
        // between dropping the read lock and acquiring the write lock.
        match guard.map.get(&key) {
            Some(slot) if slot.entry.epoch == epoch => {
                slot.last_used.store(tick, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                local.hits += 1;
                Some(Arc::clone(&slot.entry))
            }
            Some(_) => {
                guard.map.remove(&key);
                self.stale.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                local.stale += 1;
                local.misses += 1;
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                local.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) the winner for `set`. At its shard's
    /// capacity, the least-recently-used quarter of that shard is
    /// evicted in one batch — LRU-ish: strict recency order inside the
    /// batch, amortized O(1) per insert.
    pub(crate) fn insert(
        &self,
        ctx: &CacheCtx,
        set: RelSet,
        entry: Arc<CachedEntry>,
        local: &mut CacheStats,
    ) {
        let key = ctx.key(set);
        let tick = self.next_tick();
        let capacity = self.shard_capacity.load(Ordering::Relaxed);
        let mut guard = self.write_shard(self.shard_of(&key));
        if guard.map.len() >= capacity && !guard.map.contains_key(&key) {
            let mut ages: Vec<(u64, CacheKey)> = guard
                .map
                .iter()
                .map(|(k, s)| (s.last_used.load(Ordering::Relaxed), *k))
                .collect();
            ages.sort_unstable_by_key(|&(t, _)| t);
            let drop_n = (capacity / 4).max(1);
            for (_, k) in ages.into_iter().take(drop_n) {
                guard.map.remove(&k);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                local.evictions += 1;
            }
        }
        guard.map.insert(
            key,
            Slot {
                entry,
                last_used: AtomicU64::new(tick),
            },
        );
    }

    /// Cumulative statistics since construction (or the last clear).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.read_shard(i).map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry and reset the statistics.
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            self.write_shard(i).map.clear();
        }
        self.tick.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.stale.store(0, Ordering::Relaxed);
    }

    /// Change the capacity bound (evicting nothing until an insert
    /// presses against a shard's share of it). The shard count is
    /// fixed at construction; the new capacity redistributes evenly
    /// across the existing shards.
    pub fn set_capacity(&self, capacity: usize) {
        let per_shard = capacity.max(1).div_ceil(self.shards.len()).max(1);
        self.shard_capacity.store(per_shard, Ordering::Relaxed);
    }

    /// Persist every current-epoch entry to `path` as a `FROW`
    /// snapshot. Stale entries (older epochs) are skipped — the file
    /// only ever contains plans costed against the statistics the
    /// header's `epoch`/`fingerprint` describe. Entries whose plans
    /// reference names the interner no longer resolves are skipped
    /// rather than failing the whole save. Returns the number of
    /// entries written. Each entry carries its recency rank so a later
    /// [`PlanCache::load`] restores the LRU order, not just the set.
    ///
    /// # Errors
    /// [`WireError::Io`] on filesystem failure; encoding itself cannot
    /// fail for entries the skip-filter admits.
    pub fn save(
        &self,
        path: impl AsRef<Path>,
        it: &Interner,
        epoch: u64,
        fingerprint: u64,
    ) -> Result<usize, WireError> {
        let header = SnapshotHeader { epoch, fingerprint };
        let mut aged: Vec<(u64, SnapshotEntry)> = Vec::new();
        for i in 0..self.shards.len() {
            let guard = self.read_shard(i);
            aged.extend(
                guard
                    .map
                    .iter()
                    .filter(|(_, slot)| slot.entry.epoch == epoch)
                    .map(|(key, slot)| {
                        let e = &slot.entry;
                        (
                            slot.last_used.load(Ordering::Relaxed),
                            SnapshotEntry {
                                sig: key.sig.as_u64(),
                                set_bits: key.set,
                                policy_tag: key.policy.wire_tag(),
                                cost: e.cost,
                                rows: e.rows,
                                base: e.base,
                                recency: 0, // ranked below, once sorted
                                plan: e.plan.clone(),
                            },
                        )
                    })
                    // Per-entry dry run against the same validation the
                    // final encode applies, so one unserializable entry
                    // is dropped instead of failing the whole save.
                    .filter(|(_, e)| encode_snapshot(header, std::slice::from_ref(e), it).is_ok()),
            );
        }
        // Oldest first, so rank 0 = least recently used.
        aged.sort_unstable_by_key(|&(t, _)| t);
        let entries: Vec<SnapshotEntry> = aged
            .into_iter()
            .enumerate()
            .map(|(rank, (_, mut e))| {
                e.recency = rank as u64;
                e
            })
            .collect();
        let bytes = encode_snapshot(header, &entries, it)?;
        std::fs::write(path.as_ref(), bytes).map_err(|e| WireError::Io(e.to_string()))?;
        Ok(entries.len())
    }

    /// Load a snapshot saved by [`PlanCache::save`], revalidating it
    /// against the *current* catalog generation before trusting a
    /// single entry:
    ///
    /// 1. wrong `fingerprint` (different tables/stats, so different
    ///    name⇄id mapping) → [`CacheLoad::Foreign`], nothing decoded;
    /// 2. right fingerprint, wrong `epoch` → [`CacheLoad::StaleEpoch`],
    ///    nothing loaded (entries would be lazily evicted anyway);
    /// 3. both match → entries decode, validate structurally, and are
    ///    inserted at the current epoch.
    ///
    /// A mismatched snapshot is **not** an error — the cache simply
    /// stays cold, which is always correct.
    ///
    /// # Errors
    /// [`WireError::Io`] when the file cannot be read, or any decode
    /// variant when a fingerprint-matching snapshot is corrupt.
    pub fn load(
        &self,
        path: impl AsRef<Path>,
        it: &Interner,
        epoch: u64,
        fingerprint: u64,
    ) -> Result<CacheLoad, WireError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| WireError::Io(e.to_string()))?;
        let header = peek_snapshot_header(&bytes)?;
        if header.fingerprint != fingerprint {
            return Ok(CacheLoad::Foreign);
        }
        if header.epoch != epoch {
            return Ok(CacheLoad::StaleEpoch);
        }
        let (_, mut entries) = decode_snapshot(&bytes, it)?;
        // Install in ascending recency order so the ticks assigned here
        // reproduce the saved LRU order: the least recently used entry
        // gets the oldest tick and is first in line for eviction again.
        entries.sort_by_key(|e| e.recency);
        let capacity = self.shard_capacity.load(Ordering::Relaxed);
        let mut loaded = 0usize;
        for e in entries {
            let Some(policy) = Policy::from_wire_tag(e.policy_tag) else {
                // decode_snapshot already range-checked the tag; a tag
                // the wire layer admits but this build's Policy does
                // not is future-proofing, not an expected path.
                continue;
            };
            let key = CacheKey {
                sig: GraphSignature::from_u64(e.sig),
                set: e.set_bits,
                policy,
            };
            let tick = self.next_tick();
            let mut guard = self.write_shard(self.shard_of(&key));
            if guard.map.len() >= capacity {
                continue; // this shard is full; others may still accept
            }
            guard.map.insert(
                key,
                Slot {
                    entry: Arc::new(CachedEntry {
                        plan: e.plan,
                        cost: e.cost,
                        rows: e.rows,
                        base: e.base,
                        epoch,
                    }),
                    last_used: AtomicU64::new(tick),
                },
            );
            loaded += 1;
        }
        Ok(CacheLoad::Loaded(loaded))
    }
}

/// Outcome of [`PlanCache::load`]: how the snapshot related to the
/// loading catalog's generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLoad {
    /// Header matched; this many entries were installed at the current
    /// epoch.
    Loaded(usize),
    /// Fingerprint matched but the epoch moved since the save — the
    /// statistics changed, so the plans' costs are no longer trusted
    /// and the cache stays cold.
    StaleEpoch,
    /// The snapshot was written over a different catalog (different
    /// fingerprint); its ids would resolve to the wrong names, so it
    /// was rejected before decoding any entry and the cache stays cold.
    Foreign,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new()
    }
}

impl Clone for PlanCache {
    fn clone(&self) -> PlanCache {
        let stats = self.stats();
        let shards: Vec<RwLock<Shard>> = (0..self.shards.len())
            .map(|i| RwLock::new(self.read_shard(i).clone()))
            .collect();
        PlanCache {
            shards: shards.into_boxed_slice(),
            shard_capacity: AtomicUsize::new(self.shard_capacity.load(Ordering::Relaxed)),
            tick: AtomicU64::new(self.tick.load(Ordering::Relaxed)),
            hits: AtomicU64::new(stats.hits),
            misses: AtomicU64::new(stats.misses),
            evictions: AtomicU64::new(stats.evictions),
            stale: AtomicU64::new(stats.stale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Pred;

    fn chain(names: &[&str]) -> QueryGraph {
        let mut g = QueryGraph::new(names.iter().map(|s| (*s).to_owned()).collect());
        for i in 0..names.len() - 1 {
            g.add_join_edge(
                i,
                i + 1,
                Pred::eq_attr(&format!("{}.k", names[i]), &format!("{}.k", names[i + 1])),
            )
            .unwrap();
        }
        g
    }

    #[test]
    fn alpha_equivalent_graphs_share_a_signature() {
        // Same tables and edges, nodes listed in a different order.
        let g1 = chain(&["A", "B", "C"]);
        let mut g2 = QueryGraph::new(vec!["C".into(), "A".into(), "B".into()]);
        g2.add_join_edge(1, 2, Pred::eq_attr("A.k", "B.k")).unwrap();
        g2.add_join_edge(2, 0, Pred::eq_attr("B.k", "C.k")).unwrap();
        let (s1, p1) = graph_signature(&g1);
        let (s2, p2) = graph_signature(&g2);
        assert_eq!(s1, s2);
        // And the canonical remap sends {A} to the same bit.
        let c1 = CacheCtx {
            sig: s1,
            perm: p1,
            policy: Policy::Paper,
        };
        let c2 = CacheCtx {
            sig: s2,
            perm: p2,
            policy: Policy::Paper,
        };
        assert_eq!(
            c1.canon(RelSet::singleton(0)),
            c2.canon(RelSet::singleton(1))
        );
    }

    #[test]
    fn different_structure_different_signature() {
        let join = chain(&["A", "B"]);
        let mut oj = QueryGraph::new(vec!["A".into(), "B".into()]);
        oj.add_outerjoin_edge(0, 1, Pred::eq_attr("A.k", "B.k"))
            .unwrap();
        let mut oj_rev = QueryGraph::new(vec!["A".into(), "B".into()]);
        oj_rev
            .add_outerjoin_edge(1, 0, Pred::eq_attr("A.k", "B.k"))
            .unwrap();
        let s = |g: &QueryGraph| graph_signature(g).0;
        // Join vs outerjoin, and the two outerjoin directions, all
        // differ.
        assert_ne!(s(&join), s(&oj));
        assert_ne!(s(&oj), s(&oj_rev));
        // Different predicate shape differs too.
        let mut theta = QueryGraph::new(vec!["A".into(), "B".into()]);
        theta
            .add_join_edge(0, 1, Pred::cmp_attr("A.k", fro_algebra::CmpOp::Lt, "B.k"))
            .unwrap();
        assert_ne!(s(&join), s(&theta));
    }

    #[test]
    fn lookup_miss_then_hit_then_stale() {
        let g = chain(&["A", "B"]);
        let ctx = CacheCtx::for_graph(&g, Policy::Paper);
        let cache = PlanCache::new();
        let set = RelSet::full(2);
        let mut local = CacheStats::default();
        assert!(cache.lookup(&ctx, set, 1, &mut local).is_none());
        let entry = Arc::new(CachedEntry {
            plan: PhysPlan::scan("A"),
            cost: 1.0,
            rows: 1.0,
            base: None,
            epoch: 1,
        });
        cache.insert(&ctx, set, entry, &mut local);
        assert!(cache.lookup(&ctx, set, 1, &mut local).is_some());
        // Epoch bump: the entry is stale, dropped lazily.
        assert!(cache.lookup(&ctx, set, 2, &mut local).is_none());
        assert_eq!(local.hits, 1);
        assert_eq!(local.misses, 2);
        assert_eq!(local.stale, 1);
        assert!(cache.is_empty());
        let global = cache.stats();
        assert_eq!(global.hits, 1);
        assert_eq!(global.stale, 1);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let g = chain(&["A", "B", "C", "D"]);
        let ctx = CacheCtx::for_graph(&g, Policy::Paper);
        let cache = PlanCache::with_capacity(4);
        let mut local = CacheStats::default();
        let mk = || {
            Arc::new(CachedEntry {
                plan: PhysPlan::scan("A"),
                cost: 1.0,
                rows: 1.0,
                base: None,
                epoch: 0,
            })
        };
        let sets: Vec<RelSet> = (0..4).map(RelSet::singleton).collect();
        for &s in &sets {
            cache.insert(&ctx, s, mk(), &mut local);
        }
        // Touch everything but the first, then overflow.
        for &s in &sets[1..] {
            assert!(cache.lookup(&ctx, s, 0, &mut local).is_some());
        }
        cache.insert(&ctx, RelSet::full(4), mk(), &mut local);
        assert!(local.evictions >= 1);
        // The untouched entry was in the evicted batch.
        let mut probe = CacheStats::default();
        assert!(cache.lookup(&ctx, sets[0], 0, &mut probe).is_none());
        assert!(cache.lookup(&ctx, RelSet::full(4), 0, &mut probe).is_some());
    }

    #[test]
    fn policy_partitions_the_key_space() {
        let g = chain(&["A", "B"]);
        let paper = CacheCtx::for_graph(&g, Policy::Paper);
        let strict = CacheCtx::for_graph(&g, Policy::Strict);
        let cache = PlanCache::new();
        let mut local = CacheStats::default();
        let entry = Arc::new(CachedEntry {
            plan: PhysPlan::scan("A"),
            cost: 1.0,
            rows: 1.0,
            base: None,
            epoch: 0,
        });
        cache.insert(&paper, RelSet::full(2), entry, &mut local);
        assert!(cache
            .lookup(&strict, RelSet::full(2), 0, &mut local)
            .is_none());
        assert!(cache
            .lookup(&paper, RelSet::full(2), 0, &mut local)
            .is_some());
    }
}
