//! Yannakakis-style semijoin reduction as a costed post-pass.
//!
//! The paper's "nice" query graphs are tree-shaped; on such acyclic
//! graphs a two-pass semijoin reducer (leaves→root, then root→leaves)
//! bounds every intermediate by the output size. [`reduce_plan`]
//! retrofits that classic win onto the plan the DP already chose —
//! without disturbing it: reduction is a **shape-preserving wrap
//! rewrite**. Each wrap splices a [`PhysPlan::SemiReduce`] node around
//! an existing operand, filtering it to the rows whose join key has a
//! partner in a *shallow base source* (`Scan R` or `Filter(Scan R)`)
//! taken from the opposite subtree. A semijoin by any superset of the
//! partner key set only removes rows that could never contribute, so
//! the wrapped plan produces bit-identical rows in the same order.
//!
//! Soundness per join kind (the wrap matrix):
//! * **up-pass** (reduce a join's probe side by its own build key):
//!   `Inner` and `Semi` only — a left-outer probe row must survive
//!   unmatched, and an anti probe row is *defined* by having no match.
//! * **down-pass** (reduce the build side by the probe key): `Inner`,
//!   `LeftOuter`, `Semi`, `Anti` — build rows whose key never occurs
//!   on the probe side can never match, pad, or veto anything.
//! * `FullOuter` admits no wraps and blocks descent entirely.
//!
//! A pending wrap **descends** toward the base table it filters —
//! through `Filter`, key-retaining `Project`, the probe side of
//! non-full-outer hash joins and the outer side of index joins — and
//! is applied where descent stops. In the pipelined engine that puts
//! the membership probe directly above the fact-table scan, killing
//! non-joining rows before any join expands them.
//!
//! Every candidate wrap is **costed**: the greedy loop keeps a wrap
//! only when the whole-plan estimate (under the containment-assumption
//! selectivity in `cost.rs`) improves by at least 1%. On uniformly
//! keyed data the survivor fraction is ≈1 and reduction is correctly
//! declined; on skewed star/snowflake data it approaches the true
//! match fraction and the reducer pays for itself many times over.

use super::cost::estimate_plan;
use super::stats::Catalog;
use fro_algebra::Attr;
use fro_exec::{PhysPlan, ReducePass};
use fro_graph::{EdgeKind, QueryGraph};
use std::fmt;

/// When the optimizer may apply semijoin reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReducePolicy {
    /// Cost-based: apply each wrap only when the estimate says it pays.
    #[default]
    Auto,
    /// Apply every sound wrap unconditionally (testing / benchmarks).
    Always,
    /// Never reduce — always run the plain plan.
    Never,
}

impl fmt::Display for ReducePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReducePolicy::Auto => write!(f, "auto"),
            ReducePolicy::Always => write!(f, "always"),
            ReducePolicy::Never => write!(f, "never"),
        }
    }
}

/// One applied (or candidate) reduction wrap, for reports and EXPLAIN.
#[derive(Debug, Clone, PartialEq)]
pub struct WrapDesc {
    /// Which pass of the two-pass schedule the wrap belongs to.
    pub pass: ReducePass,
    /// Key attributes of the reduced (surviving) operand.
    pub input_keys: Vec<Attr>,
    /// Key attributes of the membership source.
    pub source_keys: Vec<Attr>,
    /// Short label of the source plan (`Scan D1`, `Filter(Scan D1)`).
    pub source_label: String,
}

impl fmt::Display for WrapDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ik: Vec<String> = self.input_keys.iter().map(ToString::to_string).collect();
        let sk: Vec<String> = self.source_keys.iter().map(ToString::to_string).collect();
        write!(
            f,
            "SemiReduce({}) [{} = {}] src={}",
            self.pass,
            ik.join(","),
            sk.join(","),
            self.source_label
        )
    }
}

/// What the reducer did and why — rendered by `Optimized::explain`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionReport {
    /// The policy the reducer ran under.
    pub policy: ReducePolicy,
    /// Number of sound candidate wraps enumerated.
    pub considered: usize,
    /// The wraps actually applied (empty ⇒ plain plan kept).
    pub applied: Vec<WrapDesc>,
    /// Why nothing was applied, when `applied` is empty.
    pub declined: Option<String>,
    /// Estimated cost of the plain (unreduced) plan.
    pub plain_cost: f64,
    /// Estimated cost of the returned plan (= `plain_cost` when no
    /// wrap was applied).
    pub reduced_cost: f64,
}

impl Default for ReductionReport {
    fn default() -> Self {
        ReductionReport {
            policy: ReducePolicy::Auto,
            considered: 0,
            applied: Vec::new(),
            declined: Some("not attempted".to_owned()),
            plain_cost: 0.0,
            reduced_cost: 0.0,
        }
    }
}

impl fmt::Display for ReductionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.applied.is_empty() {
            write!(
                f,
                "reduction: declined (policy={} considered={}{})",
                self.policy,
                self.considered,
                self.declined
                    .as_deref()
                    .map(|r| format!(" — {r}"))
                    .unwrap_or_default()
            )
        } else {
            write!(
                f,
                "reduction: {} wrap(s) applied (policy={} considered={})  plain_cost: {:.1}  reduced_cost: {:.1}",
                self.applied.len(),
                self.policy,
                self.considered,
                self.plain_cost,
                self.reduced_cost
            )?;
            for w in &self.applied {
                write!(f, "\n  {w}")?;
            }
            Ok(())
        }
    }
}

/// Is the join core of `g` acyclic? Union-find over the `Join` edges:
/// an edge whose endpoints are already connected closes a cycle, and
/// cyclic graphs get no Yannakakis guarantee (a full reducer would
/// need a tree decomposition the paper never requires).
fn join_core_acyclic(g: &QueryGraph) -> bool {
    let mut parent: Vec<usize> = (0..g.n_nodes()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for e in g.edges() {
        if e.kind() != EdgeKind::Join {
            continue;
        }
        let (ra, rb) = (find(&mut parent, e.a()), find(&mut parent, e.b()));
        if ra == rb {
            return false;
        }
        parent[ra] = rb;
    }
    true
}

/// Does `plan`'s output schema contain every attribute in `keys`?
/// Structural: tracks which relation attributes survive projections,
/// aggregations, and the schema-halving join kinds.
fn provides(plan: &PhysPlan, keys: &[Attr]) -> bool {
    keys.iter().all(|k| provides_attr(plan, k))
}

fn provides_attr(plan: &PhysPlan, k: &Attr) -> bool {
    use fro_exec::JoinKind as JK;
    match plan {
        PhysPlan::Scan { rel } => k.rel() == rel,
        PhysPlan::Filter { input, .. } | PhysPlan::SemiReduce { input, .. } => {
            provides_attr(input, k)
        }
        PhysPlan::Project { attrs, .. } => attrs.contains(k),
        PhysPlan::GroupCount { group_attrs, .. } => group_attrs.contains(k),
        PhysPlan::HashJoin {
            kind, probe, build, ..
        } => match kind {
            JK::Semi | JK::Anti => provides_attr(probe, k),
            _ => provides_attr(probe, k) || provides_attr(build, k),
        },
        PhysPlan::IndexJoin {
            kind, outer, inner, ..
        } => match kind {
            JK::Semi | JK::Anti => provides_attr(outer, k),
            _ => provides_attr(outer, k) || k.rel() == inner,
        },
        PhysPlan::MergeJoin {
            kind, left, right, ..
        }
        | PhysPlan::NlJoin {
            kind, left, right, ..
        } => match kind {
            JK::Semi | JK::Anti => provides_attr(left, k),
            _ => provides_attr(left, k) || provides_attr(right, k),
        },
        PhysPlan::Goj { left, right, .. } => provides_attr(left, k) || provides_attr(right, k),
    }
}

/// Find the shallow base access of `rel` inside `plan`: the `Scan`
/// node itself, or its immediate `Filter(Scan)` wrapper (tighter, and
/// still trivially a superset of the rows that reach any join above
/// it). Never returns a join subtree — sources must not re-execute
/// plan fragments.
fn find_base(plan: &PhysPlan, rel: &str) -> Option<PhysPlan> {
    match plan {
        PhysPlan::Scan { rel: r } if r == rel => Some(plan.clone()),
        PhysPlan::Scan { .. } => None,
        PhysPlan::Filter { input, .. } => match input.as_ref() {
            PhysPlan::Scan { rel: r } if r == rel => Some(plan.clone()),
            _ => find_base(input, rel),
        },
        PhysPlan::Project { input, .. }
        | PhysPlan::GroupCount { input, .. }
        | PhysPlan::SemiReduce { input, .. } => find_base(input, rel),
        PhysPlan::HashJoin { probe, build, .. } => {
            find_base(probe, rel).or_else(|| find_base(build, rel))
        }
        PhysPlan::IndexJoin { outer, inner, .. } => {
            if inner == rel {
                Some(PhysPlan::Scan { rel: inner.clone() })
            } else {
                find_base(outer, rel)
            }
        }
        PhysPlan::MergeJoin { left, right, .. }
        | PhysPlan::NlJoin { left, right, .. }
        | PhysPlan::Goj { left, right, .. } => {
            find_base(left, rel).or_else(|| find_base(right, rel))
        }
    }
}

fn label_of(plan: &PhysPlan) -> String {
    match plan {
        PhysPlan::Scan { rel } => format!("Scan {rel}"),
        PhysPlan::Filter { input, .. } => match input.as_ref() {
            PhysPlan::Scan { rel } => format!("Filter(Scan {rel})"),
            _ => "Filter(..)".to_owned(),
        },
        _ => "..".to_owned(),
    }
}

/// A wrap in flight: generated at a join, descending toward its
/// application point.
struct Pending {
    input_keys: Vec<Attr>,
    source: PhysPlan,
    source_keys: Vec<Attr>,
    pass: ReducePass,
}

struct RewriteCx<'a> {
    enabled: &'a [bool],
    cands: Vec<WrapDesc>,
}

impl RewriteCx<'_> {
    fn is_enabled(&self, idx: usize) -> bool {
        self.enabled.get(idx).copied().unwrap_or(false)
    }
}

/// Group equal-length key lists by the relation of the `by` side,
/// preserving first-occurrence order. Returns
/// `(rel, keys_of_by_side, keys_of_other_side)` triples.
fn group_by_rel<'k>(by: &'k [Attr], other: &'k [Attr]) -> Vec<(&'k str, Vec<Attr>, Vec<Attr>)> {
    let mut groups: Vec<(&str, Vec<Attr>, Vec<Attr>)> = Vec::new();
    for (b, o) in by.iter().zip(other) {
        if let Some(g) = groups.iter_mut().find(|g| g.0 == b.rel()) {
            g.1.push(b.clone());
            g.2.push(o.clone());
        } else {
            groups.push((b.rel(), vec![b.clone()], vec![o.clone()]));
        }
    }
    groups
}

/// Wrap `out` with every pending reduction, first pending innermost.
fn apply_pending(mut out: PhysPlan, pending: Vec<Pending>) -> PhysPlan {
    for p in pending {
        out = PhysPlan::SemiReduce {
            input: Box::new(out),
            source: Box::new(p.source),
            input_keys: p.input_keys,
            source_keys: p.source_keys,
            pass: p.pass,
        };
    }
    out
}

/// Split `pending` into the wraps that may descend into `child` and
/// the ones blocked here.
fn split_descend(pending: Vec<Pending>, child: &PhysPlan) -> (Vec<Pending>, Vec<Pending>) {
    pending
        .into_iter()
        .partition(|p| provides(child, &p.input_keys))
}

/// The single traversal that both enumerates candidate wraps (in a
/// deterministic, mask-independent order) and applies the enabled
/// subset. Enumerate with an empty mask; apply with the greedy
/// winner.
#[allow(clippy::too_many_lines)]
fn rewrite(plan: &PhysPlan, pending: Vec<Pending>, cx: &mut RewriteCx<'_>) -> PhysPlan {
    use fro_exec::JoinKind as JK;
    match plan {
        PhysPlan::Scan { .. } => apply_pending(plan.clone(), pending),
        PhysPlan::Filter { input, pred } => {
            let (desc, blocked) = split_descend(pending, input);
            let out = PhysPlan::Filter {
                input: Box::new(rewrite(input, desc, cx)),
                pred: pred.clone(),
            };
            apply_pending(out, blocked)
        }
        PhysPlan::Project { input, attrs } => {
            let (desc, blocked) = split_descend(pending, input);
            let out = PhysPlan::Project {
                input: Box::new(rewrite(input, desc, cx)),
                attrs: attrs.clone(),
            };
            apply_pending(out, blocked)
        }
        PhysPlan::SemiReduce {
            input,
            source,
            input_keys,
            source_keys,
            pass,
        } => {
            let (desc, blocked) = split_descend(pending, input);
            let out = PhysPlan::SemiReduce {
                input: Box::new(rewrite(input, desc, cx)),
                source: Box::new(rewrite(source, Vec::new(), cx)),
                input_keys: input_keys.clone(),
                source_keys: source_keys.clone(),
                pass: *pass,
            };
            apply_pending(out, blocked)
        }
        PhysPlan::HashJoin {
            kind,
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
        } if *kind != JK::FullOuter => {
            let mut probe_pending = Vec::new();
            let mut build_pending = Vec::new();
            // Up-pass candidates: reduce the probe side by its own
            // build key — sound only where every probe row must match
            // to surface.
            if matches!(kind, JK::Inner | JK::Semi) {
                for (rel, skeys, ikeys) in group_by_rel(build_keys, probe_keys) {
                    let Some(src) = find_base(build, rel) else {
                        continue;
                    };
                    if !provides(&src, &skeys) || !provides(probe, &ikeys) {
                        continue;
                    }
                    let idx = cx.cands.len();
                    cx.cands.push(WrapDesc {
                        pass: ReducePass::Up,
                        input_keys: ikeys.clone(),
                        source_keys: skeys.clone(),
                        source_label: label_of(&src),
                    });
                    if cx.is_enabled(idx) {
                        probe_pending.push(Pending {
                            input_keys: ikeys,
                            source: src,
                            source_keys: skeys,
                            pass: ReducePass::Up,
                        });
                    }
                }
            }
            // Down-pass candidates: reduce the build side by the probe
            // key — sound for every kind where an unmatchable build
            // row is inert.
            for (rel, skeys, ikeys) in group_by_rel(probe_keys, build_keys) {
                let Some(src) = find_base(probe, rel) else {
                    continue;
                };
                if !provides(&src, &skeys) || !provides(build, &ikeys) {
                    continue;
                }
                let idx = cx.cands.len();
                cx.cands.push(WrapDesc {
                    pass: ReducePass::Down,
                    input_keys: ikeys.clone(),
                    source_keys: skeys.clone(),
                    source_label: label_of(&src),
                });
                if cx.is_enabled(idx) {
                    build_pending.push(Pending {
                        input_keys: ikeys,
                        source: src,
                        source_keys: skeys,
                        pass: ReducePass::Down,
                    });
                }
            }
            let (mut desc, blocked) = split_descend(pending, probe);
            desc.append(&mut probe_pending);
            let out = PhysPlan::HashJoin {
                kind: *kind,
                probe: Box::new(rewrite(probe, desc, cx)),
                build: Box::new(rewrite(build, build_pending, cx)),
                probe_keys: probe_keys.clone(),
                build_keys: build_keys.clone(),
                residual: residual.clone(),
            };
            apply_pending(out, blocked)
        }
        PhysPlan::IndexJoin {
            kind,
            outer,
            inner,
            outer_keys,
            inner_keys,
            residual,
        } if *kind != JK::FullOuter => {
            let mut outer_pending = Vec::new();
            // Up-pass only: the inner side is a stored table reached
            // through its index, not a plan operand to wrap.
            if matches!(kind, JK::Inner | JK::Semi) {
                for (_rel, skeys, ikeys) in group_by_rel(inner_keys, outer_keys) {
                    if !provides(outer, &ikeys) {
                        continue;
                    }
                    let src = PhysPlan::Scan { rel: inner.clone() };
                    let idx = cx.cands.len();
                    cx.cands.push(WrapDesc {
                        pass: ReducePass::Up,
                        input_keys: ikeys.clone(),
                        source_keys: skeys.clone(),
                        source_label: label_of(&src),
                    });
                    if cx.is_enabled(idx) {
                        outer_pending.push(Pending {
                            input_keys: ikeys,
                            source: src,
                            source_keys: skeys,
                            pass: ReducePass::Up,
                        });
                    }
                }
            }
            let (mut desc, blocked) = split_descend(pending, outer);
            desc.append(&mut outer_pending);
            let out = PhysPlan::IndexJoin {
                kind: *kind,
                outer: Box::new(rewrite(outer, desc, cx)),
                inner: inner.clone(),
                outer_keys: outer_keys.clone(),
                inner_keys: inner_keys.clone(),
                residual: residual.clone(),
            };
            apply_pending(out, blocked)
        }
        // Everything else blocks descent and generates no wraps, but
        // children are still traversed so joins below a barrier get
        // their own local reductions.
        PhysPlan::HashJoin {
            kind,
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
        } => {
            let out = PhysPlan::HashJoin {
                kind: *kind,
                probe: Box::new(rewrite(probe, Vec::new(), cx)),
                build: Box::new(rewrite(build, Vec::new(), cx)),
                probe_keys: probe_keys.clone(),
                build_keys: build_keys.clone(),
                residual: residual.clone(),
            };
            apply_pending(out, pending)
        }
        PhysPlan::IndexJoin { .. } => apply_pending(plan.clone(), pending),
        PhysPlan::MergeJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let out = PhysPlan::MergeJoin {
                kind: *kind,
                left: Box::new(rewrite(left, Vec::new(), cx)),
                right: Box::new(rewrite(right, Vec::new(), cx)),
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
                residual: residual.clone(),
            };
            apply_pending(out, pending)
        }
        PhysPlan::NlJoin {
            kind,
            left,
            right,
            pred,
        } => {
            let out = PhysPlan::NlJoin {
                kind: *kind,
                left: Box::new(rewrite(left, Vec::new(), cx)),
                right: Box::new(rewrite(right, Vec::new(), cx)),
                pred: pred.clone(),
            };
            apply_pending(out, pending)
        }
        PhysPlan::GroupCount {
            input,
            group_attrs,
            counted,
        } => {
            let out = PhysPlan::GroupCount {
                input: Box::new(rewrite(input, Vec::new(), cx)),
                group_attrs: group_attrs.clone(),
                counted: counted.clone(),
            };
            apply_pending(out, pending)
        }
        PhysPlan::Goj {
            left,
            right,
            pred,
            subset,
        } => {
            let out = PhysPlan::Goj {
                left: Box::new(rewrite(left, Vec::new(), cx)),
                right: Box::new(rewrite(right, Vec::new(), cx)),
                pred: pred.clone(),
                subset: subset.clone(),
            };
            apply_pending(out, pending)
        }
    }
}

/// Run one enumerate-and-apply pass: returns the rewritten plan and
/// the full candidate list (the same list for every mask).
fn apply_wraps(plan: &PhysPlan, enabled: &[bool]) -> (PhysPlan, Vec<WrapDesc>) {
    let mut cx = RewriteCx {
        enabled,
        cands: Vec::new(),
    };
    let out = rewrite(plan, Vec::new(), &mut cx);
    (out, cx.cands)
}

/// Semijoin-reduce `plan` under `policy`. Returns the (possibly
/// rewritten) plan plus a [`ReductionReport`] describing the schedule,
/// its estimated cost against the plain plan, or why reduction was
/// declined. Pass the query graph when available: a cyclic join core
/// voids the Yannakakis guarantee and declines reduction outright
/// (`None` skips the gate — callers with hand-built plans own that
/// check).
#[must_use]
pub fn reduce_plan(
    plan: &PhysPlan,
    catalog: &Catalog,
    policy: ReducePolicy,
    graph: Option<&QueryGraph>,
) -> (PhysPlan, ReductionReport) {
    let plain = estimate_plan(plan, catalog);
    let mut report = ReductionReport {
        policy,
        considered: 0,
        applied: Vec::new(),
        declined: None,
        plain_cost: plain.cost,
        reduced_cost: plain.cost,
    };
    if policy == ReducePolicy::Never {
        report.declined = Some("policy".to_owned());
        return (plan.clone(), report);
    }
    if let Some(g) = graph {
        if !join_core_acyclic(g) {
            report.declined = Some("cyclic join graph".to_owned());
            return (plan.clone(), report);
        }
    }
    // Enumeration pass: empty mask applies nothing.
    let (_, cands) = apply_wraps(plan, &[]);
    report.considered = cands.len();
    if cands.is_empty() {
        report.declined = Some("no sound wrap sites".to_owned());
        return (plan.clone(), report);
    }
    let mut mask = vec![false; cands.len()];
    match policy {
        ReducePolicy::Always => mask.fill(true),
        ReducePolicy::Auto => {
            // Greedy: accept a wrap iff it improves the whole-plan
            // estimate by ≥1% over the best mask so far. Wraps that
            // merely restate the join they sit under (the first-joined
            // dimension's up-pass, say) don't clear the bar and fall
            // away on their own.
            let mut best = plain.cost;
            for i in 0..cands.len() {
                mask[i] = true;
                let (candidate, _) = apply_wraps(plan, &mask);
                let est = estimate_plan(&candidate, catalog);
                if est.cost < best * 0.99 {
                    best = est.cost;
                } else {
                    mask[i] = false;
                }
            }
        }
        ReducePolicy::Never => unreachable!("handled above"),
    }
    if !mask.iter().any(|&m| m) {
        report.declined = Some("no wrap beats the plain plan".to_owned());
        return (plan.clone(), report);
    }
    let (reduced, cands) = apply_wraps(plan, &mask);
    report.applied = cands
        .into_iter()
        .zip(&mask)
        .filter_map(|(c, &m)| m.then_some(c))
        .collect();
    report.reduced_cost = estimate_plan(&reduced, catalog).cost;
    (reduced, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::{Pred, Schema};
    use fro_exec::JoinKind;
    use std::sync::Arc;

    /// Skewed star stats: F's keys are nearly unique (10k distinct
    /// over 100k rows) while each dimension has 10k rows over only 100
    /// distinct keys. Containment says only ~1% of F survives each
    /// reduction, and the duplicate-heavy dimensions make the plain
    /// join estimate blow up — the shape the reducer exists for.
    fn skewed_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(
            "F",
            Arc::new(Schema::of_relation("F", &["d1", "d2"])),
            100_000,
        );
        cat.set_distinct(&Attr::parse("F.d1"), 10_000);
        cat.set_distinct(&Attr::parse("F.d2"), 10_000);
        cat.add_table("D1", Arc::new(Schema::of_relation("D1", &["k"])), 10_000);
        cat.set_distinct(&Attr::parse("D1.k"), 100);
        cat.add_table("D2", Arc::new(Schema::of_relation("D2", &["k"])), 10_000);
        cat.set_distinct(&Attr::parse("D2.k"), 100);
        cat
    }

    fn star_plan() -> PhysPlan {
        PhysPlan::HashJoin {
            kind: JoinKind::Inner,
            probe: Box::new(PhysPlan::HashJoin {
                kind: JoinKind::Inner,
                probe: Box::new(PhysPlan::scan("F")),
                build: Box::new(PhysPlan::scan("D1")),
                probe_keys: vec![Attr::parse("F.d1")],
                build_keys: vec![Attr::parse("D1.k")],
                residual: Pred::always(),
            }),
            build: Box::new(PhysPlan::scan("D2")),
            probe_keys: vec![Attr::parse("F.d2")],
            build_keys: vec![Attr::parse("D2.k")],
            residual: Pred::always(),
        }
    }

    #[test]
    fn auto_reduces_skewed_star_and_places_wraps_on_the_scan() {
        let cat = skewed_catalog();
        let (reduced, report) = reduce_plan(&star_plan(), &cat, ReducePolicy::Auto, None);
        assert!(
            !report.applied.is_empty(),
            "skewed star must be reduced: {report}"
        );
        assert!(report.reduced_cost < report.plain_cost);
        // The up-pass wraps descend to sit directly above Scan F.
        let text = reduced.explain();
        assert!(text.contains("SemiReduce"), "{text}");
        let scan_f = text.lines().position(|l| l.contains("Scan F")).unwrap();
        let wrap = text.lines().position(|l| l.contains("SemiReduce")).unwrap();
        assert!(wrap < scan_f, "wrap above the fact scan:\n{text}");
    }

    #[test]
    fn auto_declines_uniform_keys() {
        let mut cat = Catalog::new();
        cat.add_table("F", Arc::new(Schema::of_relation("F", &["d1", "d2"])), 1000);
        cat.set_distinct(&Attr::parse("F.d1"), 100);
        cat.set_distinct(&Attr::parse("F.d2"), 100);
        cat.add_table("D1", Arc::new(Schema::of_relation("D1", &["k"])), 100);
        cat.set_distinct(&Attr::parse("D1.k"), 100);
        cat.add_table("D2", Arc::new(Schema::of_relation("D2", &["k"])), 100);
        cat.set_distinct(&Attr::parse("D2.k"), 100);
        let (reduced, report) = reduce_plan(&star_plan(), &cat, ReducePolicy::Auto, None);
        assert!(report.applied.is_empty(), "{report}");
        assert_eq!(reduced, star_plan());
        assert!(report.considered > 0);
    }

    #[test]
    fn never_is_identity_and_always_forces() {
        let cat = skewed_catalog();
        let (plan, report) = reduce_plan(&star_plan(), &cat, ReducePolicy::Never, None);
        assert_eq!(plan, star_plan());
        assert_eq!(report.declined.as_deref(), Some("policy"));
        let (forced, report) = reduce_plan(&star_plan(), &cat, ReducePolicy::Always, None);
        assert_eq!(report.applied.len(), report.considered);
        assert!(forced.explain().contains("SemiReduce"));
    }

    #[test]
    fn outerjoin_adjacent_subtrees_are_refused() {
        let cat = skewed_catalog();
        // Left-outer probe side must not be up-reduced; full-outer
        // admits nothing at all.
        let lo = PhysPlan::HashJoin {
            kind: JoinKind::LeftOuter,
            probe: Box::new(PhysPlan::scan("F")),
            build: Box::new(PhysPlan::scan("D1")),
            probe_keys: vec![Attr::parse("F.d1")],
            build_keys: vec![Attr::parse("D1.k")],
            residual: Pred::always(),
        };
        let (_, report) = reduce_plan(&lo, &cat, ReducePolicy::Always, None);
        assert!(report.applied.iter().all(|w| w.pass == ReducePass::Down));
        let fo = PhysPlan::HashJoin {
            kind: JoinKind::FullOuter,
            probe: Box::new(PhysPlan::scan("F")),
            build: Box::new(PhysPlan::scan("D1")),
            probe_keys: vec![Attr::parse("F.d1")],
            build_keys: vec![Attr::parse("D1.k")],
            residual: Pred::always(),
        };
        let (plan, report) = reduce_plan(&fo, &cat, ReducePolicy::Always, None);
        assert_eq!(plan, fo);
        assert_eq!(report.considered, 0);
    }

    #[test]
    fn cyclic_graph_declines() {
        let cat = skewed_catalog();
        let mut g = QueryGraph::new(vec!["A".into(), "B".into(), "C".into()]);
        g.add_join_edge(0, 1, Pred::always()).unwrap();
        g.add_join_edge(1, 2, Pred::always()).unwrap();
        g.add_join_edge(0, 2, Pred::always()).unwrap();
        let (plan, report) = reduce_plan(&star_plan(), &cat, ReducePolicy::Always, Some(&g));
        assert_eq!(plan, star_plan());
        assert_eq!(report.declined.as_deref(), Some("cyclic join graph"));
    }
}
