//! The cost-based optimizer (§6.1).
//!
//! [`optimize`] runs the Theorem 1 analysis first. When the query is
//! freely reorderable it explores *every* implementing tree via
//! [`dp::dp_optimize`] — the simple optimizer extension the paper
//! promises ("there is no need to insert additional operators, or
//! perform a subtle analysis"). Otherwise it falls back to the
//! syntactic association of the input tree ([`lower::lower`]), which
//! is always correct.

pub mod containment;
pub mod cost;
pub mod cuts;
pub mod dp;
pub mod greedy;
pub mod lower;
pub mod plancache;
pub mod reduce;
pub mod stats;

use crate::reorder::{analyze, Analysis, Policy};
use fro_algebra::{Query, Relation};
use fro_exec::{ExecConfig, ExecError, ExecStats, PhysPlan, Storage};
use std::fmt;

pub use containment::{graph_containment, GraphReuse};
pub use cost::{estimate_plan, Estimate};
pub use cuts::{split_equi, RelMap};
pub use dp::{dp_optimize, dp_optimize_with, DpResult};
pub use greedy::{greedy_optimize, greedy_optimize_with, GreedyResult};
pub use lower::lower;
#[cfg(feature = "testing-oracles")]
#[doc(hidden)]
pub use lower::{lower_by_name, split_equi_by_name};
pub use plancache::{
    graph_signature, CacheCtx, CacheLoad, CacheStats, CachedEntry, GraphSignature, PlanCache,
};
pub use reduce::{reduce_plan, ReducePolicy, ReductionReport, WrapDesc};
pub use stats::{Catalog, TableInfo};

/// Optimizer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// The query uses an operator the physical engine cannot run, or
    /// exceeds the exhaustive-DP size cap.
    Unsupported(String),
    /// The query graph is disconnected (no implementing tree).
    Disconnected,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Unsupported(m) => write!(f, "unsupported: {m}"),
            OptError::Disconnected => write!(f, "query graph is disconnected"),
        }
    }
}

impl std::error::Error for OptError {}

/// The outcome of [`optimize`].
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The chosen physical plan.
    pub plan: PhysPlan,
    /// Estimated cost in tuples touched.
    pub est_cost: f64,
    /// Estimated output rows.
    pub est_rows: f64,
    /// The Theorem 1 analysis that gated reordering.
    pub analysis: Analysis,
    /// Whether the plan came from the reordering DP (`true`) or the
    /// syntactic fallback (`false`).
    pub reordered: bool,
    /// csg–cmp pairs (DP) or candidate merges (greedy) enumerated.
    /// Zero when the whole plan came out of the cache.
    pub pairs_examined: u64,
    /// Plan-cache accounting for this optimization (all zero on the
    /// non-reordering fallback path, which never consults the cache).
    pub cache: CacheStats,
    /// Hash-join partition count suggested from catalog statistics (the
    /// largest base-relation cardinality in the query, fed through
    /// [`fro_exec::suggest_partitions`]). A hint, not a mandate: the
    /// session front door substitutes it when the caller's
    /// [`ExecConfig`] says "auto" (`partitions = 0`), and results are
    /// identical at any partition count regardless.
    pub suggested_partitions: usize,
    /// What the semijoin reducer did to the chosen plan: the applied
    /// wrap schedule and its cost against the plain alternative, or
    /// why reduction was declined. Reduction runs *after* the plan
    /// cache, so cached entries stay plain and reusable under every
    /// [`ReducePolicy`].
    pub reduction: ReductionReport,
}

impl Optimized {
    /// An EXPLAIN-style rendering: the plan tree followed by the
    /// estimates, the reordering verdict, and the plan-cache counters.
    #[must_use]
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        let mut out = self.plan.explain();
        if !out.ends_with('\n') {
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "est_cost: {:.1}  est_rows: {:.1}",
            self.est_cost, self.est_rows
        );
        let _ = writeln!(
            out,
            "reordered: {}  pairs_examined: {}  suggested_partitions: {}",
            self.reordered, self.pairs_examined, self.suggested_partitions
        );
        let _ = writeln!(out, "plan_cache: {}", self.cache);
        let _ = writeln!(out, "{}", self.reduction);
        out
    }
    /// Run the chosen plan sequentially (one thread).
    ///
    /// # Errors
    /// [`ExecError`] for unknown tables, missing indexes, or
    /// unresolved attributes.
    pub fn run(&self, storage: &Storage, stats: &mut ExecStats) -> Result<Relation, ExecError> {
        fro_exec::execute(&self.plan, storage, stats)
    }

    /// Run the chosen plan under an explicit [`ExecConfig`] — the
    /// morsel-driven parallel executor. Results (rows *and* row order)
    /// are identical at any thread count.
    ///
    /// # Errors
    /// Same failure modes as [`Optimized::run`].
    pub fn run_with(
        &self,
        storage: &Storage,
        stats: &mut ExecStats,
        cfg: &ExecConfig,
    ) -> Result<Relation, ExecError> {
        fro_exec::execute_with(&self.plan, storage, stats, cfg)
    }
}

/// Optimize a query: reorder freely when Theorem 1 allows, otherwise
/// keep the user's association. Runs the semijoin reducer under
/// [`ReducePolicy::Auto`]; use [`optimize_with_reduce`] to force it.
///
/// # Errors
/// [`OptError`] for unsupported operators or oversized DP inputs.
pub fn optimize(q: &Query, catalog: &Catalog, policy: Policy) -> Result<Optimized, OptError> {
    optimize_with_reduce(q, catalog, policy, ReducePolicy::Auto)
}

/// [`optimize`] with an explicit [`ReducePolicy`]. The reducer runs as
/// a post-pass over the DP/greedy/fallback plan — after the plan cache
/// (cached plans stay plain), never altering join order or shape, only
/// wrapping operands in [`PhysPlan::SemiReduce`] where the wrap is
/// sound and (under `Auto`) estimated to pay. When a wrap is applied,
/// `est_cost`/`est_rows` reflect the reduced plan; the plain
/// estimate is preserved in [`Optimized::reduction`].
///
/// # Errors
/// Same failure modes as [`optimize`].
pub fn optimize_with_reduce(
    q: &Query,
    catalog: &Catalog,
    policy: Policy,
    reduce_policy: ReducePolicy,
) -> Result<Optimized, OptError> {
    let mut opt = optimize_plain(q, catalog, policy)?;
    let (plan, report) = reduce_plan(
        &opt.plan,
        catalog,
        reduce_policy,
        opt.analysis.graph.as_ref(),
    );
    if !report.applied.is_empty() {
        let est = estimate_plan(&plan, catalog);
        opt.plan = plan;
        opt.est_cost = est.cost;
        opt.est_rows = est.rows;
    }
    opt.reduction = report;
    Ok(opt)
}

fn optimize_plain(q: &Query, catalog: &Catalog, policy: Policy) -> Result<Optimized, OptError> {
    let analysis = analyze(q, policy);
    // Partition hint from catalog statistics: the build side of any
    // join in any ordering is bounded by the largest base relation, so
    // size partitions for that worst case. Purely advisory — every
    // partition count yields bit-identical results.
    let suggested_partitions = fro_exec::suggest_partitions(
        q.rels()
            .iter()
            .map(|r| catalog.rows_of(r))
            .max()
            .unwrap_or(0),
    );
    if analysis.is_freely_reorderable() {
        if let Some(g) = &analysis.graph {
            // One signature computation covers both the DP and the
            // greedy fallback: they share the cache's key space.
            let cctx = CacheCtx::for_graph(g, policy);
            match dp_optimize_with(g, catalog, Some(&cctx)) {
                Ok(r) => {
                    return Ok(Optimized {
                        plan: r.plan,
                        est_cost: r.cost,
                        est_rows: r.rows,
                        analysis,
                        reordered: true,
                        pairs_examined: r.pairs_examined,
                        cache: r.cache,
                        suggested_partitions,
                        reduction: ReductionReport::default(),
                    })
                }
                // Too large for exhaustive DP: reorder greedily.
                Err(OptError::Unsupported(_)) => {
                    if let Ok(r) = greedy::greedy_optimize_with(g, catalog, Some(&cctx)) {
                        return Ok(Optimized {
                            plan: r.plan,
                            est_cost: r.cost,
                            est_rows: r.rows,
                            analysis,
                            reordered: true,
                            pairs_examined: r.merges_examined,
                            cache: r.cache,
                            suggested_partitions,
                            reduction: ReductionReport::default(),
                        });
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
    let plan = lower(q, catalog)?;
    let est = estimate_plan(&plan, catalog);
    Ok(Optimized {
        plan,
        est_cost: est.cost,
        est_rows: est.rows,
        analysis,
        reordered: false,
        pairs_examined: 0,
        cache: CacheStats::default(),
        suggested_partitions,
        reduction: ReductionReport::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::{Attr, Pred, Schema};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, attr, rows) in [
            ("R1", "k1", 1u64),
            ("R2", "k2", 1_000_000),
            ("R3", "k3", 1_000_000),
        ] {
            cat.add_table(name, Arc::new(Schema::of_relation(name, &[attr])), rows);
            cat.set_distinct(&Attr::new(name, attr), rows);
            cat.add_index(name, &[Attr::new(name, attr)]);
        }
        cat
    }

    fn p(a: &str, b: &str) -> Pred {
        Pred::eq_attr(a, b)
    }

    #[test]
    fn reorderable_query_is_reordered() {
        // The *bad* association: R1 − (R2 → R3). The optimizer must
        // reorder to drive from R1.
        let q = Query::rel("R1").join(
            Query::rel("R2").outerjoin(Query::rel("R3"), p("R2.k2", "R3.k3")),
            p("R1.k1", "R2.k2"),
        );
        let cat = catalog();
        let out = optimize(&q, &cat, Policy::Paper).unwrap();
        assert!(out.reordered);
        assert!(out.est_cost < 100.0, "cost {}", out.est_cost);
        assert!(out.plan.explain().contains("Scan R1"));
    }

    #[test]
    fn non_reorderable_query_keeps_association() {
        // Example 2: R1 → (R2 − R3). Syntactic fallback.
        let q = Query::rel("R1").outerjoin(
            Query::rel("R2").join(Query::rel("R3"), p("R2.k2", "R3.k3")),
            p("R1.k1", "R2.k2"),
        );
        let cat = catalog();
        let out = optimize(&q, &cat, Policy::Paper).unwrap();
        assert!(!out.reordered);
        assert!(!out.analysis.is_freely_reorderable());
        // Preserved side (R1) drives the outer join at the root.
        let text = out.plan.explain();
        assert!(text.contains("left-outer"), "{text}");
    }

    #[test]
    fn syntactic_and_dp_agree_on_results() {
        // Execute both plans and compare with the reference evaluator.
        use fro_algebra::{Database, Relation};
        use fro_exec::{execute, ExecStats, Storage};

        let mut db = Database::new();
        db.insert(Relation::from_ints("R1", &["k1"], &[&[1], &[5]]));
        db.insert(Relation::from_ints("R2", &["k2"], &[&[1], &[2], &[5]]));
        db.insert(Relation::from_ints("R3", &["k3"], &[&[2], &[5]]));
        let mut storage = Storage::from_database(&db);
        for (t, a) in [("R1", "R1.k1"), ("R2", "R2.k2"), ("R3", "R3.k3")] {
            storage.create_index(t, &[Attr::parse(a)]);
        }
        let cat = Catalog::from_storage(&storage);

        let q = Query::rel("R1").join(
            Query::rel("R2").outerjoin(Query::rel("R3"), p("R2.k2", "R3.k3")),
            p("R1.k1", "R2.k2"),
        );
        let expect = q.eval(&db).unwrap();

        let dp = optimize(&q, &cat, Policy::Paper).unwrap();
        assert!(dp.reordered);
        let mut st = ExecStats::new();
        let got = execute(&dp.plan, &storage, &mut st).unwrap();
        assert!(got.set_eq(&expect), "plan:\n{}", dp.plan);

        let syn = lower(&q, &cat).unwrap();
        let mut st2 = ExecStats::new();
        let got2 = execute(&syn, &storage, &mut st2).unwrap();
        assert!(got2.set_eq(&expect));
    }

    #[test]
    fn run_with_parallel_config_matches_sequential_run() {
        use fro_algebra::{Database, Relation};
        use fro_exec::{ExecConfig, ExecStats, Storage};

        let mut db = Database::new();
        db.insert(Relation::from_ints("R1", &["k1"], &[&[1], &[5]]));
        db.insert(Relation::from_ints("R2", &["k2"], &[&[1], &[2], &[5]]));
        db.insert(Relation::from_ints("R3", &["k3"], &[&[2], &[5]]));
        let mut storage = Storage::from_database(&db);
        for (t, a) in [("R1", "R1.k1"), ("R2", "R2.k2"), ("R3", "R3.k3")] {
            storage.create_index(t, &[Attr::parse(a)]);
        }
        let cat = Catalog::from_storage(&storage);
        let q = Query::rel("R1").join(
            Query::rel("R2").outerjoin(Query::rel("R3"), p("R2.k2", "R3.k3")),
            p("R1.k1", "R2.k2"),
        );
        let opt = optimize(&q, &cat, Policy::Paper).unwrap();
        let mut seq_st = ExecStats::new();
        let seq = opt.run(&storage, &mut seq_st).unwrap();
        let mut par_st = ExecStats::new();
        let cfg = ExecConfig::with_threads(4).morsel_rows(1);
        let par = opt.run_with(&storage, &mut par_st, &cfg).unwrap();
        assert_eq!(seq.rows(), par.rows());
        assert_eq!(seq_st, par_st);
    }

    #[test]
    fn estimates_populated_in_fallback() {
        let q = Query::rel("R1").outerjoin(
            Query::rel("R2").join(Query::rel("R3"), p("R2.k2", "R3.k3")),
            p("R1.k1", "R2.k2"),
        );
        let out = optimize(&q, &catalog(), Policy::Paper).unwrap();
        assert!(out.est_cost > 0.0);
        assert!(out.est_rows >= 0.0);
    }

    #[test]
    fn union_errors() {
        let q = Query::rel("R1").union(Query::rel("R2"));
        assert!(matches!(
            optimize(&q, &catalog(), Policy::Paper),
            Err(OptError::Unsupported(_))
        ));
    }
}
