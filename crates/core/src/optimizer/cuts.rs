//! Shared cut machinery: the interned, bitset form of predicate
//! splitting and cut classification used by every reordering path.
//!
//! The paper's DP (§6.1) enumerates 2-partitions — *cuts* — of
//! connected node sets. Everything an optimizer wants to know about a
//! cut (its crossing edges, the operator it admits, the equi-key
//! pairs, the residual predicate, the combined selectivity, whether an
//! index join applies) is a function of the unordered pair of
//! [`RelSet`]s alone. This module resolves every string exactly once —
//! attribute names to `(relation, column)` at [`CutCtx`] construction,
//! relation names to dense node ids in [`RelMap`] — and memoizes the
//! per-cut answers so the DP and the greedy reorderer never repeat the
//! work, let alone re-derive it from strings.

use super::dp::Entry;
use super::stats::Catalog;
use fro_algebra::{Attr, CmpOp, Pred, RelId, RelSet, Scalar};
use fro_exec::{JoinKind, PhysPlan};
use fro_graph::{EdgeKind, QueryGraph};
use std::collections::HashMap;

/// Per-query mapping between relation names and the query's dense
/// relation ids. A query graph's node ids *are* those dense ids, so
/// for graph-driven optimization this is just the node list — plus the
/// catalog-level [`RelId`] of each node, resolved once.
#[derive(Debug, Clone)]
pub struct RelMap {
    names: Vec<String>,
    ids: HashMap<String, usize>,
    cat_ids: Vec<Option<RelId>>,
}

impl RelMap {
    /// Build from a query graph: node `i` is relation id `i`.
    #[must_use]
    pub fn from_graph(g: &QueryGraph, catalog: &Catalog) -> RelMap {
        RelMap::from_rels(g.node_names().iter().cloned(), catalog)
    }

    /// Build from an ordered list of distinct relation names.
    #[must_use]
    pub fn from_rels(rels: impl IntoIterator<Item = String>, catalog: &Catalog) -> RelMap {
        let names: Vec<String> = rels.into_iter().collect();
        let ids = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let cat_ids = names.iter().map(|n| catalog.rel_id(n)).collect();
        RelMap {
            names,
            ids,
            cat_ids,
        }
    }

    /// Number of relations in the query.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the query references no relations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The dense id of a relation name.
    #[must_use]
    pub fn node_of(&self, rel: &str) -> Option<usize> {
        self.ids.get(rel).copied()
    }

    /// The name of a dense id (for rendering and plan leaves).
    #[must_use]
    pub fn name_of(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// The catalog-level [`RelId`] of a node, when the catalog knows
    /// the table.
    #[must_use]
    pub fn cat_id(&self, i: usize) -> Option<RelId> {
        self.cat_ids[i]
    }
}

/// Split a predicate into equi-join key pairs `(left_attr,
/// right_attr)` across the given relation sets, plus the residual
/// predicate of everything else. This is the canonical, bitset form:
/// side membership is a single bit test per conjunct attribute. (The
/// name-keyed `BTreeSet<String>` variant survives crate-privately as a
/// compatibility shim and `testing-oracles` oracle.)
#[must_use]
pub fn split_equi(
    pred: &Pred,
    left: RelSet,
    right: RelSet,
    rels: &RelMap,
) -> (Vec<(Attr, Attr)>, Pred) {
    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    for conj in pred.conjuncts() {
        if let Pred::Cmp {
            op: CmpOp::Eq,
            lhs: Scalar::Attr(a),
            rhs: Scalar::Attr(b),
        } = &conj
        {
            let an = rels.node_of(a.rel());
            let bn = rels.node_of(b.rel());
            if let (Some(an), Some(bn)) = (an, bn) {
                if left.contains(an) && right.contains(bn) {
                    pairs.push((a.clone(), b.clone()));
                    continue;
                }
                if left.contains(bn) && right.contains(an) {
                    pairs.push((b.clone(), a.clone()));
                    continue;
                }
            }
        }
        residual.push(conj);
    }
    (pairs, Pred::from_conjuncts(residual))
}

/// One equi conjunct `a = b`, fully resolved: node ids for side tests,
/// catalog column offsets for index checks, and its selectivity — all
/// computed once at [`CutCtx`] construction.
#[derive(Debug, Clone)]
struct EqConjunct {
    a: Attr,
    b: Attr,
    a_node: usize,
    b_node: usize,
    a_col: Option<u32>,
    b_col: Option<u32>,
    /// `1 / max(distinct(a), distinct(b))`.
    sel: f64,
}

/// One conjunct of an edge predicate with its precomputed resolution.
#[derive(Debug, Clone)]
struct Conjunct {
    pred: Pred,
    eq: Option<EqConjunct>,
}

/// Which operator (if any) a cut admits, with the outerjoin's probe
/// side expressed relative to the cut's canonical `lo` side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CutClass {
    /// At least one crossing edge, all of them join edges.
    Joins,
    /// Exactly one crossing edge, an outerjoin whose preserved side is
    /// the cut's `lo` half.
    OuterjoinProbeLo,
    /// Exactly one crossing edge, an outerjoin whose preserved side is
    /// the cut's `hi` half.
    OuterjoinProbeHi,
    /// Cartesian (no crossing edge) or mixed — no single operator.
    None,
}

/// Everything the optimizer needs to know about one unordered cut,
/// computed once and memoized. `lo` is the side whose bitset compares
/// smaller; key pairs store the lo-side attribute first.
#[derive(Debug, Clone)]
pub(crate) struct CutInfo {
    pub(crate) class: CutClass,
    /// Equi key pairs, lo-side attribute first, in conjunct order.
    pairs_lo: Vec<(Attr, Attr)>,
    /// Non-equi conjuncts, reassembled.
    residual: Pred,
    /// The full cut predicate (for nested-loop joins), rebuilt from
    /// the crossing edges' predicates in edge order.
    full_pred: Pred,
    /// Product of `1/max(distinct)` over the key pairs.
    key_sel: f64,
    /// Selectivity of the residual predicate.
    residual_sel: f64,
    /// Whether the lo side is a single base table with an index on
    /// exactly its key columns (the index-join precondition).
    index_lo: bool,
    /// Same for the hi side.
    index_hi: bool,
}

impl CutInfo {
    /// Key attributes as `(probe, build)` vectors (cloned only when a
    /// plan is built).
    fn keys(&self, probe_is_lo: bool) -> (Vec<Attr>, Vec<Attr>) {
        let mut probe = Vec::with_capacity(self.pairs_lo.len());
        let mut build = Vec::with_capacity(self.pairs_lo.len());
        for (lo, hi) in &self.pairs_lo {
            if probe_is_lo {
                probe.push(lo.clone());
                build.push(hi.clone());
            } else {
                probe.push(hi.clone());
                build.push(lo.clone());
            }
        }
        (probe, build)
    }

    fn build_has_index(&self, probe_is_lo: bool) -> bool {
        if probe_is_lo {
            self.index_hi
        } else {
            self.index_lo
        }
    }
}

/// The physical shape of a join candidate — costed arithmetically
/// first; a [`PhysPlan`] is built only for the winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Shape {
    Nl,
    Index,
    Hash,
    Merge,
}

/// A costed join candidate over a cut, before any plan is built.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub(crate) cost: f64,
    pub(crate) rows: f64,
    pub(crate) shape: Shape,
    pub(crate) kind: JoinKind,
    /// Whether the probe side is the cut's `lo` half.
    pub(crate) probe_is_lo: bool,
}

/// Per-graph cut context: the resolved conjuncts of every edge plus
/// the memoized per-cut answers. Build one per optimization run and
/// keep it across rounds (the greedy reorderer re-examines the same
/// component pairs every round; the cache makes those free).
pub(crate) struct CutCtx<'a> {
    g: &'a QueryGraph,
    catalog: &'a Catalog,
    relmap: RelMap,
    /// Resolved conjuncts per edge, same index as `g.edges()`.
    conjuncts: Vec<Vec<Conjunct>>,
    cache: HashMap<(u64, u64), CutInfo>,
}

impl<'a> CutCtx<'a> {
    /// Resolve every edge conjunct once: attribute → node id, catalog
    /// column offset, and equality selectivity.
    pub(crate) fn new(g: &'a QueryGraph, catalog: &'a Catalog) -> CutCtx<'a> {
        let relmap = RelMap::from_graph(g, catalog);
        let conjuncts = g
            .edges()
            .iter()
            .map(|e| {
                e.pred()
                    .conjuncts()
                    .into_iter()
                    .map(|conj| {
                        let eq = resolve_eq(&conj, &relmap, catalog);
                        Conjunct { pred: conj, eq }
                    })
                    .collect()
            })
            .collect();
        CutCtx {
            g,
            catalog,
            relmap,
            conjuncts,
            cache: HashMap::new(),
        }
    }

    /// The memoized cut record for the unordered partition
    /// `{left, right}`.
    pub(crate) fn info(&mut self, left: RelSet, right: RelSet) -> &CutInfo {
        let (lo, hi) = if left.bits() <= right.bits() {
            (left, right)
        } else {
            (right, left)
        };
        let key = (lo.bits(), hi.bits());
        if !self.cache.contains_key(&key) {
            let info = self.compute(lo, hi);
            self.cache.insert(key, info);
        }
        &self.cache[&key]
    }

    fn compute(&self, lo: RelSet, hi: RelSet) -> CutInfo {
        // Crossing edges and the operator classification (§1.3: cuts
        // without edges are Cartesian products and excluded; an
        // outerjoin cut must cross exactly its one directed edge).
        let mut crossing: Vec<usize> = Vec::new();
        let mut oj_count = 0usize;
        let mut oj_probe_lo = false;
        for (i, e) in self.g.edges().iter().enumerate() {
            let (a, b) = (e.a(), e.b());
            let crosses = (lo.contains(a) && hi.contains(b)) || (lo.contains(b) && hi.contains(a));
            if !crosses {
                continue;
            }
            crossing.push(i);
            if e.kind() == EdgeKind::OuterJoin {
                oj_count += 1;
                // `a` is the preserved endpoint of a directed edge.
                oj_probe_lo = lo.contains(a);
            }
        }
        let class = match (oj_count, crossing.len()) {
            (_, 0) => CutClass::None,
            (0, _) => CutClass::Joins,
            (1, 1) => {
                if oj_probe_lo {
                    CutClass::OuterjoinProbeLo
                } else {
                    CutClass::OuterjoinProbeHi
                }
            }
            _ => CutClass::None,
        };

        let mut pairs_lo = Vec::new();
        let mut lo_cols: Option<Vec<u32>> = Some(Vec::new());
        let mut hi_cols: Option<Vec<u32>> = Some(Vec::new());
        let mut residual = Vec::new();
        let mut key_sel = 1.0f64;
        let push_col = |side: &mut Option<Vec<u32>>, col: Option<u32>| {
            if let Some(cols) = side {
                match col {
                    Some(c) => cols.push(c),
                    None => *side = None,
                }
            }
        };
        for &ei in &crossing {
            for c in &self.conjuncts[ei] {
                let eq = c.eq.as_ref().filter(|eq| {
                    (lo.contains(eq.a_node) && hi.contains(eq.b_node))
                        || (lo.contains(eq.b_node) && hi.contains(eq.a_node))
                });
                match eq {
                    Some(eq) => {
                        if lo.contains(eq.a_node) {
                            pairs_lo.push((eq.a.clone(), eq.b.clone()));
                            push_col(&mut lo_cols, eq.a_col);
                            push_col(&mut hi_cols, eq.b_col);
                        } else {
                            pairs_lo.push((eq.b.clone(), eq.a.clone()));
                            push_col(&mut lo_cols, eq.b_col);
                            push_col(&mut hi_cols, eq.a_col);
                        }
                        key_sel *= eq.sel;
                    }
                    None => residual.push(c.pred.clone()),
                }
            }
        }
        let residual = Pred::from_conjuncts(residual);
        let residual_sel = self.catalog.selectivity(&residual);
        // Rebuild the full predicate from the crossing *edge*
        // predicates (not flattened conjuncts) so nested-loop plans
        // carry the same predicate structure the edges do.
        let full_pred =
            Pred::from_conjuncts(crossing.iter().map(|&i| self.g.edges()[i].pred().clone()));

        let has_index = |side: RelSet, cols: Option<Vec<u32>>| -> bool {
            if pairs_lo.is_empty() {
                return false;
            }
            let (Some(node), Some(mut cols)) = (single_node(side), cols) else {
                return false;
            };
            let Some(rid) = self.relmap.cat_id(node) else {
                return false;
            };
            cols.sort_unstable();
            self.catalog.has_index_cols(rid, &cols)
        };
        let index_lo = has_index(lo, lo_cols);
        let index_hi = has_index(hi, hi_cols);

        CutInfo {
            class,
            pairs_lo,
            residual,
            full_pred,
            key_sel,
            residual_sel,
            index_lo,
            index_hi,
        }
    }
}

fn single_node(s: RelSet) -> Option<usize> {
    if s.len() == 1 {
        s.lowest()
    } else {
        None
    }
}

fn resolve_eq(conj: &Pred, relmap: &RelMap, catalog: &Catalog) -> Option<EqConjunct> {
    let Pred::Cmp {
        op: CmpOp::Eq,
        lhs: Scalar::Attr(a),
        rhs: Scalar::Attr(b),
    } = conj
    else {
        return None;
    };
    let a_node = relmap.node_of(a.rel())?;
    let b_node = relmap.node_of(b.rel())?;
    let col_of = |attr: &Attr| {
        catalog
            .attr_id(attr)
            .map(|id| catalog.interner().attr_col(id))
    };
    let sel = 1.0 / (catalog.distinct_of(a).max(catalog.distinct_of(b)).max(1) as f64);
    Some(EqConjunct {
        a: a.clone(),
        b: b.clone(),
        a_node,
        b_node,
        a_col: col_of(a),
        b_col: col_of(b),
        sel,
    })
}

/// The cheapest candidate for `probe ⊙ build` over a cut — pure
/// arithmetic, no plan is built. Candidate order (index, hash, merge,
/// with strict improvement) matches the historical enumeration order
/// so ties resolve identically.
pub(crate) fn best_shape(
    info: &CutInfo,
    probe: &Entry,
    build: &Entry,
    probe_is_lo: bool,
    kind: JoinKind,
) -> Candidate {
    use super::cost::join_rows;
    let sel = info.key_sel * info.residual_sel;
    let rows = join_rows(kind, probe.rows, build.rows, sel);
    let mk = |shape: Shape, cost: f64| Candidate {
        cost,
        rows,
        shape,
        kind,
        probe_is_lo,
    };
    if info.pairs_lo.is_empty() {
        return mk(
            Shape::Nl,
            probe.cost + build.cost + probe.rows * build.rows + rows,
        );
    }
    let mut best: Option<Candidate> = None;
    let mut consider = |cand: Candidate| {
        if best.as_ref().is_none_or(|b| cand.cost < b.cost) {
            best = Some(cand);
        }
    };
    // Index nested-loop: build side must be a bare indexed base table;
    // its scan cost is *not* paid.
    if build.base.is_some() && info.build_has_index(probe_is_lo) {
        let retrieved = probe.rows * build.rows * info.key_sel;
        consider(mk(Shape::Index, probe.cost + probe.rows + retrieved + rows));
    }
    consider(mk(
        Shape::Hash,
        probe.cost + build.cost + build.rows + probe.rows + rows,
    ));
    // Sort-merge join: competitive when inputs are large and the
    // output small (no hash table residency).
    let sort = |n: f64| n * (n.max(2.0)).log2();
    consider(mk(
        Shape::Merge,
        probe.cost + build.cost + sort(probe.rows) + sort(build.rows) + rows,
    ));
    best.expect("at least hash and merge were considered")
}

/// Build the physical plan for a winning candidate (the only place a
/// cut clones its sub-plans).
pub(crate) fn materialize(
    cand: Candidate,
    info: &CutInfo,
    probe: &Entry,
    build: &Entry,
    catalog: &Catalog,
) -> Entry {
    let plan = match cand.shape {
        Shape::Nl => PhysPlan::NlJoin {
            kind: cand.kind,
            left: Box::new(probe.plan.clone()),
            right: Box::new(build.plan.clone()),
            pred: info.full_pred.clone(),
        },
        Shape::Index => {
            let rid = build
                .base
                .expect("index join requires a base-table build side");
            let (outer_keys, inner_keys) = info.keys(cand.probe_is_lo);
            PhysPlan::IndexJoin {
                kind: cand.kind,
                outer: Box::new(probe.plan.clone()),
                inner: catalog.interner().rel_name(rid).to_owned(),
                outer_keys,
                inner_keys,
                residual: info.residual.clone(),
            }
        }
        Shape::Hash => {
            let (probe_keys, build_keys) = info.keys(cand.probe_is_lo);
            PhysPlan::HashJoin {
                kind: cand.kind,
                probe: Box::new(probe.plan.clone()),
                build: Box::new(build.plan.clone()),
                probe_keys,
                build_keys,
                residual: info.residual.clone(),
            }
        }
        Shape::Merge => {
            let (left_keys, right_keys) = info.keys(cand.probe_is_lo);
            PhysPlan::MergeJoin {
                kind: cand.kind,
                left: Box::new(probe.plan.clone()),
                right: Box::new(build.plan.clone()),
                left_keys,
                right_keys,
                residual: info.residual.clone(),
            }
        }
    };
    Entry {
        plan,
        cost: cand.cost,
        rows: cand.rows,
        base: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        use fro_algebra::Schema;
        use std::sync::Arc;
        let mut cat = Catalog::new();
        for name in ["A", "B", "C"] {
            cat.add_table(name, Arc::new(Schema::of_relation(name, &["k", "v"])), 100);
            cat.add_index(name, &[Attr::new(name, "k")]);
        }
        cat
    }

    fn chain3() -> QueryGraph {
        let mut g = QueryGraph::new(vec!["A".into(), "B".into(), "C".into()]);
        g.add_join_edge(
            0,
            1,
            Pred::eq_attr("A.k", "B.k").and(Pred::cmp_attr("A.v", CmpOp::Lt, "B.v")),
        )
        .unwrap();
        g.add_outerjoin_edge(1, 2, Pred::eq_attr("B.k", "C.k"))
            .unwrap();
        g
    }

    #[test]
    fn relmap_resolves_names_once() {
        let cat = catalog();
        let g = chain3();
        let m = RelMap::from_graph(&g, &cat);
        assert_eq!(m.len(), 3);
        assert_eq!(m.node_of("B"), Some(1));
        assert_eq!(m.node_of("missing"), None);
        assert_eq!(m.name_of(2), "C");
        assert!(m.cat_id(0).is_some());
        let empty = RelMap::from_rels(std::iter::empty(), &cat);
        assert!(empty.is_empty());
    }

    #[test]
    fn split_equi_matches_name_keyed_shim() {
        use super::super::lower::split_equi_by_name_impl;
        use std::collections::BTreeSet;
        let cat = catalog();
        let m = RelMap::from_rels(["A".to_owned(), "B".to_owned()], &cat);
        let pred = Pred::eq_attr("A.k", "B.k")
            .and(Pred::cmp_attr("A.k", CmpOp::Lt, "B.k"))
            .and(Pred::eq_attr("B.v", "A.v"));
        let left = RelSet::singleton(0);
        let right = RelSet::singleton(1);
        let (pairs, residual) = split_equi(&pred, left, right, &m);
        let l: BTreeSet<String> = ["A".to_owned()].into();
        let r: BTreeSet<String> = ["B".to_owned()].into();
        let (pairs_n, residual_n) = split_equi_by_name_impl(&pred, &l, &r);
        assert_eq!(pairs, pairs_n);
        assert_eq!(residual, residual_n);
        // Pairs are normalized (left attr first).
        assert!(pairs.iter().all(|(a, _)| a.rel() == "A"));
    }

    #[test]
    fn cut_info_classifies_and_memoizes() {
        let cat = catalog();
        let g = chain3();
        let mut ctx = CutCtx::new(&g, &cat);
        let a = RelSet::singleton(0);
        let bc = RelSet::empty().with(1).with(2);
        assert_eq!(ctx.info(a, bc).class, CutClass::Joins);
        // Same unordered cut from the other orientation: cache hit.
        assert_eq!(ctx.info(bc, a).class, CutClass::Joins);
        assert_eq!(ctx.cache.len(), 1);
        let ab = RelSet::empty().with(0).with(1);
        let c = RelSet::singleton(2);
        assert!(matches!(
            ctx.info(ab, c).class,
            CutClass::OuterjoinProbeHi | CutClass::OuterjoinProbeLo
        ));
        // {B} | {A,C} crosses both edges: no single operator.
        let b = RelSet::singleton(1);
        let ac = RelSet::empty().with(0).with(2);
        assert_eq!(ctx.info(b, ac).class, CutClass::None);
    }

    #[test]
    fn index_precondition_requires_singleton_indexed_side() {
        let cat = catalog();
        let g = chain3();
        let mut ctx = CutCtx::new(&g, &cat);
        let a = RelSet::singleton(0);
        let b = RelSet::singleton(1);
        // A −(k eq, v theta)− B: both sides singleton with an index on
        // k, and the key-column resolution must ignore the residual.
        let info = ctx.info(a, b).clone();
        assert!(info.index_lo && info.index_hi);
        assert_eq!(info.pairs_lo.len(), 1);
        assert_eq!(info.residual.conjuncts().len(), 1);
    }
}
