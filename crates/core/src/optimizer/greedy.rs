//! A greedy (GOO-style) reorderer for query graphs too large for the
//! exhaustive DP.
//!
//! Start with one component per relation; repeatedly merge the pair of
//! connected components whose cut is implementable (all-join crossing
//! edges, or a single outerjoin edge respecting its direction) and
//! whose merged plan is cheapest; stop when one component remains.
//! `O(n³)` pair evaluations instead of `3ⁿ` csg–cmp pairs — the same
//! "fill in Join or else Outerjoin" rule, applied greedily.
//!
//! Cut classification, key-pair extraction, and selectivities come
//! from one [`CutCtx`] held across merge rounds: a cut's properties
//! depend only on the two node sets, so the memo keeps paying off as
//! the same component pairs are re-examined round after round.

use super::cuts::{best_shape, materialize, Candidate, CutClass, CutCtx};
use super::dp::Entry;
use super::plancache::{CacheCtx, CacheStats, CachedEntry};
use super::stats::Catalog;
use super::OptError;
use fro_algebra::RelSet;
use fro_exec::{JoinKind, PhysPlan};
use fro_graph::QueryGraph;
use std::sync::Arc;

/// The plan chosen by [`greedy_optimize`].
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// The chosen physical plan.
    pub plan: PhysPlan,
    /// Its estimated cost (tuples touched).
    pub cost: f64,
    /// Its estimated output cardinality.
    pub rows: f64,
    /// Number of candidate merges evaluated. Zero on a full cache hit.
    pub merges_examined: u64,
    /// Plan-cache accounting for this optimization.
    pub cache: CacheStats,
}

/// Greedily reorder a freely-reorderable query graph, without
/// consulting the plan cache.
///
/// # Errors
/// [`OptError::Disconnected`] when no implementing tree exists;
/// [`OptError::Unsupported`] when the merge process wedges (a cut mix
/// with no implementable pair — cannot happen on nice graphs, where
/// the syntactic tree itself witnesses a full merge order).
pub fn greedy_optimize(g: &QueryGraph, catalog: &Catalog) -> Result<GreedyResult, OptError> {
    greedy_optimize_with(g, catalog, None)
}

/// [`greedy_optimize`], threading the catalog's plan cache: a hit on
/// the full relation set short-circuits the merge loop entirely, and
/// every merged component's winner is inserted for future queries over
/// the same graph (the DP can reuse them too — the key space is
/// shared).
///
/// # Errors
/// Same failure modes as [`greedy_optimize`].
pub fn greedy_optimize_with(
    g: &QueryGraph,
    catalog: &Catalog,
    cache: Option<&CacheCtx>,
) -> Result<GreedyResult, OptError> {
    let n = g.n_nodes();
    if !g.connected_in(RelSet::full(n)) {
        return Err(OptError::Disconnected);
    }
    // Effective epoch: structural epoch + row-content versions of the
    // relations this graph reads, so a row append elsewhere does not
    // evict this graph's plans.
    let epoch = catalog.epoch_for_graph(g);
    let pc = catalog.plan_cache();
    let mut cstats = CacheStats::default();
    if let Some(cctx) = cache {
        if let Some(hit) = pc.lookup(cctx, RelSet::full(n), epoch, &mut cstats) {
            return Ok(GreedyResult {
                plan: hit.plan.clone(),
                cost: hit.cost,
                rows: hit.rows,
                merges_examined: 0,
                cache: cstats,
            });
        }
    }
    let mut ctx = CutCtx::new(g, catalog);
    let mut components: Vec<(RelSet, Entry)> = (0..n)
        .map(|i| {
            let name = g.node_name(i);
            let rows = catalog.rows_of(name) as f64;
            (
                RelSet::singleton(i),
                Entry {
                    plan: PhysPlan::scan(name.to_owned()),
                    cost: rows,
                    rows,
                    base: catalog.rel_id(name),
                },
            )
        })
        .collect();

    let mut merges_examined = 0u64;
    while components.len() > 1 {
        // (i, j, winning candidate, probe-is-component-i).
        let mut best: Option<(usize, usize, Candidate, bool)> = None;
        for i in 0..components.len() {
            for j in i + 1..components.len() {
                let (si, ei) = &components[i];
                let (sj, ej) = &components[j];
                let lo_is_i = si.bits() <= sj.bits();
                let info = ctx.info(*si, *sj);
                let mut consider = |cand: Candidate, probe_is_i: bool| {
                    if best.as_ref().is_none_or(|(_, _, b, _)| cand.cost < b.cost) {
                        best = Some((i, j, cand, probe_is_i));
                    }
                };
                match info.class {
                    CutClass::None => {}
                    CutClass::Joins => {
                        merges_examined += 1;
                        for (pe, be, probe_is_i) in [(ei, ej, true), (ej, ei, false)] {
                            let probe_is_lo = probe_is_i == lo_is_i;
                            let cand = best_shape(info, pe, be, probe_is_lo, JoinKind::Inner);
                            consider(cand, probe_is_i);
                        }
                    }
                    CutClass::OuterjoinProbeLo | CutClass::OuterjoinProbeHi => {
                        merges_examined += 1;
                        let probe_is_lo = info.class == CutClass::OuterjoinProbeLo;
                        let probe_is_i = probe_is_lo == lo_is_i;
                        let (pe, be) = if probe_is_i { (ei, ej) } else { (ej, ei) };
                        let cand = best_shape(info, pe, be, probe_is_lo, JoinKind::LeftOuter);
                        consider(cand, probe_is_i);
                    }
                }
            }
        }
        let Some((i, j, cand, probe_is_i)) = best else {
            return Err(OptError::Unsupported(
                "greedy merge wedged: no implementable component pair".into(),
            ));
        };
        let entry = {
            let (si, ei) = &components[i];
            let (sj, ej) = &components[j];
            let info = ctx.info(*si, *sj);
            let (pe, be) = if probe_is_i { (ei, ej) } else { (ej, ei) };
            materialize(cand, info, pe, be, catalog)
        };
        let (sj, _) = components.swap_remove(j); // j > i, safe order
        let (si, _) = components.swap_remove(i);
        let merged = si.union(sj);
        if let Some(cctx) = cache {
            pc.insert(
                cctx,
                merged,
                Arc::new(CachedEntry::from_entry(&entry, epoch)),
                &mut cstats,
            );
        }
        components.push((merged, entry));
    }

    let (_, e) = components.pop().expect("one component remains");
    Ok(GreedyResult {
        plan: e.plan,
        cost: e.cost,
        rows: e.rows,
        merges_examined,
        cache: cstats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::{Attr, Pred, Schema};
    use std::sync::Arc;

    fn chain_graph(n: usize) -> QueryGraph {
        let mut g = QueryGraph::new((0..n).map(|i| format!("R{i}")).collect());
        for i in 0..n - 1 {
            g.add_join_edge(
                i,
                i + 1,
                Pred::eq_attr(&format!("R{i}.k"), &format!("R{}.k", i + 1)),
            )
            .unwrap();
        }
        g
    }

    fn catalog(n: usize, tiny: usize) -> Catalog {
        let mut cat = Catalog::new();
        for i in 0..n {
            let name = format!("R{i}");
            let rows = if i == tiny { 2 } else { 10_000 };
            cat.add_table(&name, Arc::new(Schema::of_relation(&name, &["k"])), rows);
            cat.set_distinct(&Attr::new(&name, "k"), rows);
            cat.add_index(&name, &[Attr::new(&name, "k")]);
        }
        cat
    }

    #[test]
    fn greedy_handles_30_relations() {
        let g = chain_graph(30);
        let cat = catalog(30, 0);
        let r = greedy_optimize(&g, &cat).expect("greedy succeeds");
        assert!(r.merges_examined > 0);
        // Drives from the tiny head with index joins: near-constant
        // cost, not 30 × 10_000 scans.
        assert!(r.cost < 50_000.0, "cost {}", r.cost);
    }

    #[test]
    fn greedy_close_to_dp_on_small_graphs() {
        for tiny in [0usize, 3, 7] {
            let g = chain_graph(8);
            let cat = catalog(8, tiny);
            let dp = super::super::dp::dp_optimize(&g, &cat).unwrap();
            let gr = greedy_optimize(&g, &cat).unwrap();
            assert!(
                gr.cost <= dp.cost * 10.0 + 1.0,
                "greedy {} vs dp {} (tiny at {tiny})",
                gr.cost,
                dp.cost
            );
        }
    }

    #[test]
    fn greedy_respects_outerjoin_direction() {
        let mut g = chain_graph(4);
        g.add_outerjoin_edge(3, 4, Pred::eq_attr("R3.k", "R4.k"))
            .unwrap_err(); // node 4 does not exist
        let mut g = QueryGraph::new((0..4).map(|i| format!("R{i}")).collect());
        g.add_join_edge(0, 1, Pred::eq_attr("R0.k", "R1.k"))
            .unwrap();
        g.add_outerjoin_edge(1, 2, Pred::eq_attr("R1.k", "R2.k"))
            .unwrap();
        g.add_outerjoin_edge(2, 3, Pred::eq_attr("R2.k", "R3.k"))
            .unwrap();
        let cat = catalog(4, 0);
        let r = greedy_optimize(&g, &cat).unwrap();
        fn count_lo(p: &PhysPlan) -> usize {
            match p {
                PhysPlan::IndexJoin { kind, outer, .. } => {
                    usize::from(*kind == JoinKind::LeftOuter) + count_lo(outer)
                }
                PhysPlan::HashJoin {
                    kind, probe, build, ..
                } => usize::from(*kind == JoinKind::LeftOuter) + count_lo(probe) + count_lo(build),
                PhysPlan::NlJoin {
                    kind, left, right, ..
                } => usize::from(*kind == JoinKind::LeftOuter) + count_lo(left) + count_lo(right),
                _ => 0,
            }
        }
        assert_eq!(count_lo(&r.plan), 2);
    }

    #[test]
    fn greedy_warm_cache_short_circuits() {
        use super::super::plancache::CacheCtx;
        use crate::reorder::Policy;
        let g = chain_graph(30);
        let cat = catalog(30, 0);
        let cctx = CacheCtx::for_graph(&g, Policy::Paper);
        let cold = greedy_optimize_with(&g, &cat, Some(&cctx)).unwrap();
        assert!(cold.merges_examined > 0);
        let warm = greedy_optimize_with(&g, &cat, Some(&cctx)).unwrap();
        assert_eq!(warm.merges_examined, 0);
        assert_eq!(warm.cache.hits, 1);
        assert_eq!(warm.plan.explain(), cold.plan.explain());
    }

    #[test]
    fn greedy_rejects_disconnected() {
        let g = QueryGraph::new(vec!["A".into(), "B".into()]);
        assert!(matches!(
            greedy_optimize(&g, &Catalog::new()),
            Err(OptError::Disconnected)
        ));
    }

    #[test]
    fn greedy_executes_correctly() {
        use fro_algebra::{Relation, Value};
        use fro_exec::{execute, ExecStats, Storage};
        // Real data: verify the greedy plan's result against the
        // reference evaluator via some implementing tree.
        let mut g = QueryGraph::new((0..5).map(|i| format!("R{i}")).collect());
        for i in 0..4 {
            g.add_join_edge(
                i,
                i + 1,
                Pred::eq_attr(&format!("R{i}.k"), &format!("R{}.k", i + 1)),
            )
            .unwrap();
        }
        let mut storage = Storage::new();
        for i in 0..5 {
            let name = format!("R{i}");
            let rows: Vec<Vec<Value>> = (0..6)
                .map(|j| vec![Value::Int((j + i) as i64 % 4)])
                .collect();
            storage.insert(&name, Relation::from_values(&name, &["k"], rows));
            storage.create_index(&name, &[Attr::new(&name, "k")]);
        }
        let cat = Catalog::from_storage(&storage);
        let r = greedy_optimize(&g, &cat).unwrap();
        let mut st = ExecStats::new();
        let got = execute(&r.plan, &storage, &mut st).unwrap();
        let tree = fro_trees::some_implementing_tree(&g).unwrap();
        let want = tree.eval(&storage.to_database()).unwrap();
        assert!(got.set_eq(&want));
    }
}
