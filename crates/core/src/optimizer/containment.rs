//! Finkelstein-style query-graph containment.
//!
//! Theorem 1 makes the query graph the *identity* of a freely
//! reorderable query, which licenses more than exact-match caching:
//! when one standing query's graph is contained in another's — same
//! relations and edges, plus extra joins on one side — the two share
//! every build side over their common base relations. This module
//! classifies that relationship (the readyset lineage calls the two
//! directions *prefix reuse* and *direct extension*); the standing
//! registry uses the verdict to route a new registration at the pooled
//! build sides of an existing view.
//!
//! Containment is computed over *names*: a node is its relation name,
//! an edge is `(kind, endpoints, rendered predicate)` with join-edge
//! endpoints order-normalized (join edges are undirected; outerjoin
//! edges keep their preserved → null-supplied direction). Two graphs
//! that differ only in node numbering therefore compare equal, exactly
//! like the [`super::plancache::GraphSignature`] they share.

use fro_graph::{EdgeKind, QueryGraph};
use std::collections::BTreeSet;

/// How a new query graph relates to an already-registered one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphReuse {
    /// Same nodes, same edges: the queries are alpha-equivalent.
    Equivalent,
    /// The new graph is contained in the registered one (the
    /// registered query joins a superset) — Finkelstein *prefix*
    /// reuse.
    PrefixOf,
    /// The new graph contains the registered one (the new query joins
    /// a superset) — Finkelstein *direct extension*.
    ExtensionOf,
}

/// A canonical edge descriptor: `(kind, endpoint, endpoint, rendered
/// predicate)` with join-edge endpoints order-normalized.
type CanonEdge = (u8, String, String, String);

/// A graph as comparable sets: relation names and canonical edge
/// descriptors.
fn canon(g: &QueryGraph) -> (BTreeSet<&str>, BTreeSet<CanonEdge>) {
    let nodes: BTreeSet<&str> = (0..g.n_nodes()).map(|i| g.node_name(i)).collect();
    let edges = g
        .edges()
        .iter()
        .map(|e| {
            let (mut a, mut b) = (g.node_name(e.a()), g.node_name(e.b()));
            if e.kind() == EdgeKind::Join && a > b {
                std::mem::swap(&mut a, &mut b);
            }
            let kind = match e.kind() {
                EdgeKind::Join => 0u8,
                EdgeKind::OuterJoin => 1u8,
            };
            (kind, a.to_owned(), b.to_owned(), e.pred().to_string())
        })
        .collect();
    (nodes, edges)
}

/// Classify how `new` relates to `old`, or `None` when neither
/// contains the other (overlap alone is not exploitable: a shared
/// *subgraph* does not make either query's maintained state a state
/// of the other).
#[must_use]
pub fn graph_containment(new: &QueryGraph, old: &QueryGraph) -> Option<GraphReuse> {
    let (nn, ne) = canon(new);
    let (on, oe) = canon(old);
    let new_in_old = nn.is_subset(&on) && ne.is_subset(&oe);
    let old_in_new = on.is_subset(&nn) && oe.is_subset(&ne);
    match (new_in_old, old_in_new) {
        (true, true) => Some(GraphReuse::Equivalent),
        (true, false) => Some(GraphReuse::PrefixOf),
        (false, true) => Some(GraphReuse::ExtensionOf),
        (false, false) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Pred;

    fn graph(names: &[&str], joins: &[(usize, usize, &str, &str)]) -> QueryGraph {
        let mut g = QueryGraph::new(names.iter().map(|s| (*s).to_owned()).collect());
        for &(a, b, x, y) in joins {
            g.add_join_edge(a, b, Pred::eq_attr(x, y)).unwrap();
        }
        g
    }

    #[test]
    fn equivalent_prefix_extension_and_unrelated() {
        let two = graph(&["F", "D1"], &[(0, 1, "F.d1", "D1.k")]);
        let three = graph(
            &["F", "D1", "D2"],
            &[(0, 1, "F.d1", "D1.k"), (0, 2, "F.d2", "D2.k")],
        );
        // Same graph with nodes declared in another order.
        let two_renumbered = graph(&["D1", "F"], &[(1, 0, "F.d1", "D1.k")]);
        assert_eq!(
            graph_containment(&two, &two_renumbered),
            Some(GraphReuse::Equivalent)
        );
        assert_eq!(graph_containment(&two, &three), Some(GraphReuse::PrefixOf));
        assert_eq!(
            graph_containment(&three, &two),
            Some(GraphReuse::ExtensionOf)
        );
        let other = graph(&["A", "B"], &[(0, 1, "A.x", "B.x")]);
        assert_eq!(graph_containment(&other, &three), None);
    }

    #[test]
    fn same_nodes_different_predicates_do_not_contain() {
        let a = graph(&["R", "S"], &[(0, 1, "R.k", "S.k")]);
        let b = graph(&["R", "S"], &[(0, 1, "R.v", "S.v")]);
        assert_eq!(graph_containment(&a, &b), None);
    }

    #[test]
    fn outerjoin_direction_matters() {
        let mut fwd = QueryGraph::new(vec!["R".into(), "S".into()]);
        fwd.add_outerjoin_edge(0, 1, Pred::eq_attr("R.k", "S.k"))
            .unwrap();
        let mut rev = QueryGraph::new(vec!["R".into(), "S".into()]);
        rev.add_outerjoin_edge(1, 0, Pred::eq_attr("R.k", "S.k"))
            .unwrap();
        assert_eq!(graph_containment(&fwd, &rev), None);
        assert_eq!(
            graph_containment(&fwd, &fwd.clone()),
            Some(GraphReuse::Equivalent)
        );
    }
}
