//! Cost model: estimated tuples retrieved + rows materialized.
//!
//! The unit of cost is "one tuple touched" — the metric of the paper's
//! Example 1. A scan touches every tuple; a hash join touches its
//! build and probe inputs plus its output; an index join touches one
//! probe per outer row and only the *matching* inner tuples, which is
//! exactly why `(R1 − R2) → R3` costs 3 touches while
//! `R1 − (R2 → R3)` costs `2·|R2| + 1` when driven the wrong way.

use super::stats::Catalog;
use fro_exec::{JoinKind, PhysPlan};

/// An estimated (cost, output-rows) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Total work units (tuples touched).
    pub cost: f64,
    /// Estimated output cardinality.
    pub rows: f64,
}

/// Join-output cardinality for `kind`, given input cards and the
/// match selectivity.
#[must_use]
pub fn join_rows(kind: JoinKind, probe_rows: f64, build_rows: f64, sel: f64) -> f64 {
    let inner = probe_rows * build_rows * sel;
    let match_prob = (build_rows * sel).min(1.0);
    match kind {
        JoinKind::Inner => inner,
        JoinKind::LeftOuter => inner.max(probe_rows),
        JoinKind::FullOuter => inner.max(probe_rows).max(build_rows),
        JoinKind::Semi => probe_rows * match_prob,
        JoinKind::Anti => probe_rows * (1.0 - match_prob),
    }
}

/// Estimate a physical plan bottom-up.
#[must_use]
pub fn estimate_plan(plan: &PhysPlan, catalog: &Catalog) -> Estimate {
    match plan {
        PhysPlan::Scan { rel } => {
            let n = catalog.rows_of(rel) as f64;
            Estimate { cost: n, rows: n }
        }
        PhysPlan::Filter { input, pred } => {
            let e = estimate_plan(input, catalog);
            Estimate {
                cost: e.cost + e.rows,
                rows: e.rows * catalog.selectivity(pred),
            }
        }
        PhysPlan::Project { input, .. } => {
            let e = estimate_plan(input, catalog);
            Estimate {
                cost: e.cost + e.rows,
                rows: e.rows,
            }
        }
        PhysPlan::HashJoin {
            kind,
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
        } => {
            let pe = estimate_plan(probe, catalog);
            let be = estimate_plan(build, catalog);
            let mut sel = catalog.selectivity(residual);
            for (pk, bk) in probe_keys.iter().zip(build_keys) {
                sel *= 1.0 / (catalog.distinct_of(pk).max(catalog.distinct_of(bk)).max(1) as f64);
            }
            let rows = join_rows(*kind, pe.rows, be.rows, sel);
            Estimate {
                cost: pe.cost + be.cost + be.rows + pe.rows + rows,
                rows,
            }
        }
        PhysPlan::IndexJoin {
            kind,
            outer,
            inner,
            outer_keys,
            inner_keys,
            residual,
        } => {
            let oe = estimate_plan(outer, catalog);
            let inner_rows = catalog.rows_of(inner) as f64;
            let mut sel = catalog.selectivity(residual);
            for (ok, ik) in outer_keys.iter().zip(inner_keys) {
                sel *= 1.0 / (catalog.distinct_of(ok).max(catalog.distinct_of(ik)).max(1) as f64);
            }
            let retrieved = oe.rows * inner_rows * sel;
            let rows = join_rows(*kind, oe.rows, inner_rows, sel);
            Estimate {
                cost: oe.cost + oe.rows + retrieved + rows,
                rows,
            }
        }
        PhysPlan::MergeJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let le = estimate_plan(left, catalog);
            let re = estimate_plan(right, catalog);
            let mut sel = catalog.selectivity(residual);
            for (lk, rk) in left_keys.iter().zip(right_keys) {
                sel *= 1.0 / (catalog.distinct_of(lk).max(catalog.distinct_of(rk)).max(1) as f64);
            }
            let rows = join_rows(*kind, le.rows, re.rows, sel);
            // Sort cost modeled as n·log n over each input.
            let sort = |n: f64| n * (n.max(2.0)).log2();
            Estimate {
                cost: le.cost + re.cost + sort(le.rows) + sort(re.rows) + rows,
                rows,
            }
        }
        PhysPlan::NlJoin {
            kind,
            left,
            right,
            pred,
        } => {
            let le = estimate_plan(left, catalog);
            let re = estimate_plan(right, catalog);
            let sel = catalog.selectivity(pred);
            let rows = join_rows(*kind, le.rows, re.rows, sel);
            Estimate {
                cost: le.cost + re.cost + le.rows * re.rows + rows,
                rows,
            }
        }
        PhysPlan::GroupCount {
            input, group_attrs, ..
        } => {
            let e = estimate_plan(input, catalog);
            let mut groups = 1.0f64;
            for a in group_attrs {
                groups *= catalog.distinct_of(a) as f64;
            }
            Estimate {
                cost: e.cost + e.rows,
                rows: groups.min(e.rows),
            }
        }
        PhysPlan::Goj {
            left, right, pred, ..
        } => {
            let le = estimate_plan(left, catalog);
            let re = estimate_plan(right, catalog);
            let sel = catalog.selectivity(pred);
            let rows = join_rows(JoinKind::LeftOuter, le.rows, re.rows, sel);
            Estimate {
                cost: le.cost + re.cost + le.rows * re.rows + rows,
                rows,
            }
        }
        PhysPlan::SemiReduce {
            input,
            source,
            input_keys,
            source_keys,
            ..
        } => {
            let ie = estimate_plan(input, catalog);
            let se = estimate_plan(source, catalog);
            // Containment assumption: the source's key values are a
            // subset of the input's key domain, so an input row
            // survives with probability d_source / d_input per key —
            // not the uniform 1/max(d) of the join arms. This is what
            // lets the reducer see skew: a dimension whose junk keys
            // never appear in the source gets d_src ≪ d_in and a
            // survivor fraction well below one, while uniformly-keyed
            // inputs get ≈ 1 and the reduction correctly looks useless.
            let mut frac = 1.0f64;
            for (ik, sk) in input_keys.iter().zip(source_keys) {
                let d_in = catalog.distinct_of(ik).max(1) as f64;
                let d_src = catalog.distinct_of(sk).max(1) as f64;
                frac *= (d_src / d_in).min(1.0);
            }
            Estimate {
                cost: ie.cost + se.cost + se.rows + ie.rows,
                rows: ie.rows * frac,
            }
        }
    }
}

/// The combined equality selectivity of the equi-conjuncts between two
/// relation sets, times the residual selectivity — a name-keyed
/// testing oracle for the id-keyed selectivities computed in
/// `cuts::CutCtx`. Hidden from the public surface; enable the
/// `testing-oracles` feature to use it.
#[cfg(any(test, feature = "testing-oracles"))]
#[doc(hidden)]
#[must_use]
pub fn cut_selectivity(
    catalog: &Catalog,
    pred: &fro_algebra::Pred,
    left_rels: &std::collections::BTreeSet<String>,
    right_rels: &std::collections::BTreeSet<String>,
) -> f64 {
    let (pairs, residual) = super::lower::split_equi_by_name_impl(pred, left_rels, right_rels);
    let mut sel = catalog.selectivity(&residual);
    for (a, b) in &pairs {
        sel *= 1.0 / (catalog.distinct_of(a).max(catalog.distinct_of(b)).max(1) as f64);
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::{Attr, Pred, Schema};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, rows) in [("R1", 1u64), ("R2", 10_000_000), ("R3", 10_000_000)] {
            let attr = format!("k{}", &name[1..]);
            cat.add_table(name, Arc::new(Schema::of_relation(name, &[&attr])), rows);
            cat.set_distinct(&Attr::new(name, &attr), rows);
            cat.add_index(name, &[Attr::new(name, &attr)]);
        }
        cat
    }

    #[test]
    fn scan_cost_is_cardinality() {
        let cat = catalog();
        let e = estimate_plan(&PhysPlan::scan("R2"), &cat);
        assert_eq!(e.cost, 10_000_000.0);
        assert_eq!(e.rows, 10_000_000.0);
    }

    #[test]
    fn example1_cost_asymmetry_estimated() {
        let cat = catalog();
        // Plan B (cheap): scan R1 → index into R2 → index into R3.
        let plan_b = PhysPlan::IndexJoin {
            kind: JoinKind::LeftOuter,
            outer: Box::new(PhysPlan::IndexJoin {
                kind: JoinKind::Inner,
                outer: Box::new(PhysPlan::scan("R1")),
                inner: "R2".into(),
                outer_keys: vec![Attr::parse("R1.k1")],
                inner_keys: vec![Attr::parse("R2.k2")],
                residual: Pred::always(),
            }),
            inner: "R3".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        // Plan A (expensive): scan R2, index-outerjoin R3, then index
        // into R1.
        let plan_a = PhysPlan::IndexJoin {
            kind: JoinKind::Inner,
            outer: Box::new(PhysPlan::IndexJoin {
                kind: JoinKind::LeftOuter,
                outer: Box::new(PhysPlan::scan("R2")),
                inner: "R3".into(),
                outer_keys: vec![Attr::parse("R2.k2")],
                inner_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            }),
            inner: "R1".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R1.k1")],
            residual: Pred::always(),
        };
        let eb = estimate_plan(&plan_b, &cat);
        let ea = estimate_plan(&plan_a, &cat);
        assert!(
            eb.cost * 1000.0 < ea.cost,
            "plan B ({}) should be orders cheaper than plan A ({})",
            eb.cost,
            ea.cost
        );
    }

    #[test]
    fn join_rows_kinds() {
        // probe 10 rows, build 100 rows, sel keyed at 1/100.
        let sel = 0.01;
        assert!((join_rows(JoinKind::Inner, 10.0, 100.0, sel) - 10.0).abs() < 1e-9);
        assert!(join_rows(JoinKind::LeftOuter, 10.0, 100.0, sel) >= 10.0);
        assert!(join_rows(JoinKind::Semi, 10.0, 100.0, sel) <= 10.0);
        let anti = join_rows(JoinKind::Anti, 10.0, 100.0, sel);
        assert!((0.0..=10.0).contains(&anti));
    }

    #[test]
    fn cut_selectivity_combines_keys_and_residual() {
        let cat = catalog();
        let l: BTreeSet<String> = ["R2".to_owned()].into();
        let r: BTreeSet<String> = ["R3".to_owned()].into();
        let p = Pred::eq_attr("R2.k2", "R3.k3");
        let s = cut_selectivity(&cat, &p, &l, &r);
        assert!((s - 1e-7).abs() < 1e-12);
    }
}
