//! Syntactic lowering: map a [`Query`] tree to a physical plan
//! *without reordering* — the baseline an optimizer is reduced to when
//! a query is not freely reorderable (and the comparison point for the
//! benefit measurements in the benches).
//!
//! The main path ([`lower`]) interns the query's relation names into a
//! [`RelMap`] once and threads [`RelSet`] bitsets through the
//! recursion, so predicate splitting does no string set-membership
//! tests. The historical name-keyed walk survives crate-privately: it
//! is the comparison target for the interned path's equivalence tests
//! and the fallback for queries with more relations than a [`RelSet`]
//! can hold. Under the `testing-oracles` feature it is re-exposed
//! (hidden) as `lower_by_name`/`split_equi_by_name` for the external
//! oracle tests.

use super::cuts::{self, RelMap};
use super::stats::Catalog;
use super::OptError;
use fro_algebra::{Attr, CmpOp, Pred, Query, RelSet, Scalar};
use fro_exec::{JoinKind, PhysPlan};
use std::collections::BTreeSet;

/// Split a predicate into equi-join key pairs `(left_attr,
/// right_attr)` across the given relation sets, plus the residual
/// predicate of everything else.
///
/// Compatibility shim: side membership is tested against
/// `BTreeSet<String>`. The optimizer's own paths use the interned
/// [`cuts::split_equi`], which answers the same question with one bit
/// test per attribute.
#[must_use]
pub(crate) fn split_equi_by_name_impl(
    pred: &Pred,
    left_rels: &BTreeSet<String>,
    right_rels: &BTreeSet<String>,
) -> (Vec<(Attr, Attr)>, Pred) {
    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    for conj in pred.conjuncts() {
        if let Pred::Cmp {
            op: CmpOp::Eq,
            lhs: Scalar::Attr(a),
            rhs: Scalar::Attr(b),
        } = &conj
        {
            if left_rels.contains(a.rel()) && right_rels.contains(b.rel()) {
                pairs.push((a.clone(), b.clone()));
                continue;
            }
            if left_rels.contains(b.rel()) && right_rels.contains(a.rel()) {
                pairs.push((b.clone(), a.clone()));
                continue;
            }
        }
        residual.push(conj);
    }
    (pairs, Pred::from_conjuncts(residual))
}

/// Lower a query tree in its given association.
///
/// # Errors
/// [`OptError::Unsupported`] for operators with no physical form
/// (currently `Union`).
pub fn lower(q: &Query, catalog: &Catalog) -> Result<PhysPlan, OptError> {
    let rels = q.rels();
    if rels.len() > RelSet::MAX_MEMBERS {
        // Beyond bitset capacity: fall back to the name-keyed walk.
        return lower_by_name_impl(q, catalog);
    }
    let relmap = RelMap::from_rels(rels, catalog);
    lower_rec(q, catalog, &relmap).map(|(plan, _)| plan)
}

/// One recursion step: the plan plus the bitset of relations it
/// covers (the left/right sets every join split needs).
fn lower_rec(
    q: &Query,
    catalog: &Catalog,
    relmap: &RelMap,
) -> Result<(PhysPlan, RelSet), OptError> {
    match q {
        Query::Rel(name) => {
            let node = relmap
                .node_of(name)
                .expect("every relation of the query is in its RelMap");
            Ok((PhysPlan::scan(name.clone()), RelSet::singleton(node)))
        }
        Query::Join { left, right, pred } => {
            lower_join_rec(JoinKind::Inner, left, right, pred, catalog, relmap)
        }
        Query::OuterJoin { left, right, pred } => {
            lower_join_rec(JoinKind::LeftOuter, left, right, pred, catalog, relmap)
        }
        Query::FullOuterJoin { left, right, pred } => {
            // Never an index join: unmatched inner rows would be lost.
            let (left_plan, lset) = lower_rec(left, catalog, relmap)?;
            let (right_plan, rset) = lower_rec(right, catalog, relmap)?;
            let (pairs, residual) = cuts::split_equi(pred, lset, rset, relmap);
            let plan = if pairs.is_empty() {
                PhysPlan::NlJoin {
                    kind: JoinKind::FullOuter,
                    left: Box::new(left_plan),
                    right: Box::new(right_plan),
                    pred: pred.clone(),
                }
            } else {
                let (probe_keys, build_keys): (Vec<Attr>, Vec<Attr>) = pairs.into_iter().unzip();
                PhysPlan::HashJoin {
                    kind: JoinKind::FullOuter,
                    probe: Box::new(left_plan),
                    build: Box::new(right_plan),
                    probe_keys,
                    build_keys,
                    residual,
                }
            };
            Ok((plan, lset.union(rset)))
        }
        Query::SemiJoin { left, right, pred } => {
            lower_join_rec(JoinKind::Semi, left, right, pred, catalog, relmap)
        }
        Query::AntiJoin { left, right, pred } => {
            lower_join_rec(JoinKind::Anti, left, right, pred, catalog, relmap)
        }
        Query::Restrict { input, pred } => {
            let (plan, set) = lower_rec(input, catalog, relmap)?;
            Ok((
                PhysPlan::Filter {
                    input: Box::new(plan),
                    pred: pred.clone(),
                },
                set,
            ))
        }
        Query::Project { input, attrs } => {
            let (plan, set) = lower_rec(input, catalog, relmap)?;
            Ok((
                PhysPlan::Project {
                    input: Box::new(plan),
                    attrs: attrs.clone(),
                },
                set,
            ))
        }
        Query::GroupCount {
            input,
            group_attrs,
            counted,
        } => {
            let (plan, set) = lower_rec(input, catalog, relmap)?;
            Ok((
                PhysPlan::GroupCount {
                    input: Box::new(plan),
                    group_attrs: group_attrs.clone(),
                    counted: counted.clone(),
                },
                set,
            ))
        }
        Query::Goj {
            left,
            right,
            pred,
            subset,
        } => {
            let (left_plan, lset) = lower_rec(left, catalog, relmap)?;
            let (right_plan, rset) = lower_rec(right, catalog, relmap)?;
            Ok((
                PhysPlan::Goj {
                    left: Box::new(left_plan),
                    right: Box::new(right_plan),
                    pred: pred.clone(),
                    subset: subset.clone(),
                },
                lset.union(rset),
            ))
        }
        Query::Union { .. } => Err(OptError::Unsupported(
            "union has no physical operator in this engine".into(),
        )),
    }
}

fn lower_join_rec(
    kind: JoinKind,
    left: &Query,
    right: &Query,
    pred: &Pred,
    catalog: &Catalog,
    relmap: &RelMap,
) -> Result<(PhysPlan, RelSet), OptError> {
    let (left_plan, lset) = lower_rec(left, catalog, relmap)?;
    let (right_plan, rset) = lower_rec(right, catalog, relmap)?;
    let (pairs, residual) = cuts::split_equi(pred, lset, rset, relmap);
    if pairs.is_empty() {
        return Ok((
            PhysPlan::NlJoin {
                kind,
                left: Box::new(left_plan),
                right: Box::new(right_plan),
                pred: pred.clone(),
            },
            lset.union(rset),
        ));
    }
    let (outer_keys, inner_keys): (Vec<Attr>, Vec<Attr>) = pairs.into_iter().unzip();
    if let Query::Rel(name) = right {
        let indexed = catalog
            .table(name)
            .is_some_and(|t| t.has_index(&inner_keys));
        if indexed {
            return Ok((
                PhysPlan::IndexJoin {
                    kind,
                    outer: Box::new(left_plan),
                    inner: name.clone(),
                    outer_keys,
                    inner_keys,
                    residual,
                },
                lset.union(rset),
            ));
        }
    }
    Ok((
        PhysPlan::HashJoin {
            kind,
            probe: Box::new(left_plan),
            build: Box::new(right_plan),
            probe_keys: outer_keys,
            build_keys: inner_keys,
            residual,
        },
        lset.union(rset),
    ))
}

/// Lower a query tree using name-keyed relation sets throughout — the
/// historical walk, kept as the interned path's equivalence oracle and
/// as the fallback past [`RelSet::MAX_MEMBERS`] relations.
///
/// # Errors
/// [`OptError::Unsupported`] for operators with no physical form
/// (currently `Union`).
pub(crate) fn lower_by_name_impl(q: &Query, catalog: &Catalog) -> Result<PhysPlan, OptError> {
    match q {
        Query::Rel(name) => Ok(PhysPlan::scan(name.clone())),
        Query::Join { left, right, pred } => {
            lower_join_by_name(JoinKind::Inner, left, right, pred, catalog)
        }
        Query::OuterJoin { left, right, pred } => {
            lower_join_by_name(JoinKind::LeftOuter, left, right, pred, catalog)
        }
        Query::FullOuterJoin { left, right, pred } => {
            // Never an index join: unmatched inner rows would be lost.
            let left_plan = lower_by_name_impl(left, catalog)?;
            let right_plan = lower_by_name_impl(right, catalog)?;
            let right_rels = right.rels();
            let (pairs, residual) = split_equi_by_name_impl(pred, &left.rels(), &right_rels);
            Ok(if pairs.is_empty() {
                PhysPlan::NlJoin {
                    kind: JoinKind::FullOuter,
                    left: Box::new(left_plan),
                    right: Box::new(right_plan),
                    pred: pred.clone(),
                }
            } else {
                let (probe_keys, build_keys): (Vec<Attr>, Vec<Attr>) = pairs.into_iter().unzip();
                PhysPlan::HashJoin {
                    kind: JoinKind::FullOuter,
                    probe: Box::new(left_plan),
                    build: Box::new(right_plan),
                    probe_keys,
                    build_keys,
                    residual,
                }
            })
        }
        Query::SemiJoin { left, right, pred } => {
            lower_join_by_name(JoinKind::Semi, left, right, pred, catalog)
        }
        Query::AntiJoin { left, right, pred } => {
            lower_join_by_name(JoinKind::Anti, left, right, pred, catalog)
        }
        Query::Restrict { input, pred } => Ok(PhysPlan::Filter {
            input: Box::new(lower_by_name_impl(input, catalog)?),
            pred: pred.clone(),
        }),
        Query::Project { input, attrs } => Ok(PhysPlan::Project {
            input: Box::new(lower_by_name_impl(input, catalog)?),
            attrs: attrs.clone(),
        }),
        Query::GroupCount {
            input,
            group_attrs,
            counted,
        } => Ok(PhysPlan::GroupCount {
            input: Box::new(lower_by_name_impl(input, catalog)?),
            group_attrs: group_attrs.clone(),
            counted: counted.clone(),
        }),
        Query::Goj {
            left,
            right,
            pred,
            subset,
        } => Ok(PhysPlan::Goj {
            left: Box::new(lower_by_name_impl(left, catalog)?),
            right: Box::new(lower_by_name_impl(right, catalog)?),
            pred: pred.clone(),
            subset: subset.clone(),
        }),
        Query::Union { .. } => Err(OptError::Unsupported(
            "union has no physical operator in this engine".into(),
        )),
    }
}

fn lower_join_by_name(
    kind: JoinKind,
    left: &Query,
    right: &Query,
    pred: &Pred,
    catalog: &Catalog,
) -> Result<PhysPlan, OptError> {
    let left_plan = lower_by_name_impl(left, catalog)?;
    let right_plan = lower_by_name_impl(right, catalog)?;
    let left_rels = left.rels();
    let right_rels = right.rels();
    let (pairs, residual) = split_equi_by_name_impl(pred, &left_rels, &right_rels);
    if pairs.is_empty() {
        return Ok(PhysPlan::NlJoin {
            kind,
            left: Box::new(left_plan),
            right: Box::new(right_plan),
            pred: pred.clone(),
        });
    }
    let (outer_keys, inner_keys): (Vec<Attr>, Vec<Attr>) = pairs.into_iter().unzip();
    if let Query::Rel(name) = right {
        let indexed = catalog
            .table(name)
            .is_some_and(|t| t.has_index(&inner_keys));
        if indexed {
            return Ok(PhysPlan::IndexJoin {
                kind,
                outer: Box::new(left_plan),
                inner: name.clone(),
                outer_keys,
                inner_keys,
                residual,
            });
        }
    }
    Ok(PhysPlan::HashJoin {
        kind,
        probe: Box::new(left_plan),
        build: Box::new(right_plan),
        probe_keys: outer_keys,
        build_keys: inner_keys,
        residual,
    })
}

/// Name-keyed testing oracle: lower a query tree without interning.
/// Hidden from the public surface; enable the `testing-oracles`
/// feature to compare against the id-keyed path.
///
/// # Errors
/// [`OptError::Unsupported`] for operators with no physical form
/// (currently `Union`).
#[cfg(feature = "testing-oracles")]
#[doc(hidden)]
pub fn lower_by_name(q: &Query, catalog: &Catalog) -> Result<PhysPlan, OptError> {
    lower_by_name_impl(q, catalog)
}

/// Name-keyed testing oracle for equi-conjunct splitting. Hidden from
/// the public surface; enable the `testing-oracles` feature to compare
/// against the id-keyed [`cuts::split_equi`].
#[cfg(feature = "testing-oracles")]
#[doc(hidden)]
#[must_use]
pub fn split_equi_by_name(
    pred: &Pred,
    left_rels: &BTreeSet<String>,
    right_rels: &BTreeSet<String>,
) -> (Vec<(Attr, Attr)>, Pred) {
    split_equi_by_name_impl(pred, left_rels, right_rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Schema;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["A", "B", "C"] {
            cat.add_table(name, Arc::new(Schema::of_relation(name, &["k"])), 100);
            cat.add_index(name, &[Attr::new(name, "k")]);
        }
        cat
    }

    #[test]
    fn split_equi_partitions_conjuncts() {
        let l: BTreeSet<String> = ["A".to_owned()].into();
        let r: BTreeSet<String> = ["B".to_owned()].into();
        let pred = Pred::eq_attr("A.k", "B.k")
            .and(Pred::cmp_attr("A.k", CmpOp::Lt, "B.k"))
            .and(Pred::eq_attr("B.k", "A.k"));
        let (pairs, residual) = split_equi_by_name_impl(&pred, &l, &r);
        assert_eq!(pairs.len(), 2);
        // Pairs are normalized (left attr first).
        assert!(pairs.iter().all(|(a, _)| a.rel() == "A"));
        assert_eq!(residual.conjuncts().len(), 1);
    }

    #[test]
    fn lower_prefers_index_join_on_base_right() {
        let cat = catalog();
        let q = Query::rel("A").join(Query::rel("B"), Pred::eq_attr("A.k", "B.k"));
        let plan = lower(&q, &cat).unwrap();
        assert!(matches!(plan, PhysPlan::IndexJoin { .. }), "{plan}");
    }

    #[test]
    fn lower_falls_back_to_hash_join() {
        let mut cat = catalog();
        // Remove B's index by rebuilding the catalog entry.
        cat.add_table("B", Arc::new(Schema::of_relation("B", &["k"])), 100);
        let q = Query::rel("A").join(Query::rel("B"), Pred::eq_attr("A.k", "B.k"));
        let plan = lower(&q, &cat).unwrap();
        assert!(matches!(plan, PhysPlan::HashJoin { .. }), "{plan}");
    }

    #[test]
    fn lower_nl_join_for_theta() {
        let cat = catalog();
        let q = Query::rel("A").join(Query::rel("B"), Pred::cmp_attr("A.k", CmpOp::Gt, "B.k"));
        let plan = lower(&q, &cat).unwrap();
        assert!(matches!(plan, PhysPlan::NlJoin { .. }));
    }

    #[test]
    fn lower_outerjoin_keeps_direction() {
        let cat = catalog();
        let q = Query::rel("A").outerjoin(Query::rel("B"), Pred::eq_attr("A.k", "B.k"));
        let plan = lower(&q, &cat).unwrap();
        match plan {
            PhysPlan::IndexJoin { kind, .. } => assert_eq!(kind, JoinKind::LeftOuter),
            other => panic!("unexpected plan {other}"),
        }
    }

    #[test]
    fn lower_composite_right_side_uses_hash() {
        let cat = catalog();
        let q = Query::rel("A").join(
            Query::rel("B").join(Query::rel("C"), Pred::eq_attr("B.k", "C.k")),
            Pred::eq_attr("A.k", "B.k"),
        );
        let plan = lower(&q, &cat).unwrap();
        assert!(matches!(plan, PhysPlan::HashJoin { .. }));
    }

    #[test]
    fn union_unsupported() {
        let cat = catalog();
        let q = Query::rel("A").union(Query::rel("B"));
        assert!(matches!(lower(&q, &cat), Err(OptError::Unsupported(_))));
    }

    #[test]
    fn restrict_project_goj_lower() {
        let cat = catalog();
        let q = Query::rel("A")
            .goj(
                Query::rel("B"),
                Pred::eq_attr("A.k", "B.k"),
                vec![Attr::parse("A.k")],
            )
            .restrict(Pred::cmp_lit("A.k", CmpOp::Gt, 0))
            .project(vec![Attr::parse("A.k")]);
        let plan = lower(&q, &cat).unwrap();
        let text = plan.explain();
        assert!(text.contains("Project"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Goj"));
    }

    #[test]
    fn interned_and_name_keyed_lowering_agree() {
        let cat = catalog();
        let queries = [
            Query::rel("A").join(Query::rel("B"), Pred::eq_attr("A.k", "B.k")),
            Query::rel("A")
                .join(
                    Query::rel("B").outerjoin(Query::rel("C"), Pred::eq_attr("B.k", "C.k")),
                    Pred::eq_attr("A.k", "B.k"),
                )
                .restrict(Pred::cmp_lit("A.k", CmpOp::Gt, 0)),
            Query::rel("A").join(Query::rel("B"), Pred::cmp_attr("A.k", CmpOp::Gt, "B.k")),
        ];
        for q in queries {
            let interned = lower(&q, &cat).unwrap();
            let named = lower_by_name_impl(&q, &cat).unwrap();
            assert_eq!(interned.explain(), named.explain(), "for {q:?}");
        }
    }
}
