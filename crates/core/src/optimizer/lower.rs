//! Syntactic lowering: map a [`Query`] tree to a physical plan
//! *without reordering* — the baseline an optimizer is reduced to when
//! a query is not freely reorderable (and the comparison point for the
//! benefit measurements in the benches).

use super::stats::Catalog;
use super::OptError;
use fro_algebra::{Attr, CmpOp, Pred, Query, Scalar};
use fro_exec::{JoinKind, PhysPlan};
use std::collections::BTreeSet;

/// Split a predicate into equi-join key pairs `(left_attr,
/// right_attr)` across the given relation sets, plus the residual
/// predicate of everything else.
#[must_use]
pub fn split_equi(
    pred: &Pred,
    left_rels: &BTreeSet<String>,
    right_rels: &BTreeSet<String>,
) -> (Vec<(Attr, Attr)>, Pred) {
    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    for conj in pred.conjuncts() {
        if let Pred::Cmp {
            op: CmpOp::Eq,
            lhs: Scalar::Attr(a),
            rhs: Scalar::Attr(b),
        } = &conj
        {
            if left_rels.contains(a.rel()) && right_rels.contains(b.rel()) {
                pairs.push((a.clone(), b.clone()));
                continue;
            }
            if left_rels.contains(b.rel()) && right_rels.contains(a.rel()) {
                pairs.push((b.clone(), a.clone()));
                continue;
            }
        }
        residual.push(conj);
    }
    (pairs, Pred::from_conjuncts(residual))
}

/// Choose a physical join for `left ⊙ right` given the predicate:
/// index nested-loop when the right side is a bare indexed table, hash
/// join when equi-keys exist, plain nested loop otherwise.
pub(crate) fn physical_join(
    kind: JoinKind,
    left_plan: PhysPlan,
    left_rels: &BTreeSet<String>,
    right: &Query,
    right_plan: PhysPlan,
    pred: &Pred,
    catalog: &Catalog,
) -> PhysPlan {
    let right_rels = right.rels();
    let (pairs, residual) = split_equi(pred, left_rels, &right_rels);
    if pairs.is_empty() {
        return PhysPlan::NlJoin {
            kind,
            left: Box::new(left_plan),
            right: Box::new(right_plan),
            pred: pred.clone(),
        };
    }
    let (outer_keys, inner_keys): (Vec<Attr>, Vec<Attr>) = pairs.into_iter().unzip();
    if let Query::Rel(name) = right {
        let indexed = catalog
            .table(name)
            .is_some_and(|t| t.has_index(&inner_keys));
        if indexed {
            return PhysPlan::IndexJoin {
                kind,
                outer: Box::new(left_plan),
                inner: name.clone(),
                outer_keys,
                inner_keys,
                residual,
            };
        }
    }
    PhysPlan::HashJoin {
        kind,
        probe: Box::new(left_plan),
        build: Box::new(right_plan),
        probe_keys: outer_keys,
        build_keys: inner_keys,
        residual,
    }
}

/// Lower a query tree in its given association.
///
/// # Errors
/// [`OptError::Unsupported`] for operators with no physical form
/// (currently `Union`).
pub fn lower(q: &Query, catalog: &Catalog) -> Result<PhysPlan, OptError> {
    match q {
        Query::Rel(name) => Ok(PhysPlan::scan(name.clone())),
        Query::Join { left, right, pred } => {
            lower_join(JoinKind::Inner, left, right, pred, catalog)
        }
        Query::OuterJoin { left, right, pred } => {
            lower_join(JoinKind::LeftOuter, left, right, pred, catalog)
        }
        Query::FullOuterJoin { left, right, pred } => {
            // Never an index join: unmatched inner rows would be lost.
            let left_plan = lower(left, catalog)?;
            let right_plan = lower(right, catalog)?;
            let right_rels = right.rels();
            let (pairs, residual) = split_equi(pred, &left.rels(), &right_rels);
            Ok(if pairs.is_empty() {
                PhysPlan::NlJoin {
                    kind: JoinKind::FullOuter,
                    left: Box::new(left_plan),
                    right: Box::new(right_plan),
                    pred: pred.clone(),
                }
            } else {
                let (probe_keys, build_keys): (Vec<Attr>, Vec<Attr>) = pairs.into_iter().unzip();
                PhysPlan::HashJoin {
                    kind: JoinKind::FullOuter,
                    probe: Box::new(left_plan),
                    build: Box::new(right_plan),
                    probe_keys,
                    build_keys,
                    residual,
                }
            })
        }
        Query::SemiJoin { left, right, pred } => {
            lower_join(JoinKind::Semi, left, right, pred, catalog)
        }
        Query::AntiJoin { left, right, pred } => {
            lower_join(JoinKind::Anti, left, right, pred, catalog)
        }
        Query::Restrict { input, pred } => Ok(PhysPlan::Filter {
            input: Box::new(lower(input, catalog)?),
            pred: pred.clone(),
        }),
        Query::Project { input, attrs } => Ok(PhysPlan::Project {
            input: Box::new(lower(input, catalog)?),
            attrs: attrs.clone(),
        }),
        Query::GroupCount {
            input,
            group_attrs,
            counted,
        } => Ok(PhysPlan::GroupCount {
            input: Box::new(lower(input, catalog)?),
            group_attrs: group_attrs.clone(),
            counted: counted.clone(),
        }),
        Query::Goj {
            left,
            right,
            pred,
            subset,
        } => Ok(PhysPlan::Goj {
            left: Box::new(lower(left, catalog)?),
            right: Box::new(lower(right, catalog)?),
            pred: pred.clone(),
            subset: subset.clone(),
        }),
        Query::Union { .. } => Err(OptError::Unsupported(
            "union has no physical operator in this engine".into(),
        )),
    }
}

fn lower_join(
    kind: JoinKind,
    left: &Query,
    right: &Query,
    pred: &Pred,
    catalog: &Catalog,
) -> Result<PhysPlan, OptError> {
    let left_plan = lower(left, catalog)?;
    let right_plan = lower(right, catalog)?;
    Ok(physical_join(
        kind,
        left_plan,
        &left.rels(),
        right,
        right_plan,
        pred,
        catalog,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Schema;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["A", "B", "C"] {
            cat.add_table(name, Arc::new(Schema::of_relation(name, &["k"])), 100);
            cat.add_index(name, &[Attr::new(name, "k")]);
        }
        cat
    }

    #[test]
    fn split_equi_partitions_conjuncts() {
        let l: BTreeSet<String> = ["A".to_owned()].into();
        let r: BTreeSet<String> = ["B".to_owned()].into();
        let pred = Pred::eq_attr("A.k", "B.k")
            .and(Pred::cmp_attr("A.k", CmpOp::Lt, "B.k"))
            .and(Pred::eq_attr("B.k", "A.k"));
        let (pairs, residual) = split_equi(&pred, &l, &r);
        assert_eq!(pairs.len(), 2);
        // Pairs are normalized (left attr first).
        assert!(pairs.iter().all(|(a, _)| a.rel() == "A"));
        assert_eq!(residual.conjuncts().len(), 1);
    }

    #[test]
    fn lower_prefers_index_join_on_base_right() {
        let cat = catalog();
        let q = Query::rel("A").join(Query::rel("B"), Pred::eq_attr("A.k", "B.k"));
        let plan = lower(&q, &cat).unwrap();
        assert!(matches!(plan, PhysPlan::IndexJoin { .. }), "{plan}");
    }

    #[test]
    fn lower_falls_back_to_hash_join() {
        let mut cat = catalog();
        // Remove B's index by rebuilding the catalog entry.
        cat.add_table("B", Arc::new(Schema::of_relation("B", &["k"])), 100);
        let q = Query::rel("A").join(Query::rel("B"), Pred::eq_attr("A.k", "B.k"));
        let plan = lower(&q, &cat).unwrap();
        assert!(matches!(plan, PhysPlan::HashJoin { .. }), "{plan}");
    }

    #[test]
    fn lower_nl_join_for_theta() {
        let cat = catalog();
        let q = Query::rel("A").join(Query::rel("B"), Pred::cmp_attr("A.k", CmpOp::Gt, "B.k"));
        let plan = lower(&q, &cat).unwrap();
        assert!(matches!(plan, PhysPlan::NlJoin { .. }));
    }

    #[test]
    fn lower_outerjoin_keeps_direction() {
        let cat = catalog();
        let q = Query::rel("A").outerjoin(Query::rel("B"), Pred::eq_attr("A.k", "B.k"));
        let plan = lower(&q, &cat).unwrap();
        match plan {
            PhysPlan::IndexJoin { kind, .. } => assert_eq!(kind, JoinKind::LeftOuter),
            other => panic!("unexpected plan {other}"),
        }
    }

    #[test]
    fn lower_composite_right_side_uses_hash() {
        let cat = catalog();
        let q = Query::rel("A").join(
            Query::rel("B").join(Query::rel("C"), Pred::eq_attr("B.k", "C.k")),
            Pred::eq_attr("A.k", "B.k"),
        );
        let plan = lower(&q, &cat).unwrap();
        assert!(matches!(plan, PhysPlan::HashJoin { .. }));
    }

    #[test]
    fn union_unsupported() {
        let cat = catalog();
        let q = Query::rel("A").union(Query::rel("B"));
        assert!(matches!(lower(&q, &cat), Err(OptError::Unsupported(_))));
    }

    #[test]
    fn restrict_project_goj_lower() {
        let cat = catalog();
        let q = Query::rel("A")
            .goj(
                Query::rel("B"),
                Pred::eq_attr("A.k", "B.k"),
                vec![Attr::parse("A.k")],
            )
            .restrict(Pred::cmp_lit("A.k", CmpOp::Gt, 0))
            .project(vec![Attr::parse("A.k")]);
        let plan = lower(&q, &cat).unwrap();
        let text = plan.explain();
        assert!(text.contains("Project"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Goj"));
    }
}
