//! Dynamic programming over the connected subsets of a query graph —
//! the §6.1 recipe: *"Optimizers already implement a query graph by
//! generating expression trees with different associations of the
//! graph edges; now it must fill in Join or else Outerjoin (preserving
//! the operator direction)."*
//!
//! Every csg–cmp pair whose cut is implementable (all-join crossing
//! edges, or a single outerjoin edge) is considered; free
//! reorderability (Theorem 1) is exactly the licence that makes every
//! such plan correct, so the DP needs no validity analysis beyond the
//! cut classification itself.
//!
//! The memo is keyed on [`RelSet`] and every per-cut question
//! (classification, key pairs, selectivities, index preconditions) is
//! answered by the shared [`super::cuts`] machinery — candidate plans
//! are costed arithmetically and a [`PhysPlan`] is built only for the
//! per-subset winner, so the inner loop touches no strings and clones
//! no plans.

use super::cuts::{best_shape, materialize, Candidate, CutClass, CutCtx};
use super::plancache::{CacheCtx, CacheStats, CachedEntry};
use super::stats::Catalog;
use super::OptError;
use fro_algebra::{RelId, RelSet};
use fro_exec::{JoinKind, PhysPlan};
use fro_graph::QueryGraph;
use std::collections::HashMap;
use std::sync::Arc;

/// The DP's per-subset best plan (also reused by the greedy
/// heuristic).
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub(crate) plan: PhysPlan,
    pub(crate) cost: f64,
    pub(crate) rows: f64,
    /// `Some(id)` when the plan is a bare scan of one catalog-known
    /// base table — the precondition for turning it into an index-join
    /// inner side.
    pub(crate) base: Option<RelId>,
}

/// The final plan chosen by [`dp_optimize`].
#[derive(Debug, Clone)]
pub struct DpResult {
    /// The chosen physical plan.
    pub plan: PhysPlan,
    /// Its estimated cost (tuples touched).
    pub cost: f64,
    /// Its estimated output cardinality.
    pub rows: f64,
    /// Number of csg–cmp pairs examined (plan-space size indicator).
    /// Zero on a full cache hit: nothing was enumerated.
    pub pairs_examined: u64,
    /// Plan-cache accounting for this optimization.
    pub cache: CacheStats,
}

/// Exhaustive-DP node limit (3^n csg–cmp pairs).
pub const DP_MAX_NODES: usize = 18;

/// Optimize a (freely-reorderable) query graph by exhaustive DP,
/// without consulting the plan cache.
///
/// # Errors
/// [`OptError::Unsupported`] beyond [`DP_MAX_NODES`] relations;
/// [`OptError::Disconnected`] when no implementing tree exists.
pub fn dp_optimize(g: &QueryGraph, catalog: &Catalog) -> Result<DpResult, OptError> {
    dp_optimize_with(g, catalog, None)
}

/// [`dp_optimize`], threading the catalog's plan cache: with a
/// [`CacheCtx`] every connected subset is looked up before its cuts
/// are enumerated and each per-subset winner is inserted after. A hit
/// on the full set short-circuits the whole DP (zero csg–cmp pairs).
///
/// # Errors
/// Same failure modes as [`dp_optimize`].
pub fn dp_optimize_with(
    g: &QueryGraph,
    catalog: &Catalog,
    cache: Option<&CacheCtx>,
) -> Result<DpResult, OptError> {
    let n = g.n_nodes();
    if n > DP_MAX_NODES {
        return Err(OptError::Unsupported(format!(
            "exhaustive DP capped at {DP_MAX_NODES} relations; query has {n}"
        )));
    }
    let full = RelSet::full(n);
    if !g.connected_in(full) {
        return Err(OptError::Disconnected);
    }

    // Effective epoch: structural epoch + row-content versions of the
    // relations this graph reads, so a row append elsewhere does not
    // evict this graph's plans.
    let epoch = catalog.epoch_for_graph(g);
    let pc = catalog.plan_cache();
    let mut cstats = CacheStats::default();
    // Full-set fast path: a repeated query costs one hash probe.
    if let Some(cctx) = cache {
        if let Some(hit) = pc.lookup(cctx, full, epoch, &mut cstats) {
            return Ok(DpResult {
                plan: hit.plan.clone(),
                cost: hit.cost,
                rows: hit.rows,
                pairs_examined: 0,
                cache: cstats,
            });
        }
    }

    let mut ctx = CutCtx::new(g, catalog);
    let mut table: HashMap<RelSet, Entry> = HashMap::new();
    for i in 0..n {
        let name = g.node_name(i);
        let rows = catalog.rows_of(name) as f64;
        table.insert(
            RelSet::singleton(i),
            Entry {
                plan: PhysPlan::scan(name.to_owned()),
                cost: rows,
                rows,
                base: catalog.rel_id(name),
            },
        );
    }

    let mut pairs_examined = 0u64;
    // Enumerate subsets in increasing-cardinality order.
    let mut subsets: Vec<u64> = (1..=full.bits())
        .filter(|m| m & full.bits() == *m)
        .collect();
    subsets.sort_by_key(|m| m.count_ones());
    for &bits in &subsets {
        let s = RelSet::from_bits(bits);
        if s.len() < 2 || !g.connected_in(s) {
            continue;
        }
        // Consult the cache before enumerating this subset's cuts.
        if let Some(cctx) = cache {
            if let Some(hit) = pc.lookup(cctx, s, epoch, &mut cstats) {
                table.insert(s, hit.to_entry());
                continue;
            }
        }
        // Best candidate over every cut of `s`, as pure arithmetic:
        // (candidate, probe side, build side). Only the winner is
        // materialized into a plan, below.
        let mut best: Option<(Candidate, RelSet, RelSet)> = None;
        let consider = |best: &mut Option<(Candidate, RelSet, RelSet)>,
                        cand: Candidate,
                        p: RelSet,
                        b: RelSet| {
            if best.as_ref().is_none_or(|(bc, _, _)| cand.cost < bc.cost) {
                *best = Some((cand, p, b));
            }
        };
        for left in s.anchored_proper_subsets() {
            let right = s.minus(left);
            if !g.connected_in(left) || !g.connected_in(right) {
                continue;
            }
            let (Some(le), Some(re)) = (table.get(&left), table.get(&right)) else {
                continue;
            };
            let lo_is_left = left.bits() <= right.bits();
            let info = ctx.info(left, right);
            match info.class {
                CutClass::None => {}
                CutClass::Joins => {
                    pairs_examined += 1;
                    for (pset, pe, bset, be, probe_is_lo) in [
                        (left, le, right, re, lo_is_left),
                        (right, re, left, le, !lo_is_left),
                    ] {
                        let cand = best_shape(info, pe, be, probe_is_lo, JoinKind::Inner);
                        consider(&mut best, cand, pset, bset);
                    }
                }
                CutClass::OuterjoinProbeLo | CutClass::OuterjoinProbeHi => {
                    pairs_examined += 1;
                    let probe_is_lo = info.class == CutClass::OuterjoinProbeLo;
                    let (pset, pe, bset, be) = if probe_is_lo == lo_is_left {
                        (left, le, right, re)
                    } else {
                        (right, re, left, le)
                    };
                    let cand = best_shape(info, pe, be, probe_is_lo, JoinKind::LeftOuter);
                    consider(&mut best, cand, pset, bset);
                }
            }
        }
        if let Some((cand, pset, bset)) = best {
            let info = ctx.info(pset, bset);
            let entry = materialize(cand, info, &table[&pset], &table[&bset], catalog);
            if let Some(cctx) = cache {
                pc.insert(
                    cctx,
                    s,
                    Arc::new(CachedEntry::from_entry(&entry, epoch)),
                    &mut cstats,
                );
            }
            table.insert(s, entry);
        }
    }

    table
        .remove(&full)
        .map(|e| DpResult {
            plan: e.plan,
            cost: e.cost,
            rows: e.rows,
            pairs_examined,
            cache: cstats,
        })
        .ok_or_else(|| {
            OptError::Unsupported("no implementable association found for the full graph".into())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::{Attr, Pred, Schema};
    use std::sync::Arc;

    fn example1_graph() -> QueryGraph {
        let mut g = QueryGraph::new(vec!["R1".into(), "R2".into(), "R3".into()]);
        g.add_join_edge(0, 1, Pred::eq_attr("R1.k1", "R2.k2"))
            .unwrap();
        g.add_outerjoin_edge(1, 2, Pred::eq_attr("R2.k2", "R3.k3"))
            .unwrap();
        g
    }

    fn example1_catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, attr, rows) in [
            ("R1", "k1", 1u64),
            ("R2", "k2", 10_000_000),
            ("R3", "k3", 10_000_000),
        ] {
            cat.add_table(name, Arc::new(Schema::of_relation(name, &[attr])), rows);
            cat.set_distinct(&Attr::new(name, attr), rows);
            cat.add_index(name, &[Attr::new(name, attr)]);
        }
        cat
    }

    #[test]
    fn example1_dp_drives_from_the_tiny_relation() {
        let g = example1_graph();
        let cat = example1_catalog();
        let result = dp_optimize(&g, &cat).unwrap();
        // The optimal plan starts at R1 (1 row) and index-joins out;
        // total cost is a handful of tuples, not 10^7.
        assert!(
            result.cost < 100.0,
            "expected near-constant cost, got {} for\n{}",
            result.cost,
            result.plan
        );
        let text = result.plan.explain();
        assert!(text.contains("Scan R1"), "{text}");
        assert!(!text.contains("Scan R2"), "must not scan R2:\n{text}");
        assert!(!text.contains("Scan R3"), "must not scan R3:\n{text}");
    }

    #[test]
    fn dp_respects_outerjoin_direction() {
        let g = example1_graph();
        let cat = example1_catalog();
        let result = dp_optimize(&g, &cat).unwrap();
        fn count_left_outer(p: &PhysPlan) -> usize {
            match p {
                PhysPlan::IndexJoin { kind, outer, .. } => {
                    usize::from(*kind == JoinKind::LeftOuter) + count_left_outer(outer)
                }
                PhysPlan::HashJoin {
                    kind, probe, build, ..
                } => {
                    usize::from(*kind == JoinKind::LeftOuter)
                        + count_left_outer(probe)
                        + count_left_outer(build)
                }
                PhysPlan::NlJoin {
                    kind, left, right, ..
                } => {
                    usize::from(*kind == JoinKind::LeftOuter)
                        + count_left_outer(left)
                        + count_left_outer(right)
                }
                _ => 0,
            }
        }
        assert_eq!(count_left_outer(&result.plan), 1);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let g = QueryGraph::new(vec!["A".into(), "B".into()]);
        let cat = Catalog::new();
        assert!(matches!(dp_optimize(&g, &cat), Err(OptError::Disconnected)));
    }

    #[test]
    fn too_many_nodes_rejected() {
        let names: Vec<String> = (0..=DP_MAX_NODES).map(|i| format!("R{i}")).collect();
        let mut g = QueryGraph::new(names);
        for i in 0..DP_MAX_NODES {
            g.add_join_edge(
                i,
                i + 1,
                Pred::eq_attr(&format!("R{i}.k"), &format!("R{}.k", i + 1)),
            )
            .unwrap();
        }
        assert!(matches!(
            dp_optimize(&g, &Catalog::new()),
            Err(OptError::Unsupported(_))
        ));
    }

    #[test]
    fn theta_only_graph_uses_nested_loops() {
        let mut g = QueryGraph::new(vec!["A".into(), "B".into()]);
        g.add_join_edge(0, 1, Pred::cmp_attr("A.x", fro_algebra::CmpOp::Gt, "B.y"))
            .unwrap();
        let mut cat = Catalog::new();
        cat.add_table("A", Arc::new(Schema::of_relation("A", &["x"])), 10);
        cat.add_table("B", Arc::new(Schema::of_relation("B", &["y"])), 10);
        let r = dp_optimize(&g, &cat).unwrap();
        assert!(matches!(r.plan, PhysPlan::NlJoin { .. }));
    }

    #[test]
    fn warm_cache_skips_all_enumeration() {
        use crate::reorder::Policy;
        let g = example1_graph();
        let cat = example1_catalog();
        let cctx = CacheCtx::for_graph(&g, Policy::Paper);
        let cold = dp_optimize_with(&g, &cat, Some(&cctx)).unwrap();
        assert!(cold.pairs_examined > 0);
        assert_eq!(cold.cache.hits, 0);
        let warm = dp_optimize_with(&g, &cat, Some(&cctx)).unwrap();
        assert_eq!(
            warm.pairs_examined, 0,
            "full-set hit must enumerate nothing"
        );
        assert_eq!(warm.cache.hits, 1);
        assert_eq!(warm.plan.explain(), cold.plan.explain());
        assert!((warm.cost - cold.cost).abs() < 1e-12);
    }

    #[test]
    fn epoch_bump_invalidates_cached_plans() {
        use crate::reorder::Policy;
        use fro_algebra::Attr;
        let g = example1_graph();
        let mut cat = example1_catalog();
        let cctx = CacheCtx::for_graph(&g, Policy::Paper);
        dp_optimize_with(&g, &cat, Some(&cctx)).unwrap();
        // A stats change bumps the epoch: the warm entry is stale.
        cat.set_distinct(&Attr::parse("R2.k2"), 5);
        let replanned = dp_optimize_with(&g, &cat, Some(&cctx)).unwrap();
        assert!(replanned.pairs_examined > 0, "stale entries must re-plan");
        assert!(replanned.cache.stale >= 1);
    }

    #[test]
    fn pairs_examined_grows_with_chain_length() {
        let mut cat = Catalog::new();
        let mk = |n: usize| {
            let names: Vec<String> = (0..n).map(|i| format!("R{i}")).collect();
            let mut g = QueryGraph::new(names);
            for i in 0..n - 1 {
                g.add_join_edge(
                    i,
                    i + 1,
                    Pred::eq_attr(&format!("R{i}.k"), &format!("R{}.k", i + 1)),
                )
                .unwrap();
            }
            g
        };
        for i in 0..8 {
            cat.add_table(
                format!("R{i}"),
                Arc::new(Schema::of_relation(&format!("R{i}"), &["k"])),
                100,
            );
        }
        let small = dp_optimize(&mk(4), &cat).unwrap();
        let large = dp_optimize(&mk(8), &cat).unwrap();
        assert!(large.pairs_examined > small.pairs_examined);
    }
}
