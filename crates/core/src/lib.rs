//! # fro-core — freely-reorderable outerjoins
//!
//! The paper's primary contribution, as a library:
//!
//! * [`reorder`]: **Theorem 1** — a join/outerjoin query is freely
//!   reorderable when its query graph is *nice* (connected join core
//!   with outward outerjoin trees; equivalently no outerjoin cycles, no
//!   `X → Y − Z`, no `X → Y ← Z`) and its outerjoin predicates are
//!   *strong* (null-rejecting). Three strongness [`reorder::Policy`]s
//!   are provided: the theorem's statement (`Paper`), a conservative
//!   `Strict`, and the minimal condition identity 12 actually needs
//!   (`MinimalChain`); property tests validate all three against
//!   exhaustive implementing-tree enumeration.
//! * [`mod@simplify`]: the §4 simplification — predicates (restrictions or
//!   regular joins) that are strong on attributes of a null-supplied
//!   relation convert the outerjoins on the path to it into regular
//!   joins; plus the referential-integrity rewrite and its
//!   reorderability caveat.
//! * [`goj_reorder`]: the §6.2 generalized-outerjoin reassociations
//!   (identities 15 and 16) that recover reordering for shapes like
//!   Example 2's `X → (Y − Z)`, which free reorderability excludes.
//! * [`optimizer`]: a cost-based optimizer in the style the paper's
//!   §6.1 prescribes — dynamic programming over the connected subsets
//!   of the query graph, "filling in Join or else Outerjoin (preserving
//!   the operator direction)" at each cut, with hash-join /
//!   index-nested-loop physical choices and a tuples-retrieved cost
//!   model that reproduces Example 1's asymmetry exactly.

//! ## Example
//!
//! ```
//! use fro_algebra::{Pred, Query};
//! use fro_core::{analyze, optimize, Catalog, Policy};
//!
//! // Example 1's graph, written in the expensive association.
//! let q = Query::rel("R1").join(
//!     Query::rel("R2").outerjoin(Query::rel("R3"), Pred::eq_attr("R2.k2", "R3.k3")),
//!     Pred::eq_attr("R1.k1", "R2.k2"),
//! );
//! assert!(analyze(&q, Policy::Paper).is_freely_reorderable());
//!
//! // With statistics saying R1 is tiny, the optimizer reorders to
//! // drive from it.
//! let mut catalog = Catalog::new();
//! for (name, attr, rows) in [("R1", "k1", 1u64), ("R2", "k2", 1_000_000), ("R3", "k3", 1_000_000)] {
//!     catalog.add_table(name, std::sync::Arc::new(fro_algebra::Schema::of_relation(name, &[attr])), rows);
//!     catalog.set_distinct(&fro_algebra::Attr::new(name, attr), rows);
//!     catalog.add_index(name, &[fro_algebra::Attr::new(name, attr)]);
//! }
//! let plan = optimize(&q, &catalog, Policy::Paper).unwrap();
//! assert!(plan.reordered);
//! assert!(plan.est_cost < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod goj_reorder;
pub mod optimizer;
pub mod reorder;
pub mod simplify;

pub use fro_exec::ExecConfig;
pub use optimizer::{
    optimize, optimize_with_reduce, reduce_plan, Catalog, OptError, Optimized, ReducePolicy,
    ReductionReport,
};
pub use reorder::{analyze, is_freely_reorderable, Analysis, Policy, Violation};
pub use simplify::{simplify, SimplificationEvent};
