//! §4: Join/Outerjoin/Restrict queries — the simplification rule.
//!
//! > *"Suppose the query includes a predicate (restriction or regular
//! > join) that is strong in some attributes of relation R. Consider
//! > the path in the implementing tree going from that predicate to R.
//! > If an outerjoin is in that path and R is in its null-supplied
//! > subtree, then replace the operator by regular join. This
//! > simplification is carried out before creation of the query
//! > graph."*
//!
//! Intuition: a strong predicate discards the very tuples the
//! outerjoin's null-padding would introduce, so padding is wasted work
//! — regular join computes the same result, and regular joins reorder
//! more freely.
//!
//! The module also implements the §4 referential-integrity rewrite
//! (outerjoin → join when a constraint guarantees every tuple matches)
//! together with its caveat: the *resulting* query may leave the
//! freely-reorderable class, which [`apply_ri_constraint`] surfaces by
//! re-running the Theorem 1 analysis.

use crate::reorder::{analyze, Analysis, Policy};
use fro_algebra::{Pred, Query};
use std::collections::BTreeSet;
use std::fmt;

/// A record of one outerjoin converted to a join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimplificationEvent {
    /// Relations of the preserved subtree.
    pub preserved: BTreeSet<String>,
    /// Relations of the null-supplied subtree.
    pub null_supplied: BTreeSet<String>,
    /// The relation whose strong demand triggered the conversion.
    pub demanded: String,
    /// The outerjoin predicate (rendered) of the converted operator.
    pub pred: String,
}

impl fmt::Display for SimplificationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "outerjoin toward {{{}}} converted to join (strong demand on {})",
            self.null_supplied
                .iter()
                .cloned()
                .collect::<Vec<_>>()
                .join(","),
            self.demanded
        )
    }
}

/// The ground relations on which `pred` is strong.
fn strong_rels(pred: &Pred) -> BTreeSet<String> {
    pred.rels()
        .into_iter()
        .filter(|r| pred.is_strong_on_rel(r))
        .collect()
}

/// Apply the §4 simplification rule to fixpoint: walking top-down with
/// the set of relations demanded non-null by enclosing strong
/// restriction/join predicates, convert every outerjoin whose
/// null-supplied subtree contains a demanded relation into a join (the
/// new join's own strong predicates then extend the demand set for the
/// subtrees below it).
#[must_use]
pub fn simplify(q: &Query) -> (Query, Vec<SimplificationEvent>) {
    let mut events = Vec::new();
    let out = walk(q, &BTreeSet::new(), &mut events);
    (out, events)
}

fn walk(q: &Query, required: &BTreeSet<String>, events: &mut Vec<SimplificationEvent>) -> Query {
    match q {
        Query::Restrict { input, pred } => {
            let mut req = required.clone();
            req.extend(strong_rels(pred));
            Query::Restrict {
                input: Box::new(walk(input, &req, events)),
                pred: pred.clone(),
            }
        }
        Query::Join { left, right, pred } => {
            let mut req = required.clone();
            req.extend(strong_rels(pred));
            Query::Join {
                left: Box::new(walk(left, &req, events)),
                right: Box::new(walk(right, &req, events)),
                pred: pred.clone(),
            }
        }
        Query::FullOuterJoin { left, right, pred } => {
            // §4: "A similar argument can be used to convert 2-sided
            // outerjoin to one-sided outerjoin." A strong demand on one
            // side kills that side's padding: demand on the left keeps
            // only right-preserving behavior (and vice versa); demands
            // on both sides reduce to a regular join.
            let dl = required.iter().any(|r| left.rels().contains(r));
            let dr = required.iter().any(|r| right.rels().contains(r));
            let demanded_rel = |side: &Query| {
                required
                    .iter()
                    .find(|r| side.rels().contains(*r))
                    .cloned()
                    .unwrap_or_default()
            };
            match (dl, dr) {
                (true, true) => {
                    events.push(SimplificationEvent {
                        preserved: BTreeSet::new(),
                        null_supplied: left.rels().union(&right.rels()).cloned().collect(),
                        demanded: demanded_rel(left),
                        pred: pred.to_string(),
                    });
                    walk(
                        &Query::Join {
                            left: left.clone(),
                            right: right.clone(),
                            pred: pred.clone(),
                        },
                        required,
                        events,
                    )
                }
                (true, false) => {
                    // A strong demand on the left kills exactly the
                    // rows where the left side is padded (the
                    // right-unmatched ones): keep the left-preserving
                    // half, left → right.
                    events.push(SimplificationEvent {
                        preserved: left.rels(),
                        null_supplied: right.rels(),
                        demanded: demanded_rel(left),
                        pred: pred.to_string(),
                    });
                    walk(
                        &Query::OuterJoin {
                            left: left.clone(),
                            right: right.clone(),
                            pred: pred.clone(),
                        },
                        required,
                        events,
                    )
                }
                (false, true) => {
                    // Mirror image: keep the right-preserving half.
                    events.push(SimplificationEvent {
                        preserved: right.rels(),
                        null_supplied: left.rels(),
                        demanded: demanded_rel(right),
                        pred: pred.to_string(),
                    });
                    walk(
                        &Query::OuterJoin {
                            left: right.clone(),
                            right: left.clone(),
                            pred: pred.clone(),
                        },
                        required,
                        events,
                    )
                }
                (false, false) => Query::FullOuterJoin {
                    left: Box::new(walk(left, required, events)),
                    right: Box::new(walk(right, required, events)),
                    pred: pred.clone(),
                },
            }
        }
        Query::OuterJoin { left, right, pred } => {
            let ns_rels = right.rels();
            if let Some(demanded) = required.iter().find(|r| ns_rels.contains(*r)) {
                events.push(SimplificationEvent {
                    preserved: left.rels(),
                    null_supplied: ns_rels.clone(),
                    demanded: demanded.clone(),
                    pred: pred.to_string(),
                });
                // Reprocess as a join: its predicate now also filters.
                let as_join = Query::Join {
                    left: left.clone(),
                    right: right.clone(),
                    pred: pred.clone(),
                };
                walk(&as_join, required, events)
            } else {
                // Outerjoin predicates do not generate demands: padded
                // tuples bypass them entirely.
                Query::OuterJoin {
                    left: Box::new(walk(left, required, events)),
                    right: Box::new(walk(right, required, events)),
                    pred: pred.clone(),
                }
            }
        }
        Query::SemiJoin { left, right, pred } => {
            // A semijoin behaves like a join for the demand on its
            // probe side, but its right side does not reach the output.
            let mut req = required.clone();
            req.extend(strong_rels(pred));
            Query::SemiJoin {
                left: Box::new(walk(left, &req, events)),
                right: Box::new(walk(right, &req, events)),
                pred: pred.clone(),
            }
        }
        Query::Project { input, attrs } => Query::Project {
            input: Box::new(walk(input, required, events)),
            attrs: attrs.clone(),
        },
        // Antijoin/union/GOJ: no demand propagation (antijoin keeps the
        // *non*-matching tuples, so a strong predicate does not demand
        // non-null attributes below it; unions merge branches).
        other => other.clone(),
    }
}

/// The §4 referential-integrity rewrite: replace the outerjoin whose
/// preserved side contains `preserved` and whose null-supplied side
/// contains `null_supplied` by a regular join (justified only when a
/// constraint guarantees every preserved tuple has a match). Returns
/// the rewritten query and its fresh reorderability analysis — the
/// paper's warning is that this rewrite can leave the
/// freely-reorderable class (e.g. `R1 → R2 → R3` becoming
/// `R1 → (R2 − R3)`).
#[must_use]
pub fn apply_ri_constraint(
    q: &Query,
    preserved: &str,
    null_supplied: &str,
    policy: Policy,
) -> (Query, Analysis) {
    fn rewrite(q: &Query, preserved: &str, null_supplied: &str) -> Query {
        match q {
            Query::OuterJoin { left, right, pred }
                if left.rels().contains(preserved) && right.rels().contains(null_supplied) =>
            {
                Query::Join {
                    left: Box::new(rewrite(left, preserved, null_supplied)),
                    right: Box::new(rewrite(right, preserved, null_supplied)),
                    pred: pred.clone(),
                }
            }
            Query::Join { left, right, pred } => Query::Join {
                left: Box::new(rewrite(left, preserved, null_supplied)),
                right: Box::new(rewrite(right, preserved, null_supplied)),
                pred: pred.clone(),
            },
            Query::OuterJoin { left, right, pred } => Query::OuterJoin {
                left: Box::new(rewrite(left, preserved, null_supplied)),
                right: Box::new(rewrite(right, preserved, null_supplied)),
                pred: pred.clone(),
            },
            other => other.clone(),
        }
    }
    let out = rewrite(q, preserved, null_supplied);
    let analysis = analyze(&out, policy);
    (out, analysis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::{CmpOp, Database, Relation};

    fn p(a: &str, b: &str) -> Pred {
        Pred::eq_attr(&format!("{a}.k{a}"), &format!("{b}.k{b}"))
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(Relation::from_ints("A", &["kA"], &[&[1], &[2]]));
        db.insert(Relation::from_ints("B", &["kB"], &[&[1], &[3]]));
        db.insert(Relation::from_ints("C", &["kC"], &[&[1], &[4]]));
        db
    }

    #[test]
    fn strong_restriction_converts_outerjoin() {
        // σ[B.kB > 0](A → B): the restriction is strong on B, B is
        // null-supplied ⇒ A − B.
        let q = Query::rel("A")
            .outerjoin(Query::rel("B"), p("A", "B"))
            .restrict(Pred::cmp_lit("B.kB", CmpOp::Gt, 0));
        let (s, events) = simplify(&q);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].demanded, "B");
        assert_eq!(s.shape(), "σ((A − B))");
        // Semantics preserved.
        let d = db();
        assert!(q.eval(&d).unwrap().set_eq(&s.eval(&d).unwrap()));
    }

    #[test]
    fn restriction_on_preserved_side_keeps_outerjoin() {
        let q = Query::rel("A")
            .outerjoin(Query::rel("B"), p("A", "B"))
            .restrict(Pred::cmp_lit("A.kA", CmpOp::Gt, 0));
        let (s, events) = simplify(&q);
        assert!(events.is_empty());
        assert_eq!(s.shape(), "σ((A → B))");
    }

    #[test]
    fn is_null_restriction_does_not_convert() {
        // σ[B.kB IS NULL](A → B) keeps only padded tuples — converting
        // would be wrong, and IS NULL is not strong.
        let q = Query::rel("A")
            .outerjoin(Query::rel("B"), p("A", "B"))
            .restrict(Pred::is_null("B.kB"));
        let (s, events) = simplify(&q);
        assert!(events.is_empty());
        assert_eq!(s.shape(), "σ((A → B))");
    }

    #[test]
    fn join_predicate_demand_converts_deeper_outerjoin() {
        // Example 2 shape arising from a join above an outerjoin:
        // (A → B) − C with the join predicate strong on B.
        let q = Query::rel("A")
            .outerjoin(Query::rel("B"), p("A", "B"))
            .join(Query::rel("C"), p("B", "C"));
        let (s, events) = simplify(&q);
        assert_eq!(events.len(), 1);
        assert_eq!(s.shape(), "((A − B) − C)");
        let d = db();
        assert!(q.eval(&d).unwrap().set_eq(&s.eval(&d).unwrap()));
        // The simplified query is now freely reorderable.
        assert!(crate::reorder::is_freely_reorderable(&s));
    }

    #[test]
    fn conversion_cascades_through_chains() {
        // σ[C.kC > 0](A → (B → C)): demand on C converts the inner
        // outerjoin; the inner join's predicate (strong on B) then
        // demands B, converting the outer one too.
        let q = Query::rel("A")
            .outerjoin(
                Query::rel("B").outerjoin(Query::rel("C"), p("B", "C")),
                p("A", "B"),
            )
            .restrict(Pred::cmp_lit("C.kC", CmpOp::Gt, 0));
        let (s, events) = simplify(&q);
        assert_eq!(events.len(), 2);
        assert_eq!(s.shape(), "σ((A − (B − C)))");
        let d = db();
        assert!(q.eval(&d).unwrap().set_eq(&s.eval(&d).unwrap()));
    }

    #[test]
    fn demand_does_not_leak_into_preserved_chain() {
        // σ[C.kC > 0]((A → B) − C): demand on C only; B stays padded.
        let q = Query::rel("A")
            .outerjoin(Query::rel("B"), p("A", "B"))
            .join(Query::rel("C"), p("A", "C"))
            .restrict(Pred::cmp_lit("C.kC", CmpOp::Gt, 0));
        let (s, events) = simplify(&q);
        assert!(events.is_empty(), "{events:?}");
        assert_eq!(s.shape(), "σ(((A → B) − C))");
    }

    #[test]
    fn weak_join_predicate_generates_no_demand() {
        // Join predicate `B.kB = C.kC OR B.kB IS NULL` is weak on B:
        // the outerjoin below must survive.
        let weak = Pred::eq_attr("B.kB", "C.kC").or(Pred::is_null("B.kB"));
        let q = Query::rel("A")
            .outerjoin(Query::rel("B"), p("A", "B"))
            .join(Query::rel("C"), weak);
        let (s, events) = simplify(&q);
        assert!(events.is_empty());
        assert!(s.shape().contains('→'));
    }

    #[test]
    fn full_outerjoin_converts_per_section_4() {
        let d = db();
        // Demand on the right side keeps the right-preserving half:
        // full → (B → A).
        let q = Query::rel("A")
            .full_outerjoin(Query::rel("B"), p("A", "B"))
            .restrict(Pred::cmp_lit("B.kB", CmpOp::Gt, 0));
        let (s, events) = simplify(&q);
        assert_eq!(events.len(), 1);
        assert_eq!(s.shape(), "σ((B → A))");
        assert!(q.eval(&d).unwrap().set_eq(&s.eval(&d).unwrap()));

        // Demand on the left side keeps the left-preserving half.
        let q = Query::rel("A")
            .full_outerjoin(Query::rel("B"), p("A", "B"))
            .restrict(Pred::cmp_lit("A.kA", CmpOp::Gt, 0));
        let (s, events) = simplify(&q);
        assert_eq!(events.len(), 1);
        assert_eq!(s.shape(), "σ((A → B))");
        assert!(q.eval(&d).unwrap().set_eq(&s.eval(&d).unwrap()));

        // Demands on both sides: full → regular join.
        let q = Query::rel("A")
            .full_outerjoin(Query::rel("B"), p("A", "B"))
            .restrict(Pred::cmp_lit("A.kA", CmpOp::Gt, 0).and(Pred::cmp_lit("B.kB", CmpOp::Gt, 0)));
        let (s, _) = simplify(&q);
        assert_eq!(s.shape(), "σ((A − B))");
        assert!(q.eval(&d).unwrap().set_eq(&s.eval(&d).unwrap()));

        // No demand: full outerjoin survives.
        let q = Query::rel("A").full_outerjoin(Query::rel("B"), p("A", "B"));
        let (s, events) = simplify(&q);
        assert!(events.is_empty());
        assert_eq!(s.shape(), "(A ↔ B)");
    }

    #[test]
    fn full_outerjoin_eval_matches_union_of_sides() {
        // A ↔ B = (A → B) ∪ (B → A) under the padding convention.
        let d = db();
        let full = Query::rel("A")
            .full_outerjoin(Query::rel("B"), p("A", "B"))
            .eval(&d)
            .unwrap();
        let left = Query::rel("A")
            .outerjoin(Query::rel("B"), p("A", "B"))
            .eval(&d)
            .unwrap();
        let right = Query::rel("B")
            .outerjoin(Query::rel("A"), p("A", "B"))
            .eval(&d)
            .unwrap();
        let union = fro_algebra::ops::union(&left, &right).unwrap();
        assert!(full.set_eq(&union));
    }

    #[test]
    fn ri_rewrite_can_break_reorderability() {
        // R1 → R2 → R3 is freely reorderable; replacing R2 → R3 by a
        // join (RI constraint) yields R1 → (R2 − R3): not reorderable.
        let q = Query::rel("R1").outerjoin(
            Query::rel("R2").outerjoin(Query::rel("R3"), p("R2", "R3")),
            p("R1", "R2"),
        );
        assert!(crate::reorder::is_freely_reorderable(&q));
        let (rw, analysis) = apply_ri_constraint(&q, "R2", "R3", Policy::Paper);
        assert_eq!(rw.shape(), "(R1 → (R2 − R3))");
        assert!(!analysis.is_freely_reorderable());
    }

    #[test]
    fn simplification_preserves_free_reorderability_conjecture_probe() {
        // §4 conjecture: restrictions applied after all outerjoins, to
        // a freely-reorderable query, cannot *introduce* violations.
        // Probe a family of shapes.
        let base = Query::rel("A")
            .join(Query::rel("B"), p("A", "B"))
            .outerjoin(Query::rel("C"), p("B", "C"))
            .outerjoin(Query::rel("D"), p("C", "D"));
        assert!(crate::reorder::is_freely_reorderable(&base));
        for attr in ["A.kA", "B.kB", "C.kC", "D.kD"] {
            let q = base.clone().restrict(Pred::cmp_lit(attr, CmpOp::Gt, 0));
            let (s, _) = simplify(&q);
            // Strip the top restriction before the OJ/J analysis.
            let inner = match s {
                Query::Restrict { input, .. } => *input,
                other => other,
            };
            assert!(
                crate::reorder::is_freely_reorderable(&inner),
                "restriction on {attr} broke reorderability"
            );
        }
    }
}
