//! In-memory storage: named tables plus their hash indexes.

use crate::index::HashIndex;
use fro_algebra::{Attr, Database, Relation};
use std::collections::BTreeMap;

/// A stored base table: the relation plus any indexes built on it.
#[derive(Debug, Clone)]
pub struct Table {
    rel: Relation,
    indexes: Vec<HashIndex>,
}

impl Table {
    /// Wrap a relation with no indexes.
    #[must_use]
    pub fn new(rel: Relation) -> Table {
        Table {
            rel,
            indexes: Vec::new(),
        }
    }

    /// The underlying relation.
    #[must_use]
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// Build (or rebuild) an index on the given attributes.
    ///
    /// Returns `false` (building nothing) if any attribute is missing.
    pub fn create_index(&mut self, attrs: &[Attr]) -> bool {
        let mut cols = Vec::with_capacity(attrs.len());
        for a in attrs {
            match self.rel.schema().index_of(a) {
                Some(c) => cols.push(c),
                None => return false,
            }
        }
        cols.sort_unstable();
        self.indexes.push(HashIndex::build(&self.rel, cols));
        true
    }

    /// All indexes on this table.
    #[must_use]
    pub fn indexes(&self) -> &[HashIndex] {
        &self.indexes
    }

    /// An index whose key columns exactly match `cols` (sorted).
    #[must_use]
    pub fn index_on(&self, cols: &[usize]) -> Option<&HashIndex> {
        let mut want = cols.to_vec();
        want.sort_unstable();
        self.indexes.iter().find(|ix| ix.key_cols() == want)
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }
}

/// A set of named tables.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    tables: BTreeMap<String, Table>,
}

impl Storage {
    /// Empty storage.
    #[must_use]
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Load every relation of a [`Database`] as an unindexed table.
    #[must_use]
    pub fn from_database(db: &Database) -> Storage {
        let mut s = Storage::new();
        for (name, rel) in db.iter() {
            s.tables.insert(name.to_owned(), Table::new(rel.clone()));
        }
        s
    }

    /// Export as a [`Database`] (for cross-checking against the
    /// reference evaluator).
    #[must_use]
    pub fn to_database(&self) -> Database {
        let mut db = Database::new();
        for (name, t) in &self.tables {
            db.insert_named(name.clone(), t.relation().clone());
        }
        db
    }

    /// Register a table.
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) -> &mut Table {
        let name = name.into();
        self.tables.insert(name.clone(), Table::new(rel));
        self.tables.get_mut(&name).expect("just inserted")
    }

    /// Look up a table.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable access (e.g. to add indexes).
    #[must_use]
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Create an index on `rel_name(attrs…)`; `false` if missing.
    pub fn create_index(&mut self, rel_name: &str, attrs: &[Attr]) -> bool {
        self.tables
            .get_mut(rel_name)
            .is_some_and(|t| t.create_index(attrs))
    }

    /// Iterate `(name, table)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Table)> {
        self.tables.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_database() {
        let mut db = Database::new();
        db.insert(Relation::from_ints("R", &["a"], &[&[1], &[2]]));
        let s = Storage::from_database(&db);
        assert_eq!(s.get("R").unwrap().len(), 2);
        let back = s.to_database();
        assert!(back.get("R").unwrap().set_eq(db.get("R").unwrap()));
    }

    #[test]
    fn index_creation_and_lookup() {
        let mut s = Storage::new();
        s.insert(
            "R",
            Relation::from_ints("R", &["k", "v"], &[&[1, 5], &[2, 6]]),
        );
        assert!(s.create_index("R", &[Attr::parse("R.k")]));
        assert!(!s.create_index("R", &[Attr::parse("R.zzz")]));
        assert!(!s.create_index("Q", &[Attr::parse("Q.k")]));
        let t = s.get("R").unwrap();
        assert!(t.index_on(&[0]).is_some());
        assert!(t.index_on(&[1]).is_none());
    }

    #[test]
    fn table_empty_check() {
        let t = Table::new(Relation::from_ints("R", &["a"], &[]));
        assert!(t.is_empty());
    }
}
