//! In-memory storage: tables plus their hash indexes, resolved through
//! a dense `RelId → Table` vector.
//!
//! Names are interned exactly once, at [`Storage::insert`]; every later
//! lookup is an array index. The name-keyed API ([`Storage::get`] and
//! friends) survives as a thin compatibility shim over the interner,
//! and failed lookups come back with a nearest-name suggestion.

use crate::engine::ExecError;
use crate::index::HashIndex;
use fro_algebra::{Attr, Database, Interner, RelId, Relation};

/// A stored base table: the relation plus any indexes built on it.
#[derive(Debug, Clone)]
pub struct Table {
    rel: Relation,
    indexes: Vec<HashIndex>,
}

impl Table {
    /// Wrap a relation with no indexes.
    #[must_use]
    pub fn new(rel: Relation) -> Table {
        Table {
            rel,
            indexes: Vec::new(),
        }
    }

    /// The underlying relation.
    #[must_use]
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// Build (or rebuild) an index on the given attributes.
    ///
    /// Returns `false` (building nothing) if any attribute is missing.
    pub fn create_index(&mut self, attrs: &[Attr]) -> bool {
        let mut cols = Vec::with_capacity(attrs.len());
        for a in attrs {
            match self.rel.schema().index_of(a) {
                Some(c) => cols.push(c),
                None => return false,
            }
        }
        cols.sort_unstable();
        self.indexes.push(HashIndex::build(&self.rel, cols));
        true
    }

    /// All indexes on this table.
    #[must_use]
    pub fn indexes(&self) -> &[HashIndex] {
        &self.indexes
    }

    /// An index whose key columns exactly match `cols` (sorted).
    #[must_use]
    pub fn index_on(&self, cols: &[usize]) -> Option<&HashIndex> {
        let mut want = cols.to_vec();
        want.sort_unstable();
        self.indexes.iter().find(|ix| ix.key_cols() == want)
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }
}

/// A set of tables, stored densely by [`RelId`] with an interner
/// owning the name mapping.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    interner: Interner,
    tables: Vec<Table>,
}

impl Storage {
    /// Empty storage.
    #[must_use]
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Load every relation of a [`Database`] as an unindexed table.
    #[must_use]
    pub fn from_database(db: &Database) -> Storage {
        let mut s = Storage::new();
        for (name, rel) in db.iter() {
            s.insert(name, rel.clone());
        }
        s
    }

    /// Export as a [`Database`] (for cross-checking against the
    /// reference evaluator).
    #[must_use]
    pub fn to_database(&self) -> Database {
        let mut db = Database::new();
        for (name, t) in self.iter() {
            db.insert_named(name.to_owned(), t.relation().clone());
        }
        db
    }

    /// Register a table: interns the name (once) and places the table
    /// in the dense slot its [`RelId`] names. Re-inserting a name
    /// replaces the table under the same id.
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) -> &mut Table {
        let name = name.into();
        let id = self.interner.register_relation(&name, rel.schema());
        let table = Table::new(rel);
        if id.index() == self.tables.len() {
            self.tables.push(table);
        } else {
            self.tables[id.index()] = table;
        }
        &mut self.tables[id.index()]
    }

    /// The interner owning this storage's name ↔ id mapping.
    #[must_use]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Resolve a table name to its dense id.
    #[must_use]
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.interner.rel_id(name)
    }

    /// Look up a table by dense id — the hot path: one bounds-checked
    /// array read, no hashing, no string compare.
    #[must_use]
    pub fn get_by_id(&self, id: RelId) -> Option<&Table> {
        self.tables.get(id.index())
    }

    /// Look up a table by name (compatibility shim over the interner).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.rel_id(name).and_then(|id| self.get_by_id(id))
    }

    /// Look up a table by name, producing a diagnosable error on a
    /// miss: the unknown name plus the nearest catalog name (by edit
    /// distance), when one is plausibly close.
    ///
    /// # Errors
    /// [`ExecError::UnknownTable`] when the name is not interned.
    pub fn lookup(&self, name: &str) -> Result<&Table, ExecError> {
        self.get(name).ok_or_else(|| ExecError::UnknownTable {
            name: name.to_owned(),
            suggestion: self.interner.suggest(name).map(str::to_owned),
        })
    }

    /// Mutable access (e.g. to add indexes).
    #[must_use]
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Table> {
        let id = self.interner.rel_id(name)?;
        self.tables.get_mut(id.index())
    }

    /// Create an index on `rel_name(attrs…)`; `false` if missing.
    pub fn create_index(&mut self, rel_name: &str, attrs: &[Attr]) -> bool {
        self.get_mut(rel_name)
            .is_some_and(|t| t.create_index(attrs))
    }

    /// Iterate `(name, table)` pairs in name order (deterministic
    /// regardless of insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Table)> {
        let mut ids: Vec<RelId> = (0..self.tables.len()).map(RelId::from_index).collect();
        ids.sort_by_key(|&id| self.interner.rel_name(id));
        ids.into_iter()
            .map(|id| (self.interner.rel_name(id), &self.tables[id.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_database() {
        let mut db = Database::new();
        db.insert(Relation::from_ints("R", &["a"], &[&[1], &[2]]));
        let s = Storage::from_database(&db);
        assert_eq!(s.get("R").unwrap().len(), 2);
        let back = s.to_database();
        assert!(back.get("R").unwrap().set_eq(db.get("R").unwrap()));
    }

    #[test]
    fn index_creation_and_lookup() {
        let mut s = Storage::new();
        s.insert(
            "R",
            Relation::from_ints("R", &["k", "v"], &[&[1, 5], &[2, 6]]),
        );
        assert!(s.create_index("R", &[Attr::parse("R.k")]));
        assert!(!s.create_index("R", &[Attr::parse("R.zzz")]));
        assert!(!s.create_index("Q", &[Attr::parse("Q.k")]));
        let t = s.get("R").unwrap();
        assert!(t.index_on(&[0]).is_some());
        assert!(t.index_on(&[1]).is_none());
    }

    #[test]
    fn table_empty_check() {
        let t = Table::new(Relation::from_ints("R", &["a"], &[]));
        assert!(t.is_empty());
    }
}
