//! In-memory storage: tables plus their hash indexes, resolved through
//! dense `RelId`-indexed **shards**.
//!
//! Tables live in fixed-size shards of [`SHARD_SIZE`] consecutive
//! [`RelId`]s: shard `i` holds ids `[i·SHARD_SIZE, (i+1)·SHARD_SIZE)`.
//! An id lookup is still two bounds-checked array reads (shard, slot) —
//! no hashing, no string compare — while [`Storage::shards`] exposes
//! the id-range decomposition so bulk passes (statistics refresh,
//! catalog scans, parallel loaders) can claim disjoint contiguous id
//! ranges without coordinating. Growing a new shard never moves
//! existing tables, unlike a reallocating flat vector.
//!
//! Names are interned exactly once, at [`Storage::insert`]; every later
//! lookup is an array index. Names legitimately enter at registration
//! time ([`Storage::insert`], [`Storage::create_index`]), but the
//! name-keyed *read* API (`get`, `lookup`, `get_mut`) is a hidden
//! compatibility shim available only under the `testing-oracles`
//! feature — the public read surface is id-keyed.
//!
//! Storage carries its own epoch counter, bumped by every data or
//! index mutation, so a session can notice that its derived catalog
//! (and therefore the catalog's plan cache) is out of date.

use crate::engine::ExecError;
use crate::index::HashIndex;
use fro_algebra::{Attr, ColumnSet, Database, Interner, RelId, Relation, Tuple, Value};
use std::collections::HashSet;

/// A stored base table: the relation, its columnar mirror, and any
/// indexes built on it.
///
/// The [`ColumnSet`] is built at registration and kept alongside the
/// row-major relation (a hybrid layout): engines read the typed column
/// vectors for predicate scans, hash builds, and statistics, while
/// output assembly still clones `Tuple`s from the row store — which is
/// what keeps columnar execution bit-identical to the row-major paths.
/// Appends maintain the mirror and any indexes in place (O(|delta|))
/// instead of rebuilding them.
#[derive(Debug, Clone)]
pub struct Table {
    rel: Relation,
    columns: ColumnSet,
    indexes: Vec<HashIndex>,
    /// Append-acceleration state: an exact row set (novelty checks
    /// under set semantics) plus one value set per column (exact
    /// distinct counts), built O(base) on the first append and
    /// maintained O(|delta|) afterwards. `None` until a table sees its
    /// first append; dropped whenever the table is replaced wholesale.
    append_state: Option<AppendState>,
}

#[derive(Debug, Clone)]
struct AppendState {
    row_set: HashSet<Tuple>,
    value_sets: Vec<HashSet<Value>>,
}

impl AppendState {
    fn over(rel: &Relation) -> AppendState {
        let mut row_set = HashSet::with_capacity(rel.len());
        let mut value_sets = vec![HashSet::new(); rel.schema().len()];
        for t in rel.rows() {
            for (c, set) in value_sets.iter_mut().enumerate() {
                set.insert(t.get(c).clone());
            }
            row_set.insert(t.clone());
        }
        AppendState {
            row_set,
            value_sets,
        }
    }
}

impl Table {
    /// Wrap a relation with no indexes, building its columnar mirror.
    #[must_use]
    pub fn new(rel: Relation) -> Table {
        let columns = ColumnSet::build(&rel);
        Table {
            rel,
            columns,
            indexes: Vec::new(),
            append_state: None,
        }
    }

    /// Append `rows` under set semantics, returning the novel suffix
    /// actually stored (possibly empty if every row was already
    /// present) or `None` on an arity mismatch. Maintains the row
    /// store, the columnar mirror (typed vectors, validity, zones,
    /// exact distinct counts), and every index in place — O(|delta|)
    /// once the append state is warm. The columnar mirror falls back
    /// to a full rebuild only when a value cannot join its column's
    /// existing layout (new type, or a string the sealed dictionary
    /// has never seen).
    fn append_novel(&mut self, rows: Vec<Tuple>) -> Option<Vec<Tuple>> {
        let arity = self.rel.schema().len();
        if rows.iter().any(|t| t.arity() != arity) {
            return None;
        }
        let state = self
            .append_state
            .get_or_insert_with(|| AppendState::over(&self.rel));
        let mut novel = Vec::new();
        for t in rows {
            if state.row_set.insert(t.clone()) {
                for (c, set) in state.value_sets.iter_mut().enumerate() {
                    set.insert(t.get(c).clone());
                }
                novel.push(t);
            }
        }
        if novel.is_empty() {
            return Some(novel);
        }
        let distinct: Vec<u64> = state.value_sets.iter().map(|s| s.len() as u64).collect();
        let old_len = self.rel.len();
        self.rel.extend_distinct(novel.clone());
        if !self.columns.append_rows(&novel, &distinct) {
            self.columns = ColumnSet::build(&self.rel);
        }
        for ix in &mut self.indexes {
            ix.insert_rows(&self.rel, old_len);
        }
        Some(novel)
    }

    /// The underlying relation.
    #[must_use]
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// The columnar mirror: typed per-attribute vectors with validity
    /// bitmaps, zone min/max metadata, and the per-table string
    /// dictionary.
    #[must_use]
    pub fn columns(&self) -> &ColumnSet {
        &self.columns
    }

    /// Build (or rebuild) an index on the given attributes.
    ///
    /// Returns `false` (building nothing) if any attribute is missing.
    pub fn create_index(&mut self, attrs: &[Attr]) -> bool {
        let mut cols = Vec::with_capacity(attrs.len());
        for a in attrs {
            match self.rel.schema().index_of(a) {
                Some(c) => cols.push(c),
                None => return false,
            }
        }
        cols.sort_unstable();
        self.indexes.push(HashIndex::build(&self.rel, cols));
        true
    }

    /// All indexes on this table.
    #[must_use]
    pub fn indexes(&self) -> &[HashIndex] {
        &self.indexes
    }

    /// An index whose key columns exactly match `cols` (sorted).
    #[must_use]
    pub fn index_on(&self, cols: &[usize]) -> Option<&HashIndex> {
        let mut want = cols.to_vec();
        want.sort_unstable();
        self.indexes.iter().find(|ix| ix.key_cols() == want)
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }
}

/// Id-range width of one storage shard: [`SHARD_SIZE`] consecutive
/// [`RelId`]s per shard, split off the id by shift/mask.
const SHARD_BITS: u32 = 4;
/// Tables per shard (`1 << SHARD_BITS`).
pub const SHARD_SIZE: usize = 1 << SHARD_BITS;
const SHARD_MASK: usize = SHARD_SIZE - 1;

/// A set of tables, stored densely by [`RelId`] across fixed-size
/// shards, with an interner owning the name mapping.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    interner: Interner,
    /// `shards[s][i]` is the table with `RelId` `s * SHARD_SIZE + i`.
    /// All shards but the last are exactly `SHARD_SIZE` long.
    shards: Vec<Vec<Table>>,
    /// Total registered tables (dense: ids `0..n_tables` are all live).
    n_tables: usize,
    epoch: u64,
}

impl Storage {
    /// Empty storage.
    #[must_use]
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Load every relation of a [`Database`] as an unindexed table.
    #[must_use]
    pub fn from_database(db: &Database) -> Storage {
        let mut s = Storage::new();
        for (name, rel) in db.iter() {
            s.insert(name, rel.clone());
        }
        s
    }

    /// Export as a [`Database`] (for cross-checking against the
    /// reference evaluator).
    #[must_use]
    pub fn to_database(&self) -> Database {
        let mut db = Database::new();
        for (name, t) in self.iter() {
            db.insert_named(name.to_owned(), t.relation().clone());
        }
        db
    }

    /// Register a table: interns the name (once) and places the table
    /// in the dense slot its [`RelId`] names — growing a fresh shard
    /// when the last one is full. Re-inserting a name replaces the
    /// table under the same id. Existing tables never move.
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) -> &mut Table {
        let name = name.into();
        let id = self.interner.register_relation(&name, rel.schema());
        let i = id.index();
        let table = Table::new(rel);
        if i == self.n_tables {
            if i >> SHARD_BITS == self.shards.len() {
                self.shards.push(Vec::with_capacity(SHARD_SIZE));
            }
            self.shards[i >> SHARD_BITS].push(table);
            self.n_tables += 1;
        } else {
            self.shards[i >> SHARD_BITS][i & SHARD_MASK] = table;
        }
        self.epoch += 1;
        &mut self.shards[i >> SHARD_BITS][i & SHARD_MASK]
    }

    /// Append `rows` to `name`'s table in place, returning the novel
    /// rows actually stored (set semantics absorb duplicates, so the
    /// result can be empty) or `None` when the table is unknown or a
    /// row's arity doesn't fit its scheme. Unlike [`Storage::insert`],
    /// nothing is rebuilt: the columnar mirror, indexes, and exact
    /// per-column distinct counts are all maintained O(|delta|). Bumps
    /// the epoch only when something was stored.
    pub fn append_rows(&mut self, name: &str, rows: Vec<Tuple>) -> Option<Vec<Tuple>> {
        let i = self.interner.rel_id(name)?.index();
        let table = self
            .shards
            .get_mut(i >> SHARD_BITS)
            .and_then(|s| s.get_mut(i & SHARD_MASK))?;
        let novel = table.append_novel(rows)?;
        if !novel.is_empty() {
            self.epoch += 1;
        }
        Some(novel)
    }

    /// The data epoch: incremented by every table insert or index
    /// build. A session compares it against the epoch its derived
    /// catalog was built from to know when to refresh statistics.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The interner owning this storage's name ↔ id mapping.
    #[must_use]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Resolve a table name to its dense id.
    #[must_use]
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.interner.rel_id(name)
    }

    /// Look up a table by dense id — the hot path: two bounds-checked
    /// array reads (shard, slot), no hashing, no string compare.
    #[must_use]
    pub fn get_by_id(&self, id: RelId) -> Option<&Table> {
        let i = id.index();
        self.shards
            .get(i >> SHARD_BITS)
            .and_then(|s| s.get(i & SHARD_MASK))
    }

    /// Number of registered tables (dense ids `0..n_tables()`).
    #[must_use]
    pub fn n_tables(&self) -> usize {
        self.n_tables
    }

    /// The id-range shards: `(first_id, tables)` pairs where `tables[i]`
    /// has id `first_id + i`. Shards partition `0..n_tables()` into
    /// contiguous runs of at most [`SHARD_SIZE`] ids, so bulk passes
    /// can fan out one worker per shard and cover every table exactly
    /// once with no coordination beyond the shard index.
    pub fn shards(&self) -> impl Iterator<Item = (RelId, &[Table])> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, tables)| (RelId::from_index(s << SHARD_BITS), tables.as_slice()))
    }

    /// Name-keyed table read, always available inside the crate (the
    /// engine resolves plan-embedded names through this).
    pub(crate) fn get_named(&self, name: &str) -> Option<&Table> {
        self.rel_id(name).and_then(|id| self.get_by_id(id))
    }

    /// Name-keyed lookup with a diagnosable error: the unknown name
    /// plus the nearest catalog name (by edit distance), when one is
    /// plausibly close.
    pub(crate) fn lookup_named(&self, name: &str) -> Result<&Table, ExecError> {
        self.get_named(name).ok_or_else(|| ExecError::UnknownTable {
            name: name.to_owned(),
            suggestion: self.interner.suggest(name).map(str::to_owned),
        })
    }

    /// Name-keyed testing oracle for table reads. Hidden from the
    /// public surface; the id-keyed path is [`Storage::get_by_id`].
    #[cfg(any(test, feature = "testing-oracles"))]
    #[doc(hidden)]
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.get_named(name)
    }

    /// Name-keyed testing oracle for diagnosable lookups. Hidden from
    /// the public surface; the id-keyed path is [`Storage::get_by_id`].
    ///
    /// # Errors
    /// [`ExecError::UnknownTable`] when the name is not interned.
    #[cfg(any(test, feature = "testing-oracles"))]
    #[doc(hidden)]
    pub fn lookup(&self, name: &str) -> Result<&Table, ExecError> {
        self.lookup_named(name)
    }

    /// Name-keyed testing oracle for mutable table access. Hidden from
    /// the public surface; mutation goes through [`Storage::insert`]
    /// and [`Storage::create_index`]. Does **not** bump the epoch —
    /// oracle use only.
    #[cfg(any(test, feature = "testing-oracles"))]
    #[doc(hidden)]
    #[must_use]
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Table> {
        let i = self.interner.rel_id(name)?.index();
        self.shards
            .get_mut(i >> SHARD_BITS)
            .and_then(|s| s.get_mut(i & SHARD_MASK))
    }

    /// Create an index on `rel_name(attrs…)`; `false` if missing.
    pub fn create_index(&mut self, rel_name: &str, attrs: &[Attr]) -> bool {
        let Some(id) = self.interner.rel_id(rel_name) else {
            return false;
        };
        let i = id.index();
        let Some(t) = self
            .shards
            .get_mut(i >> SHARD_BITS)
            .and_then(|s| s.get_mut(i & SHARD_MASK))
        else {
            return false;
        };
        let built = t.create_index(attrs);
        if built {
            self.epoch += 1;
        }
        built
    }

    /// Iterate `(name, table)` pairs in name order (deterministic
    /// regardless of insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Table)> {
        let mut ids: Vec<RelId> = (0..self.n_tables).map(RelId::from_index).collect();
        ids.sort_by_key(|&id| self.interner.rel_name(id));
        ids.into_iter().map(|id| {
            let t = self.get_by_id(id).expect("dense id within n_tables");
            (self.interner.rel_name(id), t)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_database() {
        let mut db = Database::new();
        db.insert(Relation::from_ints("R", &["a"], &[&[1], &[2]]));
        let s = Storage::from_database(&db);
        assert_eq!(s.get("R").unwrap().len(), 2);
        let back = s.to_database();
        assert!(back.get("R").unwrap().set_eq(db.get("R").unwrap()));
    }

    #[test]
    fn index_creation_and_lookup() {
        let mut s = Storage::new();
        s.insert(
            "R",
            Relation::from_ints("R", &["k", "v"], &[&[1, 5], &[2, 6]]),
        );
        assert!(s.create_index("R", &[Attr::parse("R.k")]));
        assert!(!s.create_index("R", &[Attr::parse("R.zzz")]));
        assert!(!s.create_index("Q", &[Attr::parse("Q.k")]));
        let t = s.get("R").unwrap();
        assert!(t.index_on(&[0]).is_some());
        assert!(t.index_on(&[1]).is_none());
    }

    #[test]
    fn table_empty_check() {
        let t = Table::new(Relation::from_ints("R", &["a"], &[]));
        assert!(t.is_empty());
    }

    #[test]
    fn sharding_keeps_ids_dense_across_many_tables() {
        let mut s = Storage::new();
        let n = SHARD_SIZE * 3 + 5; // several full shards plus a partial
        for i in 0..n {
            s.insert(
                format!("T{i:03}"),
                Relation::from_ints(&format!("T{i:03}"), &["a"], &[&[i as i64]]),
            );
        }
        assert_eq!(s.n_tables(), n);
        assert_eq!(s.shards().count(), 4);
        // Every id resolves, and shards partition the id space in order.
        let mut seen = 0usize;
        for (first, tables) in s.shards() {
            assert_eq!(first.index(), seen);
            assert!(tables.len() <= SHARD_SIZE);
            for (off, t) in tables.iter().enumerate() {
                let id = RelId::from_index(first.index() + off);
                let via_id = s.get_by_id(id).unwrap();
                assert_eq!(via_id.len(), t.len());
            }
            seen += tables.len();
        }
        assert_eq!(seen, n);
        // Name-ordered iteration still covers everything exactly once.
        assert_eq!(s.iter().count(), n);
        // Replacement stays in place: same id, new contents, no growth.
        s.insert(
            "T001",
            Relation::from_ints("T001", &["a"], &[&[7], &[8], &[9]]),
        );
        assert_eq!(s.n_tables(), n);
        assert_eq!(s.get("T001").unwrap().len(), 3);
    }

    #[test]
    fn indexes_work_on_tables_beyond_first_shard() {
        let mut s = Storage::new();
        for i in 0..(SHARD_SIZE + 2) {
            s.insert(
                format!("T{i:03}"),
                Relation::from_ints(&format!("T{i:03}"), &["k"], &[&[1], &[2]]),
            );
        }
        let late = format!("T{:03}", SHARD_SIZE + 1);
        assert!(s.create_index(&late, &[Attr::parse(&format!("{late}.k"))]));
        assert!(s.get(&late).unwrap().index_on(&[0]).is_some());
    }

    #[test]
    fn append_rows_maintains_table_like_a_rebuild() {
        let mut s = Storage::new();
        s.insert(
            "R",
            Relation::from_ints("R", &["k", "v"], &[&[1, 10], &[2, 20]]),
        );
        assert!(s.create_index("R", &[Attr::parse("R.k")]));
        let e0 = s.epoch();
        // One duplicate (absorbed by set semantics) and two novel rows.
        let novel = s
            .append_rows(
                "R",
                vec![
                    Tuple::new(vec![Value::Int(1), Value::Int(10)]),
                    Tuple::new(vec![Value::Int(3), Value::Int(30)]),
                    Tuple::new(vec![Value::Int(3), Value::Int(31)]),
                ],
            )
            .unwrap();
        assert_eq!(novel.len(), 2);
        assert!(s.epoch() > e0);
        let t = s.get("R").unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.columns().rows(), 4);
        // The maintained mirror agrees with a from-scratch rebuild.
        let rebuilt = Table::new(t.relation().clone());
        for c in 0..t.columns().width() {
            let (a, b) = (t.columns().column(c), rebuilt.columns().column(c));
            assert_eq!(a.distinct(), b.distinct(), "col {c}");
            assert_eq!(a.null_count(), b.null_count(), "col {c}");
            assert_eq!(a.min_max(), b.min_max(), "col {c}");
        }
        // The index sees the appended rows.
        assert_eq!(t.index_on(&[0]).unwrap().lookup(&[Value::Int(3)]), &[2, 3]);
        // An all-duplicate append changes nothing, not even the epoch.
        let e1 = s.epoch();
        let none = s
            .append_rows("R", vec![Tuple::new(vec![Value::Int(3), Value::Int(30)])])
            .unwrap();
        assert!(none.is_empty());
        assert_eq!(s.epoch(), e1);
        assert_eq!(s.get("R").unwrap().len(), 4);
    }

    #[test]
    fn append_rows_rejects_unknown_table_and_bad_arity() {
        let mut s = Storage::new();
        s.insert("R", Relation::from_ints("R", &["k"], &[&[1]]));
        assert!(s.append_rows("missing", vec![]).is_none());
        let e = s.epoch();
        assert!(s
            .append_rows("R", vec![Tuple::new(vec![Value::Int(1), Value::Int(2)])])
            .is_none());
        assert_eq!(s.epoch(), e);
        assert_eq!(s.get("R").unwrap().len(), 1);
    }

    #[test]
    fn append_rows_layout_fallback_keeps_mirror_consistent() {
        let mut s = Storage::new();
        s.insert("R", Relation::from_ints("R", &["k"], &[&[1]]));
        // A string can't extend a typed int column in place; the
        // mirror is rebuilt instead and reads stay consistent.
        let novel = s
            .append_rows("R", vec![Tuple::new(vec![Value::str("x")])])
            .unwrap();
        assert_eq!(novel.len(), 1);
        let t = s.get("R").unwrap();
        assert_eq!(t.columns().value_at(1, 0), Value::str("x"));
        assert_eq!(t.columns().column(0).distinct(), 2);
    }

    #[test]
    fn epoch_bumps_on_data_and_index_mutation() {
        let mut s = Storage::new();
        let e0 = s.epoch();
        s.insert("R", Relation::from_ints("R", &["k"], &[&[1]]));
        let e1 = s.epoch();
        assert!(e1 > e0);
        assert!(s.create_index("R", &[Attr::parse("R.k")]));
        let e2 = s.epoch();
        assert!(e2 > e1);
        // Failed index builds leave the epoch alone.
        assert!(!s.create_index("R", &[Attr::parse("R.zzz")]));
        assert!(!s.create_index("Q", &[Attr::parse("Q.k")]));
        assert_eq!(s.epoch(), e2);
    }
}
