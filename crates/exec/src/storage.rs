//! In-memory storage: tables plus their hash indexes, resolved through
//! a dense `RelId → Table` vector.
//!
//! Names are interned exactly once, at [`Storage::insert`]; every later
//! lookup is an array index. Names legitimately enter at registration
//! time ([`Storage::insert`], [`Storage::create_index`]), but the
//! name-keyed *read* API (`get`, `lookup`, `get_mut`) is a hidden
//! compatibility shim available only under the `testing-oracles`
//! feature — the public read surface is id-keyed.
//!
//! Storage carries its own epoch counter, bumped by every data or
//! index mutation, so a session can notice that its derived catalog
//! (and therefore the catalog's plan cache) is out of date.

use crate::engine::ExecError;
use crate::index::HashIndex;
use fro_algebra::{Attr, Database, Interner, RelId, Relation};

/// A stored base table: the relation plus any indexes built on it.
#[derive(Debug, Clone)]
pub struct Table {
    rel: Relation,
    indexes: Vec<HashIndex>,
}

impl Table {
    /// Wrap a relation with no indexes.
    #[must_use]
    pub fn new(rel: Relation) -> Table {
        Table {
            rel,
            indexes: Vec::new(),
        }
    }

    /// The underlying relation.
    #[must_use]
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// Build (or rebuild) an index on the given attributes.
    ///
    /// Returns `false` (building nothing) if any attribute is missing.
    pub fn create_index(&mut self, attrs: &[Attr]) -> bool {
        let mut cols = Vec::with_capacity(attrs.len());
        for a in attrs {
            match self.rel.schema().index_of(a) {
                Some(c) => cols.push(c),
                None => return false,
            }
        }
        cols.sort_unstable();
        self.indexes.push(HashIndex::build(&self.rel, cols));
        true
    }

    /// All indexes on this table.
    #[must_use]
    pub fn indexes(&self) -> &[HashIndex] {
        &self.indexes
    }

    /// An index whose key columns exactly match `cols` (sorted).
    #[must_use]
    pub fn index_on(&self, cols: &[usize]) -> Option<&HashIndex> {
        let mut want = cols.to_vec();
        want.sort_unstable();
        self.indexes.iter().find(|ix| ix.key_cols() == want)
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }
}

/// A set of tables, stored densely by [`RelId`] with an interner
/// owning the name mapping.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    interner: Interner,
    tables: Vec<Table>,
    epoch: u64,
}

impl Storage {
    /// Empty storage.
    #[must_use]
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Load every relation of a [`Database`] as an unindexed table.
    #[must_use]
    pub fn from_database(db: &Database) -> Storage {
        let mut s = Storage::new();
        for (name, rel) in db.iter() {
            s.insert(name, rel.clone());
        }
        s
    }

    /// Export as a [`Database`] (for cross-checking against the
    /// reference evaluator).
    #[must_use]
    pub fn to_database(&self) -> Database {
        let mut db = Database::new();
        for (name, t) in self.iter() {
            db.insert_named(name.to_owned(), t.relation().clone());
        }
        db
    }

    /// Register a table: interns the name (once) and places the table
    /// in the dense slot its [`RelId`] names. Re-inserting a name
    /// replaces the table under the same id.
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) -> &mut Table {
        let name = name.into();
        let id = self.interner.register_relation(&name, rel.schema());
        let table = Table::new(rel);
        if id.index() == self.tables.len() {
            self.tables.push(table);
        } else {
            self.tables[id.index()] = table;
        }
        self.epoch += 1;
        &mut self.tables[id.index()]
    }

    /// The data epoch: incremented by every table insert or index
    /// build. A session compares it against the epoch its derived
    /// catalog was built from to know when to refresh statistics.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The interner owning this storage's name ↔ id mapping.
    #[must_use]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Resolve a table name to its dense id.
    #[must_use]
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.interner.rel_id(name)
    }

    /// Look up a table by dense id — the hot path: one bounds-checked
    /// array read, no hashing, no string compare.
    #[must_use]
    pub fn get_by_id(&self, id: RelId) -> Option<&Table> {
        self.tables.get(id.index())
    }

    /// Name-keyed table read, always available inside the crate (the
    /// engine resolves plan-embedded names through this).
    pub(crate) fn get_named(&self, name: &str) -> Option<&Table> {
        self.rel_id(name).and_then(|id| self.get_by_id(id))
    }

    /// Name-keyed lookup with a diagnosable error: the unknown name
    /// plus the nearest catalog name (by edit distance), when one is
    /// plausibly close.
    pub(crate) fn lookup_named(&self, name: &str) -> Result<&Table, ExecError> {
        self.get_named(name).ok_or_else(|| ExecError::UnknownTable {
            name: name.to_owned(),
            suggestion: self.interner.suggest(name).map(str::to_owned),
        })
    }

    /// Name-keyed testing oracle for table reads. Hidden from the
    /// public surface; the id-keyed path is [`Storage::get_by_id`].
    #[cfg(any(test, feature = "testing-oracles"))]
    #[doc(hidden)]
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.get_named(name)
    }

    /// Name-keyed testing oracle for diagnosable lookups. Hidden from
    /// the public surface; the id-keyed path is [`Storage::get_by_id`].
    ///
    /// # Errors
    /// [`ExecError::UnknownTable`] when the name is not interned.
    #[cfg(any(test, feature = "testing-oracles"))]
    #[doc(hidden)]
    pub fn lookup(&self, name: &str) -> Result<&Table, ExecError> {
        self.lookup_named(name)
    }

    /// Name-keyed testing oracle for mutable table access. Hidden from
    /// the public surface; mutation goes through [`Storage::insert`]
    /// and [`Storage::create_index`]. Does **not** bump the epoch —
    /// oracle use only.
    #[cfg(any(test, feature = "testing-oracles"))]
    #[doc(hidden)]
    #[must_use]
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Table> {
        let id = self.interner.rel_id(name)?;
        self.tables.get_mut(id.index())
    }

    /// Create an index on `rel_name(attrs…)`; `false` if missing.
    pub fn create_index(&mut self, rel_name: &str, attrs: &[Attr]) -> bool {
        let Some(id) = self.interner.rel_id(rel_name) else {
            return false;
        };
        let Some(t) = self.tables.get_mut(id.index()) else {
            return false;
        };
        let built = t.create_index(attrs);
        if built {
            self.epoch += 1;
        }
        built
    }

    /// Iterate `(name, table)` pairs in name order (deterministic
    /// regardless of insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Table)> {
        let mut ids: Vec<RelId> = (0..self.tables.len()).map(RelId::from_index).collect();
        ids.sort_by_key(|&id| self.interner.rel_name(id));
        ids.into_iter()
            .map(|id| (self.interner.rel_name(id), &self.tables[id.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_database() {
        let mut db = Database::new();
        db.insert(Relation::from_ints("R", &["a"], &[&[1], &[2]]));
        let s = Storage::from_database(&db);
        assert_eq!(s.get("R").unwrap().len(), 2);
        let back = s.to_database();
        assert!(back.get("R").unwrap().set_eq(db.get("R").unwrap()));
    }

    #[test]
    fn index_creation_and_lookup() {
        let mut s = Storage::new();
        s.insert(
            "R",
            Relation::from_ints("R", &["k", "v"], &[&[1, 5], &[2, 6]]),
        );
        assert!(s.create_index("R", &[Attr::parse("R.k")]));
        assert!(!s.create_index("R", &[Attr::parse("R.zzz")]));
        assert!(!s.create_index("Q", &[Attr::parse("Q.k")]));
        let t = s.get("R").unwrap();
        assert!(t.index_on(&[0]).is_some());
        assert!(t.index_on(&[1]).is_none());
    }

    #[test]
    fn table_empty_check() {
        let t = Table::new(Relation::from_ints("R", &["a"], &[]));
        assert!(t.is_empty());
    }

    #[test]
    fn epoch_bumps_on_data_and_index_mutation() {
        let mut s = Storage::new();
        let e0 = s.epoch();
        s.insert("R", Relation::from_ints("R", &["k"], &[&[1]]));
        let e1 = s.epoch();
        assert!(e1 > e0);
        assert!(s.create_index("R", &[Attr::parse("R.k")]));
        let e2 = s.epoch();
        assert!(e2 > e1);
        // Failed index builds leave the epoch alone.
        assert!(!s.create_index("R", &[Attr::parse("R.zzz")]));
        assert!(!s.create_index("Q", &[Attr::parse("Q.k")]));
        assert_eq!(s.epoch(), e2);
    }
}
