//! Execution counters — the paper's cost accounting.
//!
//! Example 1 measures plans by the number of **tuples retrieved** from
//! base relations: a scan retrieves every tuple of its table; an index
//! lookup retrieves exactly the matching tuples. Under that metric the
//! two equivalent orderings of `R1 − (R2 → R3)` cost `2·10⁷ + 1` and
//! `3` tuples — the asymmetry this library exists to exploit.

use std::fmt;

/// Counters accumulated by [`crate::execute`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table tuples retrieved (scans + index-lookup matches).
    pub tuples_retrieved: u64,
    /// Index probes issued (one per outer row in an index join).
    pub index_probes: u64,
    /// Predicate evaluations performed.
    pub comparisons: u64,
    /// Rows inserted into hash-join build tables.
    pub hash_build_rows: u64,
    /// Rows produced by the root operator.
    pub rows_output: u64,
    /// Rows produced by all operators (intermediate result volume).
    pub rows_materialized: u64,
}

impl ExecStats {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Fold another accumulator into this one. Every counter is a plain
    /// sum, so merging is commutative and associative: the parallel
    /// executor gives each worker a private `ExecStats` and merges them
    /// after the join barrier, and the totals are identical to a
    /// sequential run regardless of how morsels were interleaved.
    pub fn merge(&mut self, other: &ExecStats) {
        self.tuples_retrieved += other.tuples_retrieved;
        self.index_probes += other.index_probes;
        self.comparisons += other.comparisons;
        self.hash_build_rows += other.hash_build_rows;
        self.rows_output += other.rows_output;
        self.rows_materialized += other.rows_materialized;
    }

    /// A scalar "work" summary used by benches: retrieved tuples plus
    /// materialized rows plus comparisons (all unit-weighted; the shape
    /// of comparisons is what matters, not an absolute cost model).
    #[must_use]
    pub fn work(&self) -> u64 {
        self.tuples_retrieved + self.rows_materialized + self.comparisons
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retrieved={} probes={} comparisons={} built={} materialized={} output={}",
            self.tuples_retrieved,
            self.index_probes,
            self.comparisons,
            self.hash_build_rows,
            self.rows_materialized,
            self.rows_output
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = ExecStats::new();
        assert_eq!(s.tuples_retrieved, 0);
        assert_eq!(s.work(), 0);
    }

    #[test]
    fn work_sums_components() {
        let s = ExecStats {
            tuples_retrieved: 10,
            comparisons: 5,
            rows_materialized: 3,
            ..ExecStats::default()
        };
        assert_eq!(s.work(), 18);
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = ExecStats {
            tuples_retrieved: 1,
            index_probes: 2,
            comparisons: 3,
            hash_build_rows: 4,
            rows_output: 5,
            rows_materialized: 6,
        };
        let b = ExecStats {
            tuples_retrieved: 10,
            index_probes: 20,
            comparisons: 30,
            hash_build_rows: 40,
            rows_output: 50,
            rows_materialized: 60,
        };
        a.merge(&b);
        assert_eq!(a.tuples_retrieved, 11);
        assert_eq!(a.index_probes, 22);
        assert_eq!(a.comparisons, 33);
        assert_eq!(a.hash_build_rows, 44);
        assert_eq!(a.rows_output, 55);
        assert_eq!(a.rows_materialized, 66);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = ExecStats::new().to_string();
        for key in [
            "retrieved",
            "probes",
            "comparisons",
            "built",
            "materialized",
            "output",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
