//! Execution counters — the paper's cost accounting.
//!
//! Example 1 measures plans by the number of **tuples retrieved** from
//! base relations: a scan retrieves every tuple of its table; an index
//! lookup retrieves exactly the matching tuples. Under that metric the
//! two equivalent orderings of `R1 − (R2 → R3)` cost `2·10⁷ + 1` and
//! `3` tuples — the asymmetry this library exists to exploit.
//!
//! Alongside the scalar counters, [`ExecStats`] carries a
//! [`PartitionStats`] breakdown of hash-join build/probe rows per radix
//! partition. The breakdown is a *diagnostic view*: its shape depends
//! on the configured partition count, so it is deliberately excluded
//! from `ExecStats` equality — the scalar counters are the engine's
//! partition-invariant contract, and the partition totals always sum
//! back into them (the partition-invariance suite asserts this).

use crate::config::MAX_PARTITIONS;
use std::fmt;

/// Per-partition hash-join row counts — how build and probe work
/// spread across the radix partitions of [`crate::execute_with`].
///
/// `used` is the highest partition count any hash join in the plan ran
/// with (0 until a hash join executes); the counter slices returned by
/// [`PartitionStats::build_rows`] / [`PartitionStats::probe_rows`] are
/// trimmed to it. When a plan contains joins with different effective
/// partition counts the per-slot sums still hold, but slot `i` then
/// aggregates partition `i` of every join.
#[derive(Debug, Clone, Copy)]
pub struct PartitionStats {
    used: usize,
    build_rows: [u64; MAX_PARTITIONS],
    probe_rows: [u64; MAX_PARTITIONS],
}

impl PartitionStats {
    /// Fresh zeroed breakdown.
    #[must_use]
    pub const fn new() -> PartitionStats {
        PartitionStats {
            used: 0,
            build_rows: [0; MAX_PARTITIONS],
            probe_rows: [0; MAX_PARTITIONS],
        }
    }

    /// The highest partition count any hash join ran with (0 if none).
    #[must_use]
    pub fn used(&self) -> usize {
        self.used
    }

    /// Non-null-keyed build rows scattered into each partition.
    #[must_use]
    pub fn build_rows(&self) -> &[u64] {
        &self.build_rows[..self.used]
    }

    /// Non-null-keyed probe rows that looked up each partition.
    #[must_use]
    pub fn probe_rows(&self) -> &[u64] {
        &self.probe_rows[..self.used]
    }

    /// Record that a hash join ran with `p` partitions.
    pub(crate) fn note_partitions(&mut self, p: usize) {
        self.used = self.used.max(p.min(MAX_PARTITIONS));
    }

    /// Count one build row scattered into partition `p`.
    pub(crate) fn add_build(&mut self, p: usize) {
        self.build_rows[p] += 1;
    }

    /// Count one probe row hashed into partition `p`.
    pub(crate) fn add_probe(&mut self, p: usize) {
        self.probe_rows[p] += 1;
    }

    /// Fold another breakdown into this one: element-wise sums plus a
    /// max over `used` — commutative and associative, like the scalar
    /// merge, so worker-private breakdowns combine deterministically.
    pub fn merge(&mut self, other: &PartitionStats) {
        self.used = self.used.max(other.used);
        for (a, b) in self.build_rows.iter_mut().zip(&other.build_rows) {
            *a += *b;
        }
        for (a, b) in self.probe_rows.iter_mut().zip(&other.probe_rows) {
            *a += *b;
        }
    }
}

impl Default for PartitionStats {
    fn default() -> PartitionStats {
        PartitionStats::new()
    }
}

/// Counters accumulated by [`crate::execute`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Base-table tuples retrieved (scans + index-lookup matches).
    pub tuples_retrieved: u64,
    /// Index probes issued (one per outer row in an index join).
    pub index_probes: u64,
    /// Predicate evaluations performed.
    pub comparisons: u64,
    /// Rows inserted into hash-join build tables.
    pub hash_build_rows: u64,
    /// Rows produced by the root operator.
    pub rows_output: u64,
    /// Rows written into materialized buffers. Under
    /// [`crate::ExecMode::Materializing`] every operator's output
    /// counts (total intermediate result volume); under
    /// [`crate::ExecMode::Pipelined`] only pipeline-breaker results
    /// count — hash-join build sides that are not bare scans,
    /// `GroupCount` inputs, merge-join / full-outerjoin / `Goj`
    /// operands — so a fully-fused pipeline reports **0**.
    pub rows_materialized: u64,
    /// Rows that flowed through fused pipeline stages without an
    /// intermediate buffer (source rows pushed plus every fused
    /// operator's emissions). Always 0 under
    /// [`crate::ExecMode::Materializing`].
    pub rows_pipelined: u64,
    /// Pipelines driven (one per fused scan→…→sink chain, including
    /// single-operator pipelines). Always 0 under
    /// [`crate::ExecMode::Materializing`].
    pub pipelines: u64,
    /// Rows dropped by [`crate::PhysPlan::SemiReduce`] nodes: input
    /// rows with no join partner in the reducer source. Deterministic
    /// (input cardinality minus survivors), so it is part of the
    /// logical equality contract like the other scalar counters.
    pub rows_reduced: u64,
    /// `SemiReduce` reducer stages executed (one per plan node per
    /// execution, in either engine mode).
    pub reducer_passes: u64,
    /// Delta rows entering maintenance operators of a standing view:
    /// every signed row (insert or delete) an incremental delta pass
    /// fed into a delta node. For a well-behaved maintenance pass this
    /// is O(|delta|·depth), never O(|base|) — the whole point of
    /// maintaining the view instead of re-executing it. Always 0 for
    /// plain (non-standing) execution.
    pub delta_rows_in: u64,
    /// Net changes applied to standing-view results by maintenance
    /// passes (rows inserted into plus rows retracted from maintained
    /// result sets). Always 0 for plain execution.
    pub delta_rows_out: u64,
    /// Standing views refreshed by full re-execution instead of a
    /// delta pass (initial materialization, or a structural change
    /// that invalidated the maintained state). Always 0 for plain
    /// execution.
    pub views_refreshed: u64,
    /// Metadata zones ([`fro_algebra::ZONE_ROWS`]-row morsels of a
    /// base column) that a vectorized comparison resolved from zone
    /// min/max / null-count metadata as containing no qualifying row,
    /// without touching the column data. Diagnostic, like the
    /// partition breakdown: how much skipping happened depends on the
    /// columnar flag and data layout, so it is excluded from equality
    /// — the logical work counters above stay bit-identical whether
    /// or not zones were skipped.
    pub morsels_skipped: u64,
    /// Per-partition hash-join breakdown (diagnostic; see
    /// [`PartitionStats`] — excluded from equality).
    pub partition: PartitionStats,
}

/// Equality compares the **logical scalar counters only**. The
/// per-partition breakdown is a function of the configured partition
/// count, and `morsels_skipped` is a function of the columnar flag and
/// physical layout, while the logical counters are guaranteed
/// bit-identical across every partition count, thread count, morsel
/// size, and columnar setting — tests assert `stats == stats` across
/// configurations, and the diagnostics must not break that contract.
/// The partition totals are separately asserted to sum into the scalar
/// counters by the partition-invariance suite.
impl PartialEq for ExecStats {
    fn eq(&self, other: &Self) -> bool {
        self.tuples_retrieved == other.tuples_retrieved
            && self.index_probes == other.index_probes
            && self.comparisons == other.comparisons
            && self.hash_build_rows == other.hash_build_rows
            && self.rows_output == other.rows_output
            && self.rows_materialized == other.rows_materialized
            && self.rows_pipelined == other.rows_pipelined
            && self.pipelines == other.pipelines
            && self.rows_reduced == other.rows_reduced
            && self.reducer_passes == other.reducer_passes
            && self.delta_rows_in == other.delta_rows_in
            && self.delta_rows_out == other.delta_rows_out
            && self.views_refreshed == other.views_refreshed
    }
}

impl Eq for ExecStats {}

impl ExecStats {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Fold another accumulator into this one. Every counter is a plain
    /// sum, so merging is commutative and associative: the parallel
    /// executor gives each worker a private `ExecStats` and merges them
    /// after the join barrier, and the totals are identical to a
    /// sequential run regardless of how morsels were interleaved.
    pub fn merge(&mut self, other: &ExecStats) {
        self.tuples_retrieved += other.tuples_retrieved;
        self.index_probes += other.index_probes;
        self.comparisons += other.comparisons;
        self.hash_build_rows += other.hash_build_rows;
        self.rows_output += other.rows_output;
        self.rows_materialized += other.rows_materialized;
        self.rows_pipelined += other.rows_pipelined;
        self.pipelines += other.pipelines;
        self.rows_reduced += other.rows_reduced;
        self.reducer_passes += other.reducer_passes;
        self.delta_rows_in += other.delta_rows_in;
        self.delta_rows_out += other.delta_rows_out;
        self.views_refreshed += other.views_refreshed;
        self.morsels_skipped += other.morsels_skipped;
        self.partition.merge(&other.partition);
    }

    /// A scalar "work" summary used by benches: retrieved tuples plus
    /// intermediate row volume (materialized **and** pipelined — the
    /// two split one volume depending on [`crate::ExecMode`]) plus
    /// comparisons (all unit-weighted; the shape of comparisons is what
    /// matters, not an absolute cost model).
    #[must_use]
    pub fn work(&self) -> u64 {
        self.tuples_retrieved + self.rows_materialized + self.rows_pipelined + self.comparisons
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retrieved={} probes={} comparisons={} built={} materialized={} pipelined={} pipelines={} reduced={} reducer_passes={} delta_in={} delta_out={} views_refreshed={} skipped={} output={}",
            self.tuples_retrieved,
            self.index_probes,
            self.comparisons,
            self.hash_build_rows,
            self.rows_materialized,
            self.rows_pipelined,
            self.pipelines,
            self.rows_reduced,
            self.reducer_passes,
            self.delta_rows_in,
            self.delta_rows_out,
            self.views_refreshed,
            self.morsels_skipped,
            self.rows_output
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = ExecStats::new();
        assert_eq!(s.tuples_retrieved, 0);
        assert_eq!(s.work(), 0);
        assert_eq!(s.partition.used(), 0);
        assert!(s.partition.build_rows().is_empty());
    }

    #[test]
    fn work_sums_components() {
        let s = ExecStats {
            tuples_retrieved: 10,
            comparisons: 5,
            rows_materialized: 3,
            ..ExecStats::default()
        };
        assert_eq!(s.work(), 18);
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = ExecStats {
            tuples_retrieved: 1,
            index_probes: 2,
            comparisons: 3,
            hash_build_rows: 4,
            rows_output: 5,
            rows_materialized: 6,
            ..ExecStats::default()
        };
        let b = ExecStats {
            tuples_retrieved: 10,
            index_probes: 20,
            comparisons: 30,
            hash_build_rows: 40,
            rows_output: 50,
            rows_materialized: 60,
            rows_pipelined: 70,
            pipelines: 80,
            ..ExecStats::default()
        };
        a.merge(&b);
        assert_eq!(a.tuples_retrieved, 11);
        assert_eq!(a.index_probes, 22);
        assert_eq!(a.comparisons, 33);
        assert_eq!(a.hash_build_rows, 44);
        assert_eq!(a.rows_output, 55);
        assert_eq!(a.rows_materialized, 66);
        assert_eq!(a.rows_pipelined, 70);
        assert_eq!(a.pipelines, 80);
    }

    #[test]
    fn reducer_counters_merge_and_compare() {
        let mut a = ExecStats {
            rows_reduced: 3,
            reducer_passes: 1,
            ..ExecStats::default()
        };
        a.merge(&ExecStats {
            rows_reduced: 4,
            reducer_passes: 2,
            ..ExecStats::default()
        });
        assert_eq!(a.rows_reduced, 7);
        assert_eq!(a.reducer_passes, 3);
        let b = ExecStats::new();
        assert_ne!(a, b, "reducer counters are logical, not diagnostic");
    }

    #[test]
    fn partition_breakdown_merges_elementwise() {
        let mut a = PartitionStats::new();
        a.note_partitions(2);
        a.add_build(0);
        a.add_probe(1);
        let mut b = PartitionStats::new();
        b.note_partitions(4);
        b.add_build(0);
        b.add_build(3);
        a.merge(&b);
        assert_eq!(a.used(), 4);
        assert_eq!(a.build_rows(), &[2, 0, 0, 1]);
        assert_eq!(a.probe_rows(), &[0, 1, 0, 0]);
    }

    #[test]
    fn equality_ignores_partition_breakdown() {
        let mut a = ExecStats::new();
        let mut b = ExecStats::new();
        a.partition.note_partitions(1);
        a.partition.add_build(0);
        b.partition.note_partitions(8);
        b.partition.add_build(7);
        assert_eq!(a, b, "breakdown is diagnostic, not part of equality");
        b.morsels_skipped = 3;
        assert_eq!(a, b, "zone skipping is diagnostic, not part of equality");
        b.hash_build_rows = 1;
        assert_ne!(a, b, "scalar counters still compared");
    }

    #[test]
    fn merge_sums_skipped_zones() {
        let mut a = ExecStats {
            morsels_skipped: 2,
            ..ExecStats::default()
        };
        a.merge(&ExecStats {
            morsels_skipped: 5,
            ..ExecStats::default()
        });
        assert_eq!(a.morsels_skipped, 7);
    }

    #[test]
    fn maintenance_counters_merge_and_compare() {
        let mut a = ExecStats {
            delta_rows_in: 2,
            delta_rows_out: 1,
            views_refreshed: 1,
            ..ExecStats::default()
        };
        a.merge(&ExecStats {
            delta_rows_in: 5,
            delta_rows_out: 3,
            views_refreshed: 2,
            ..ExecStats::default()
        });
        assert_eq!(a.delta_rows_in, 7);
        assert_eq!(a.delta_rows_out, 4);
        assert_eq!(a.views_refreshed, 3);
        assert_ne!(
            a,
            ExecStats::new(),
            "maintenance counters are logical, not diagnostic"
        );
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = ExecStats::new().to_string();
        for key in [
            "retrieved",
            "probes",
            "comparisons",
            "built",
            "materialized",
            "pipelined",
            "pipelines",
            "reduced",
            "reducer_passes",
            "delta_in",
            "delta_out",
            "views_refreshed",
            "skipped",
            "output",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
