//! Execution configuration for the morsel-driven parallel engine.
//!
//! The probe side of every join is split into fixed-size **morsels**
//! (contiguous row ranges); a pool of `std::thread` workers claims
//! morsels from a shared atomic counter and probes each into a private
//! output buffer. Buffers are concatenated in morsel-index order, so
//! the result is bit-identical to a sequential probe no matter how the
//! scheduler interleaves workers.

/// Knobs for [`crate::execute_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads for join probes. `1` (the default) runs fully
    /// sequentially on the calling thread; `0` means "use all available
    /// parallelism".
    pub threads: usize,
    /// Rows per morsel. Small enough to load-balance skewed probes,
    /// large enough that the atomic claim is amortized away.
    pub morsel_rows: usize,
}

impl ExecConfig {
    /// Default morsel granularity.
    pub const DEFAULT_MORSEL_ROWS: usize = 4096;

    /// The sequential configuration (one thread).
    #[must_use]
    pub fn new() -> ExecConfig {
        ExecConfig::default()
    }

    /// Configuration with `threads` workers (`0` = all cores).
    #[must_use]
    pub fn with_threads(threads: usize) -> ExecConfig {
        ExecConfig {
            threads,
            ..ExecConfig::default()
        }
    }

    /// Override the morsel size (clamped to at least one row).
    #[must_use]
    pub fn morsel_rows(mut self, rows: usize) -> ExecConfig {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Resolve `threads = 0` against the machine; always at least one.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            threads: 1,
            morsel_rows: ExecConfig::DEFAULT_MORSEL_ROWS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        let cfg = ExecConfig::default();
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.effective_threads(), 1);
        assert_eq!(cfg.morsel_rows, ExecConfig::DEFAULT_MORSEL_ROWS);
    }

    #[test]
    fn zero_threads_resolves_to_machine_parallelism() {
        let cfg = ExecConfig::with_threads(0);
        assert!(cfg.effective_threads() >= 1);
    }

    #[test]
    fn morsel_rows_clamps_to_one() {
        assert_eq!(ExecConfig::new().morsel_rows(0).morsel_rows, 1);
        assert_eq!(ExecConfig::new().morsel_rows(17).morsel_rows, 17);
    }
}
