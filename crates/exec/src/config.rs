//! Execution configuration for the morsel-driven parallel engine.
//!
//! The probe side of every join is split into fixed-size **morsels**
//! (contiguous row ranges); a pool of `std::thread` workers claims
//! morsels from a shared atomic counter and probes each into a private
//! output buffer. Buffers are concatenated in morsel-index order, so
//! the result is bit-identical to a sequential probe no matter how the
//! scheduler interleaves workers.
//!
//! Hash-join build sides are additionally **radix-partitioned**: the
//! high bits of each key's 64-bit hash select one of `partitions`
//! partition-local tables, so the build can be parallelized without a
//! global table barrier and probes touch exactly one partition. The
//! partition is a pure function of the key hash, which makes results
//! (rows, order, counters) identical at every partition count —
//! `partitions = 1` reproduces the unpartitioned engine exactly.

/// The largest partition count the engine will use. Matches the
/// 64-member cap of `fro_algebra::RelSet` and bounds the fixed-size
/// per-partition counter arrays in [`crate::ExecStats`].
pub const MAX_PARTITIONS: usize = 64;

/// Pick a partition count from the build-side row count: one partition
/// per ~16k build rows, in the power-of-4 steps the engine bench
/// sweeps. Tiny builds stay unpartitioned — the scatter/merge overhead
/// only pays once a partition is big enough to miss cache.
#[must_use]
pub fn suggest_partitions(build_rows: u64) -> usize {
    match build_rows {
        0..=16_383 => 1,
        16_384..=262_143 => 4,
        262_144..=4_194_303 => 16,
        _ => MAX_PARTITIONS,
    }
}

/// Which executor drives a plan.
///
/// Both modes produce bit-identical results — same rows, same order,
/// same work counters (`tuples_retrieved`, `index_probes`,
/// `comparisons`, `hash_build_rows`, `rows_output`). They differ only
/// in *how* rows flow between operators, which the bookkeeping
/// counters (`rows_materialized`, `rows_pipelined`, `pipelines`)
/// expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Push-based pipelined execution (the default): scan → filter →
    /// probe → project chains fuse into a single pass over morsels
    /// with no intermediate row vector between fused operators.
    /// Pipeline breakers (hash-join build sides, `GroupCount`,
    /// merge-join sorts, full outerjoins, mid-plan projections) still
    /// materialize.
    #[default]
    Pipelined,
    /// The classic operator-at-a-time engine: every operator fully
    /// materializes its output relation before the parent runs.
    Materializing,
}

/// Knobs for [`crate::execute_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads for join probes. `1` (the default) runs fully
    /// sequentially on the calling thread; `0` means "use all available
    /// parallelism".
    pub threads: usize,
    /// Rows per morsel. Small enough to load-balance skewed probes,
    /// large enough that the atomic claim is amortized away.
    pub morsel_rows: usize,
    /// Hash-join partition count. `1` (the default) keeps one global
    /// build table — the exact pre-partitioning engine. `0` means
    /// "auto": the engine picks per join from the actual build-side
    /// row count (and the Session front door substitutes the
    /// optimizer's catalog-statistics hint before execution). Any
    /// value is clamped to [`MAX_PARTITIONS`].
    pub partitions: usize,
    /// Which executor runs the plan ([`ExecMode::Pipelined`] by
    /// default).
    pub mode: ExecMode,
    /// Whether the engines may use the columnar mirrors of base tables
    /// (vectorized predicate scans, zone skipping, column-direct hash
    /// builds). `true` by default; `false` forces the row-at-a-time
    /// paths. Results, order, and work counters are bit-identical
    /// either way — only the bookkeeping `morsels_skipped` diagnostic
    /// and wall-clock change.
    pub columnar: bool,
}

impl ExecConfig {
    /// Default morsel granularity.
    pub const DEFAULT_MORSEL_ROWS: usize = 4096;

    /// The sequential configuration (one thread).
    #[must_use]
    pub fn new() -> ExecConfig {
        ExecConfig::default()
    }

    /// Configuration with `threads` workers (`0` = all cores).
    #[must_use]
    pub fn with_threads(threads: usize) -> ExecConfig {
        ExecConfig {
            threads,
            ..ExecConfig::default()
        }
    }

    /// Override the morsel size (clamped to at least one row).
    #[must_use]
    pub fn morsel_rows(mut self, rows: usize) -> ExecConfig {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Override the hash-join partition count (`0` = auto; clamped to
    /// [`MAX_PARTITIONS`] at resolution time).
    #[must_use]
    pub fn partitions(mut self, partitions: usize) -> ExecConfig {
        self.partitions = partitions;
        self
    }

    /// Opt out of pipelining: run the classic operator-at-a-time
    /// materializing engine.
    #[must_use]
    pub fn materializing(mut self) -> ExecConfig {
        self.mode = ExecMode::Materializing;
        self
    }

    /// Select the (default) push-based pipelined engine.
    #[must_use]
    pub fn pipelined(mut self) -> ExecConfig {
        self.mode = ExecMode::Pipelined;
        self
    }

    /// Enable or disable the columnar kernels (`true` is the default;
    /// `false` runs the row-at-a-time reference paths).
    #[must_use]
    pub fn columnar(mut self, on: bool) -> ExecConfig {
        self.columnar = on;
        self
    }

    /// Resolve `threads = 0` against the machine; always at least one.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// Resolve the partition count for one hash join: `0` consults the
    /// [`suggest_partitions`] heuristic with the actual build-side row
    /// count; explicit values are clamped to `1..=MAX_PARTITIONS`.
    #[must_use]
    pub fn effective_partitions(&self, build_rows: usize) -> usize {
        let p = if self.partitions == 0 {
            suggest_partitions(build_rows as u64)
        } else {
            self.partitions
        };
        p.clamp(1, MAX_PARTITIONS)
    }
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            threads: 1,
            morsel_rows: ExecConfig::DEFAULT_MORSEL_ROWS,
            partitions: 1,
            mode: ExecMode::Pipelined,
            columnar: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        let cfg = ExecConfig::default();
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.effective_threads(), 1);
        assert_eq!(cfg.morsel_rows, ExecConfig::DEFAULT_MORSEL_ROWS);
        assert_eq!(cfg.partitions, 1);
        assert_eq!(cfg.effective_partitions(1_000_000_000), 1);
        assert_eq!(cfg.mode, ExecMode::Pipelined);
        assert!(cfg.columnar);
    }

    #[test]
    fn columnar_builder_flips_the_kernels() {
        assert!(!ExecConfig::new().columnar(false).columnar);
        assert!(ExecConfig::new().columnar(false).columnar(true).columnar);
    }

    #[test]
    fn mode_builders_flip_the_engine() {
        assert_eq!(
            ExecConfig::new().materializing().mode,
            ExecMode::Materializing
        );
        assert_eq!(
            ExecConfig::new().materializing().pipelined().mode,
            ExecMode::Pipelined
        );
    }

    #[test]
    fn zero_threads_resolves_to_machine_parallelism() {
        let cfg = ExecConfig::with_threads(0);
        assert!(cfg.effective_threads() >= 1);
    }

    #[test]
    fn morsel_rows_clamps_to_one() {
        assert_eq!(ExecConfig::new().morsel_rows(0).morsel_rows, 1);
        assert_eq!(ExecConfig::new().morsel_rows(17).morsel_rows, 17);
    }

    #[test]
    fn partitions_clamp_to_cap() {
        assert_eq!(ExecConfig::new().partitions(4).effective_partitions(0), 4);
        assert_eq!(
            ExecConfig::new()
                .partitions(1 << 20)
                .effective_partitions(0),
            MAX_PARTITIONS
        );
    }

    #[test]
    fn auto_partitions_follow_build_size() {
        let auto = ExecConfig::new().partitions(0);
        assert_eq!(auto.effective_partitions(0), 1);
        assert_eq!(auto.effective_partitions(100), 1);
        assert_eq!(auto.effective_partitions(20_000), 4);
        assert_eq!(auto.effective_partitions(1 << 20), 16);
        assert_eq!(auto.effective_partitions(1 << 23), MAX_PARTITIONS);
    }

    #[test]
    fn suggestion_is_monotone_in_build_size() {
        let mut prev = 0;
        for rows in [0u64, 1, 1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26] {
            let p = suggest_partitions(rows);
            assert!(p >= prev, "suggestion shrank at {rows} rows");
            assert!(p <= MAX_PARTITIONS);
            prev = p;
        }
    }
}
